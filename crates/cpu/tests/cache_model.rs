//! Property test: the set-associative cache agrees with a naive reference
//! model (a map plus per-set LRU lists) under arbitrary operation
//! sequences.

use flash_cpu::{CpuAccess, L2Cache, LineState};
use flash_engine::Addr;
use proptest::prelude::*;
use std::collections::HashMap;

const CACHE_BYTES: u64 = 4 << 10; // 16 sets x 2 ways
const SETS: u64 = CACHE_BYTES / 256;

/// Naive reference: per-set vector of (line_index, state), most recently
/// used last, capacity 2.
#[derive(Default)]
struct RefCache {
    sets: HashMap<u64, Vec<(u64, LineState)>>,
}

impl RefCache {
    fn set_of(line: u64) -> u64 {
        line % SETS
    }

    fn probe(&mut self, line: u64, write: bool) -> CpuAccess {
        let set = self.sets.entry(Self::set_of(line)).or_default();
        if let Some(pos) = set.iter().position(|(l, _)| *l == line) {
            let entry = set.remove(pos);
            let hit = !(write && entry.1 == LineState::Shared);
            set.push(entry);
            if hit {
                CpuAccess::Hit
            } else {
                CpuAccess::NeedsUpgrade
            }
        } else {
            CpuAccess::Miss
        }
    }

    fn install(&mut self, line: u64, state: LineState) -> Option<(u64, bool)> {
        let set = self.sets.entry(Self::set_of(line)).or_default();
        if let Some(pos) = set.iter().position(|(l, _)| *l == line) {
            set.remove(pos);
            set.push((line, state));
            return None;
        }
        let victim = if set.len() >= 2 {
            let v = set.remove(0);
            Some((v.0, v.1 == LineState::Exclusive))
        } else {
            None
        };
        set.push((line, state));
        victim
    }

    fn invalidate(&mut self, line: u64) -> Option<LineState> {
        let set = self.sets.entry(Self::set_of(line)).or_default();
        set.iter()
            .position(|(l, _)| *l == line)
            .map(|pos| set.remove(pos).1)
    }

    fn downgrade(&mut self, line: u64) -> Option<LineState> {
        let set = self.sets.entry(Self::set_of(line)).or_default();
        set.iter().position(|(l, _)| *l == line).map(|pos| {
            let old = set[pos].1;
            set[pos].1 = LineState::Shared;
            old
        })
    }

    fn state_of(&self, line: u64) -> Option<LineState> {
        self.sets
            .get(&Self::set_of(line))
            .and_then(|s| s.iter().find(|(l, _)| *l == line))
            .map(|(_, st)| *st)
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Probe { line: u64, write: bool },
    Install { line: u64, excl: bool },
    Invalidate { line: u64 },
    Downgrade { line: u64 },
}

fn op_strategy() -> impl Strategy<Value = CacheOp> {
    let line = 0u64..64;
    prop_oneof![
        3 => (line.clone(), any::<bool>()).prop_map(|(line, write)| CacheOp::Probe { line, write }),
        3 => (line.clone(), any::<bool>()).prop_map(|(line, excl)| CacheOp::Install { line, excl }),
        1 => line.clone().prop_map(|line| CacheOp::Invalidate { line }),
        1 => line.prop_map(|line| CacheOp::Downgrade { line }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut real = L2Cache::new(CACHE_BYTES);
        let mut reference = RefCache::default();
        for op in &ops {
            match *op {
                CacheOp::Probe { line, write } => {
                    let a = real.probe(Addr::from_line_index(line), write);
                    let b = reference.probe(line, write);
                    prop_assert_eq!(a, b, "probe({}, {}) diverged", line, write);
                }
                CacheOp::Install { line, excl } => {
                    let st = if excl { LineState::Exclusive } else { LineState::Shared };
                    let a = real.install(Addr::from_line_index(line), st);
                    let b = reference.install(line, st);
                    match (a, b) {
                        (None, None) => {}
                        (Some(v), Some((bl, bd))) => {
                            prop_assert_eq!(v.addr.line_index(), bl, "victim line diverged");
                            prop_assert_eq!(v.dirty, bd, "victim dirtiness diverged");
                        }
                        (a, b) => prop_assert!(false, "install({}) diverged: {:?} vs {:?}", line, a, b),
                    }
                }
                CacheOp::Invalidate { line } => {
                    let a = real.invalidate(Addr::from_line_index(line));
                    let b = reference.invalidate(line);
                    prop_assert_eq!(a, b, "invalidate({}) diverged", line);
                }
                CacheOp::Downgrade { line } => {
                    let a = real.downgrade(Addr::from_line_index(line));
                    let b = reference.downgrade(line);
                    prop_assert_eq!(a, b, "downgrade({}) diverged", line);
                }
            }
        }
        // Final state agreement over the whole line space.
        for line in 0..64u64 {
            prop_assert_eq!(
                real.state_of(Addr::from_line_index(line)),
                reference.state_of(line),
                "final state diverged for line {}", line
            );
        }
    }
}
