//! Per-processor reference streams (the Tango Lite role).

use flash_engine::Addr;

/// One element of a processor's reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkItem {
    /// `n` instructions of pure computation (1 instruction = 1 issue slot
    /// = a quarter of a 10 ns system cycle at 400 MIPS).
    Busy(u64),
    /// A load from `addr`.
    Read(Addr),
    /// A store to `addr`.
    Write(Addr),
    /// Global barrier: wait until every processor arrives.
    Barrier,
    /// Acquire lock `id` (simulation-level; contention counts as sync
    /// stall).
    Lock(u32),
    /// Release lock `id`.
    Unlock(u32),
    /// End of the stream.
    Done,
}

/// A lazily generated stream of work items for one processor.
///
/// Implementations must keep returning [`WorkItem::Done`] once finished.
/// `Send` is a supertrait so a processor (and the shard executing it) can
/// move to a worker thread under sharded simulation.
pub trait RefStream: Send {
    /// Produces the next item.
    fn next_item(&mut self) -> WorkItem;
}

/// A stream over a fixed slice of items — test workloads and traces.
///
/// # Examples
///
/// ```
/// use flash_cpu::{RefStream, SliceStream, WorkItem};
/// use flash_engine::Addr;
///
/// let mut s = SliceStream::new(vec![WorkItem::Busy(8), WorkItem::Read(Addr::new(0))]);
/// assert_eq!(s.next_item(), WorkItem::Busy(8));
/// assert_eq!(s.next_item(), WorkItem::Read(Addr::new(0)));
/// assert_eq!(s.next_item(), WorkItem::Done);
/// assert_eq!(s.next_item(), WorkItem::Done);
/// ```
#[derive(Debug, Clone)]
pub struct SliceStream {
    items: Vec<WorkItem>,
    pos: usize,
}

impl SliceStream {
    /// Wraps a vector of items.
    pub fn new(items: Vec<WorkItem>) -> Self {
        SliceStream { items, pos: 0 }
    }
}

impl RefStream for SliceStream {
    fn next_item(&mut self) -> WorkItem {
        match self.items.get(self.pos) {
            Some(&it) => {
                self.pos += 1;
                it
            }
            None => WorkItem::Done,
        }
    }
}

impl<F: FnMut() -> WorkItem + Send> RefStream for F {
    fn next_item(&mut self) -> WorkItem {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_streams_work() {
        let mut n = 0;
        let mut s = move || {
            n += 1;
            if n <= 2 {
                WorkItem::Busy(n)
            } else {
                WorkItem::Done
            }
        };
        assert_eq!(s.next_item(), WorkItem::Busy(1));
        assert_eq!(s.next_item(), WorkItem::Busy(2));
        assert_eq!(s.next_item(), WorkItem::Done);
    }
}
