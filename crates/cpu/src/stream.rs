//! Per-processor reference streams (the Tango Lite role).

use flash_engine::Addr;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One element of a processor's reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkItem {
    /// `n` instructions of pure computation (1 instruction = 1 issue slot
    /// = a quarter of a 10 ns system cycle at 400 MIPS).
    Busy(u64),
    /// A load from `addr`.
    Read(Addr),
    /// A store to `addr`.
    Write(Addr),
    /// Global barrier: wait until every processor arrives.
    Barrier,
    /// Acquire lock `id` (simulation-level; contention counts as sync
    /// stall).
    Lock(u32),
    /// Release lock `id`.
    Unlock(u32),
    /// End of the stream.
    Done,
}

/// A lazily generated stream of work items for one processor.
///
/// Implementations must keep returning [`WorkItem::Done`] once finished.
/// `Send` is a supertrait so a processor (and the shard executing it) can
/// move to a worker thread under sharded simulation.
pub trait RefStream: Send {
    /// Produces the next item.
    fn next_item(&mut self) -> WorkItem;

    /// Polls for the next item without committing to one.
    ///
    /// `None` means *no work yet* — distinct from [`WorkItem::Done`]: the
    /// stream is still open but the next reference has not arrived. Only
    /// open-loop streams ([`MailboxStream`]) ever return `None`; the
    /// default implementation makes every closed-loop stream trivially
    /// always-ready. A processor that polls `None` reports
    /// `RunOutcome::Starved` and parks until the machine feeds the
    /// mailbox and wakes it.
    fn try_next(&mut self) -> Option<WorkItem> {
        Some(self.next_item())
    }
}

/// A stream over a fixed slice of items — test workloads and traces.
///
/// # Examples
///
/// ```
/// use flash_cpu::{RefStream, SliceStream, WorkItem};
/// use flash_engine::Addr;
///
/// let mut s = SliceStream::new(vec![WorkItem::Busy(8), WorkItem::Read(Addr::new(0))]);
/// assert_eq!(s.next_item(), WorkItem::Busy(8));
/// assert_eq!(s.next_item(), WorkItem::Read(Addr::new(0)));
/// assert_eq!(s.next_item(), WorkItem::Done);
/// assert_eq!(s.next_item(), WorkItem::Done);
/// ```
#[derive(Debug, Clone)]
pub struct SliceStream {
    items: Vec<WorkItem>,
    pos: usize,
}

impl SliceStream {
    /// Wraps a vector of items.
    pub fn new(items: Vec<WorkItem>) -> Self {
        SliceStream { items, pos: 0 }
    }
}

impl RefStream for SliceStream {
    fn next_item(&mut self) -> WorkItem {
        match self.items.get(self.pos) {
            Some(&it) => {
                self.pos += 1;
                it
            }
            None => WorkItem::Done,
        }
    }
}

impl<F: FnMut() -> WorkItem + Send> RefStream for F {
    fn next_item(&mut self) -> WorkItem {
        self()
    }
}

/// The admission queue between an open-loop arrival feed and a
/// processor: references the machine has *admitted* (handed to the
/// processor) but the pipeline has not yet consumed.
///
/// The machine keeps one handle and the processor's [`MailboxStream`]
/// keeps the other. All pushes happen at machine-event granularity on the
/// shard that owns the node, and the processor drains from the same
/// shard's event handlers, so the mutex is uncontended by construction —
/// it exists to satisfy `Send`, not to synchronize concurrent access.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: VecDeque<WorkItem>,
    closed: bool,
}

/// Shared handle to a [`Mailbox`].
pub type MailboxHandle = Arc<Mutex<Mailbox>>;

impl Mailbox {
    /// A fresh, open, empty mailbox behind a shared handle.
    pub fn handle() -> MailboxHandle {
        Arc::new(Mutex::new(Mailbox::default()))
    }

    /// Admits one work item.
    pub fn push(&mut self, item: WorkItem) {
        self.queue.push_back(item);
    }

    /// Items admitted but not yet consumed by the processor.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no admitted work is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Closes the mailbox: once drained, the stream ends ([`WorkItem::Done`]).
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Whether the mailbox has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// A processor stream fed by a [`Mailbox`] — the open-loop counterpart of
/// [`SliceStream`].
///
/// # Examples
///
/// ```
/// use flash_cpu::{Mailbox, MailboxStream, RefStream, WorkItem};
///
/// let handle = Mailbox::handle();
/// let mut s = MailboxStream::new(handle.clone());
/// assert_eq!(s.try_next(), None); // open but empty: no work *yet*
/// handle.lock().unwrap().push(WorkItem::Busy(4));
/// assert_eq!(s.try_next(), Some(WorkItem::Busy(4)));
/// handle.lock().unwrap().close();
/// assert_eq!(s.try_next(), Some(WorkItem::Done));
/// ```
#[derive(Debug)]
pub struct MailboxStream(MailboxHandle);

impl MailboxStream {
    /// Wraps a mailbox handle.
    pub fn new(handle: MailboxHandle) -> Self {
        MailboxStream(handle)
    }
}

impl RefStream for MailboxStream {
    /// Committed form: not-ready collapses to `Done`. Callers that can
    /// observe arrival gaps (the processor) must use
    /// [`RefStream::try_next`]; `next_item` exists for bounded
    /// materialization, which treats a dry mailbox as end-of-stream.
    fn next_item(&mut self) -> WorkItem {
        self.try_next().unwrap_or(WorkItem::Done)
    }

    fn try_next(&mut self) -> Option<WorkItem> {
        let mut mb = self.0.lock().expect("mailbox lock");
        match mb.queue.pop_front() {
            Some(it) => Some(it),
            None if mb.closed => Some(WorkItem::Done),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_streams_work() {
        let mut n = 0;
        let mut s = move || {
            n += 1;
            if n <= 2 {
                WorkItem::Busy(n)
            } else {
                WorkItem::Done
            }
        };
        assert_eq!(s.next_item(), WorkItem::Busy(1));
        assert_eq!(s.next_item(), WorkItem::Busy(2));
        assert_eq!(s.next_item(), WorkItem::Done);
    }
}
