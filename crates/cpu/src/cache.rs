//! The processor's two-way set-associative cache.

use flash_engine::{Addr, Counter, LINE_BYTES};

/// Coherence state of a cached line. `Exclusive` implies ownership and is
/// treated as dirty (DASH-style: exclusive lines are written back on
/// eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Readable, possibly shared with other caches.
    Shared,
    /// Exclusively owned; writable; written back on eviction.
    Exclusive,
}

/// What a processor reference found in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuAccess {
    /// Present and sufficient for the access.
    Hit,
    /// Present `Shared` but the access is a write: exclusivity needed.
    NeedsUpgrade,
    /// Absent.
    Miss,
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line address of the evicted line.
    pub addr: Addr,
    /// Whether it was `Exclusive` (requires a writeback; `Shared` victims
    /// produce replacement hints).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    state_excl: bool,
    locked: bool,
    tag: u64,
    lru: u64,
}

/// The secondary cache: two-way set associative, 128-byte lines
/// (paper §3.2), with way locking for lines that have an outstanding
/// miss/upgrade so they cannot be chosen as victims.
///
/// # Examples
///
/// ```
/// use flash_cpu::{CpuAccess, L2Cache, LineState};
/// use flash_engine::Addr;
///
/// let mut c = L2Cache::new(1 << 20);
/// let a = Addr::new(0x1000);
/// assert_eq!(c.probe(a, false), CpuAccess::Miss);
/// c.install(a, LineState::Shared);
/// assert_eq!(c.probe(a, false), CpuAccess::Hit);
/// assert_eq!(c.probe(a, true), CpuAccess::NeedsUpgrade);
/// ```
#[derive(Debug, Clone)]
pub struct L2Cache {
    sets: u64,
    ways: Vec<Way>,
    tick: u64,
    hits: Counter,
    misses: Counter,
    upgrades: Counter,
}

const ASSOC: usize = 2;

impl L2Cache {
    /// Creates an empty cache of `size_bytes` capacity (2-way, 128-byte
    /// lines).
    ///
    /// # Panics
    ///
    /// Panics unless the resulting set count is a power of two.
    pub fn new(size_bytes: u64) -> Self {
        let sets = size_bytes / (LINE_BYTES * ASSOC as u64);
        assert!(
            sets.is_power_of_two() && sets > 0,
            "bad cache size {size_bytes}"
        );
        L2Cache {
            sets,
            ways: vec![Way::default(); sets as usize * ASSOC],
            tick: 0,
            hits: Counter::default(),
            misses: Counter::default(),
            upgrades: Counter::default(),
        }
    }

    /// Cache index (set number) of an address — used for the paper's
    /// same-index write-conflict rule.
    pub fn index_of(&self, addr: Addr) -> u64 {
        addr.line_index() % self.sets
    }

    fn find(&self, addr: Addr) -> Option<usize> {
        let set = (addr.line_index() % self.sets) as usize;
        let tag = addr.line_index() / self.sets;
        (0..ASSOC)
            .map(|i| set * ASSOC + i)
            .find(|&w| self.ways[w].valid && self.ways[w].tag == tag)
    }

    /// Looks up an access without modifying tag state (miss handling is
    /// the processor's job). Counts hit/miss/upgrade statistics.
    pub fn probe(&mut self, addr: Addr, write: bool) -> CpuAccess {
        self.tick += 1;
        match self.find(addr) {
            Some(w) => {
                self.ways[w].lru = self.tick;
                if write && !self.ways[w].state_excl {
                    self.upgrades.incr();
                    CpuAccess::NeedsUpgrade
                } else {
                    self.hits.incr();
                    CpuAccess::Hit
                }
            }
            None => {
                self.misses.incr();
                CpuAccess::Miss
            }
        }
    }

    /// Installs a line (on miss completion), evicting if necessary.
    /// Locked ways are never victimized.
    ///
    /// # Panics
    ///
    /// Panics if every way in the set is locked (the processor's
    /// index-conflict stall rule prevents this).
    pub fn install(&mut self, addr: Addr, state: LineState) -> Option<Victim> {
        let set = (addr.line_index() % self.sets) as usize;
        let tag = addr.line_index() / self.sets;
        self.tick += 1;
        // Already present (e.g. upgrade completion): update state.
        if let Some(w) = self.find(addr) {
            self.ways[w].state_excl = state == LineState::Exclusive;
            self.ways[w].lru = self.tick;
            return None;
        }
        let victim_i = (0..ASSOC)
            .map(|i| set * ASSOC + i)
            .filter(|&w| !self.ways[w].locked)
            .min_by_key(|&w| {
                if self.ways[w].valid {
                    self.ways[w].lru
                } else {
                    0
                }
            })
            .expect("install with every way locked");
        let old = self.ways[victim_i];
        self.ways[victim_i] = Way {
            valid: true,
            state_excl: state == LineState::Exclusive,
            locked: false,
            tag,
            lru: self.tick,
        };
        if old.valid {
            Some(Victim {
                addr: Addr::from_line_index(old.tag * self.sets + set as u64),
                dirty: old.state_excl,
            })
        } else {
            None
        }
    }

    /// Locks/unlocks a present line against eviction (used while an
    /// upgrade is outstanding for it).
    pub fn set_locked(&mut self, addr: Addr, locked: bool) {
        if let Some(w) = self.find(addr) {
            self.ways[w].locked = locked;
        }
    }

    /// Invalidates a line. Returns its state if it was present.
    pub fn invalidate(&mut self, addr: Addr) -> Option<LineState> {
        self.find(addr).map(|w| {
            let s = if self.ways[w].state_excl {
                LineState::Exclusive
            } else {
                LineState::Shared
            };
            self.ways[w] = Way::default();
            s
        })
    }

    /// Downgrades an `Exclusive` line to `Shared` (cache-to-cache read
    /// intervention). Returns the prior state if present.
    pub fn downgrade(&mut self, addr: Addr) -> Option<LineState> {
        self.find(addr).map(|w| {
            let s = if self.ways[w].state_excl {
                LineState::Exclusive
            } else {
                LineState::Shared
            };
            self.ways[w].state_excl = false;
            s
        })
    }

    /// Current state of a line, if present.
    pub fn state_of(&self, addr: Addr) -> Option<LineState> {
        self.find(addr).map(|w| {
            if self.ways[w].state_excl {
                LineState::Exclusive
            } else {
                LineState::Shared
            }
        })
    }

    /// Hits recorded by [`L2Cache::probe`].
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Misses recorded by [`L2Cache::probe`].
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Write-upgrade probes recorded.
    pub fn upgrades(&self) -> u64 {
        self.upgrades.get()
    }

    /// Overall miss rate counting upgrades as misses (they occupy the
    /// coherence machinery like misses do).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get() + self.upgrades.get();
        if total == 0 {
            0.0
        } else {
            (self.misses.get() + self.upgrades.get()) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cache_geometry() {
        // 4 KB, 2-way, 128 B lines = 16 sets.
        let c = L2Cache::new(4 << 10);
        assert_eq!(c.index_of(Addr::new(0)), 0);
        assert_eq!(c.index_of(Addr::new(16 * 128)), 0, "wraps at 16 sets");
        assert_eq!(c.index_of(Addr::new(128)), 1);
    }

    #[test]
    fn probe_install_cycle() {
        let mut c = L2Cache::new(4 << 10);
        let a = Addr::new(0x80);
        assert_eq!(c.probe(a, true), CpuAccess::Miss);
        assert_eq!(c.install(a, LineState::Exclusive), None);
        assert_eq!(c.probe(a, true), CpuAccess::Hit);
        assert_eq!(c.probe(a, false), CpuAccess::Hit);
    }

    #[test]
    fn upgrade_path() {
        let mut c = L2Cache::new(4 << 10);
        let a = Addr::new(0x80);
        c.install(a, LineState::Shared);
        assert_eq!(c.probe(a, true), CpuAccess::NeedsUpgrade);
        c.install(a, LineState::Exclusive); // upgrade completes in place
        assert_eq!(c.probe(a, true), CpuAccess::Hit);
        assert_eq!(c.upgrades(), 1);
    }

    #[test]
    fn eviction_reports_victim_dirtiness() {
        let c_size = 4 << 10;
        let sets = c_size / (128 * 2);
        let stride = sets * 128;
        let mut c = L2Cache::new(c_size);
        c.install(Addr::new(0), LineState::Exclusive);
        c.install(Addr::new(stride), LineState::Shared);
        // Third line in the same set evicts the LRU (line 0, dirty).
        let v = c.install(Addr::new(2 * stride), LineState::Shared).unwrap();
        assert_eq!(v.addr, Addr::new(0));
        assert!(v.dirty);
        let v2 = c.install(Addr::new(3 * stride), LineState::Shared).unwrap();
        assert_eq!(v2.addr, Addr::new(stride));
        assert!(!v2.dirty);
    }

    #[test]
    fn locked_lines_survive_eviction() {
        let c_size = 4 << 10;
        let stride = (c_size / (128 * 2)) * 128;
        let mut c = L2Cache::new(c_size);
        c.install(Addr::new(0), LineState::Shared);
        c.set_locked(Addr::new(0), true);
        c.install(Addr::new(stride), LineState::Shared);
        let v = c.install(Addr::new(2 * stride), LineState::Shared).unwrap();
        assert_eq!(v.addr, Addr::new(stride), "locked way must not be chosen");
        assert_eq!(c.state_of(Addr::new(0)), Some(LineState::Shared));
        c.set_locked(Addr::new(0), false);
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = L2Cache::new(4 << 10);
        let a = Addr::new(0x100);
        c.install(a, LineState::Exclusive);
        assert_eq!(c.downgrade(a), Some(LineState::Exclusive));
        assert_eq!(c.state_of(a), Some(LineState::Shared));
        assert_eq!(c.invalidate(a), Some(LineState::Shared));
        assert_eq!(c.state_of(a), None);
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn miss_rate_counts_upgrades() {
        let mut c = L2Cache::new(4 << 10);
        let a = Addr::new(0);
        c.probe(a, false); // miss
        c.install(a, LineState::Shared);
        c.probe(a, false); // hit
        c.probe(a, true); // upgrade
        assert!((c.miss_rate() - 2.0 / 3.0).abs() < 1e-9);
    }
}
