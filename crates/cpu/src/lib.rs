//! The FLASH compute processor.
//!
//! Paper §3.2: "an aggressive, 400 MIPS compute processor", i.e. up to
//! four instruction/reference slots per 10 ns system cycle; "blocking
//! reads but non-blocking writes" with index-conflict stalls and same-line
//! write merging; a two-way set-associative cache with 128-byte lines,
//! up to 4 outstanding misses, and critical-word-first fills; the
//! processor implements its own cache control, so MAGIC issues bus
//! transactions (interventions, invalidations) to reach it.
//!
//! Like Tango Lite in the original methodology, applications are reduced
//! to per-processor *reference streams* ([`stream::RefStream`]): busy
//! gaps, reads, writes and synchronization markers. [`proc::Processor`]
//! interprets a stream against its cache, producing coherence requests for
//! MAGIC and stall-time accounting (busy / read / write / sync /
//! cache-contention, the execution-time buckets of paper Figure 4.1).

pub mod cache;
pub mod mshr;
pub mod proc;
pub mod stream;

pub use cache::{CpuAccess, L2Cache, LineState, Victim};
pub use mshr::{MissKind, Mshr, MshrFile};
pub use proc::{CpuOut, ProcStats, Processor, RunOutcome};
pub use stream::{Mailbox, MailboxHandle, MailboxStream, RefStream, SliceStream, WorkItem};
