//! Miss status holding registers.
//!
//! The processor cache "supports up to 4 outstanding cache misses"
//! (paper §3.2). Each MSHR tracks one outstanding miss or upgrade; the
//! index-conflict and merge rules of §3.2 are evaluated against this file.

use crate::cache::L2Cache;
use flash_engine::{Addr, Cycle};

/// The kind of outstanding transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// Blocking read miss.
    Read,
    /// Non-blocking write miss (needs data + exclusivity).
    Write,
    /// Non-blocking upgrade (has data, needs exclusivity).
    Upgrade,
}

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mshr {
    /// Line address of the miss.
    pub line: Addr,
    /// Transaction kind.
    pub kind: MissKind,
    /// Issue time (for latency accounting).
    pub issued_at: Cycle,
    /// A write was merged into this read miss; exclusivity must be
    /// obtained after the data arrives.
    pub write_merged: bool,
    /// An invalidation raced past the in-flight reply (the home granted
    /// this miss, then an invalidating transaction removed the grant): the
    /// arriving data is consumed once but must not be cached.
    pub invalidated: bool,
}

/// The file of (up to 4) outstanding misses.
///
/// # Examples
///
/// ```
/// use flash_cpu::{MshrFile, MissKind};
/// use flash_engine::{Addr, Cycle};
///
/// let mut f = MshrFile::new(4);
/// assert!(f.allocate(Addr::new(0), MissKind::Read, Cycle::ZERO));
/// assert!(f.find(Addr::new(0x7f)).is_some(), "same line");
/// assert!(f.find(Addr::new(0x80)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Option<Mshr>>,
}

impl MshrFile {
    /// Creates a file with `n` registers.
    pub fn new(n: usize) -> Self {
        MshrFile {
            entries: vec![None; n],
        }
    }

    /// Allocates an entry. Returns `false` if the file is full.
    pub fn allocate(&mut self, line: Addr, kind: MissKind, at: Cycle) -> bool {
        match self.entries.iter_mut().find(|e| e.is_none()) {
            Some(slot) => {
                *slot = Some(Mshr {
                    line: line.line(),
                    kind,
                    issued_at: at,
                    write_merged: false,
                    invalidated: false,
                });
                true
            }
            None => false,
        }
    }

    /// The outstanding miss covering `addr`'s line, if any.
    pub fn find(&self, addr: Addr) -> Option<&Mshr> {
        self.entries
            .iter()
            .flatten()
            .find(|m| m.line.same_line(addr))
    }

    /// Mutable access to the outstanding miss covering `addr`'s line.
    pub fn find_mut(&mut self, addr: Addr) -> Option<&mut Mshr> {
        self.entries
            .iter_mut()
            .flatten()
            .find(|m| m.line.same_line(addr))
    }

    /// Releases the entry for `addr`'s line, returning it.
    pub fn release(&mut self, addr: Addr) -> Option<Mshr> {
        for e in self.entries.iter_mut() {
            if e.is_some_and(|m| m.line.same_line(addr)) {
                return e.take();
            }
        }
        None
    }

    /// Whether all registers are in use.
    pub fn is_full(&self) -> bool {
        self.entries.iter().all(Option::is_some)
    }

    /// Number of registers in use.
    pub fn in_use(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// The paper's index-conflict rule: a new access to `addr` stalls if
    /// any outstanding miss maps to the same cache index with a different
    /// tag.
    pub fn index_conflict(&self, addr: Addr, cache: &L2Cache) -> bool {
        let idx = cache.index_of(addr);
        self.entries
            .iter()
            .flatten()
            .any(|m| cache.index_of(m.line) == idx && !m.line.same_line(addr))
    }

    /// Iterates over outstanding misses.
    pub fn iter(&self) -> impl Iterator<Item = &Mshr> {
        self.entries.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut f = MshrFile::new(4);
        for i in 0..4 {
            assert!(f.allocate(Addr::new(i * 128), MissKind::Write, Cycle::ZERO));
        }
        assert!(f.is_full());
        assert!(!f.allocate(Addr::new(999 * 128), MissKind::Write, Cycle::ZERO));
        assert_eq!(f.in_use(), 4);
    }

    #[test]
    fn release_frees_slot() {
        let mut f = MshrFile::new(2);
        f.allocate(Addr::new(0), MissKind::Read, Cycle::new(5));
        let m = f.release(Addr::new(0x40)).expect("same line");
        assert_eq!(m.issued_at, Cycle::new(5));
        assert_eq!(f.in_use(), 0);
        assert!(f.release(Addr::new(0)).is_none());
    }

    #[test]
    fn index_conflict_detection() {
        let cache = L2Cache::new(4 << 10); // 16 sets
        let mut f = MshrFile::new(4);
        let a = Addr::new(0);
        f.allocate(a, MissKind::Write, Cycle::ZERO);
        // Same index (set 0), different tag: conflict.
        let conflicting = Addr::new(16 * 128);
        assert!(f.index_conflict(conflicting, &cache));
        // Same line: merge territory, not a conflict.
        assert!(!f.index_conflict(Addr::new(0x10), &cache));
        // Different index: fine.
        assert!(!f.index_conflict(Addr::new(128), &cache));
    }

    #[test]
    fn write_merge_flag() {
        let mut f = MshrFile::new(2);
        f.allocate(Addr::new(0), MissKind::Read, Cycle::ZERO);
        f.find_mut(Addr::new(0)).unwrap().write_merged = true;
        assert!(f.find(Addr::new(0)).unwrap().write_merged);
    }
}
