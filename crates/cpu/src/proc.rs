//! The compute-processor state machine.
//!
//! The processor interprets its reference stream against its cache at 400
//! MIPS (4 issue slots per 10 ns system cycle — time is tracked internally
//! in *quarter-cycles*). It blocks on read misses and synchronization;
//! writes are non-blocking and merge per the paper's rules; MAGIC reaches
//! the cache through interventions and invalidations, whose bus occupancy
//! shows up as the "Cont" bucket of paper Figure 4.1.

use crate::cache::{CpuAccess, L2Cache, LineState, Victim};
use crate::mshr::{MissKind, MshrFile};
use crate::stream::{RefStream, WorkItem};
use flash_engine::{Addr, Cycle, Histogram};

/// Outbound coherence requests from the processor to MAGIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuOut {
    /// Read miss (`PiGet`).
    Get(Addr),
    /// Write miss (`PiGetX`).
    GetX(Addr),
    /// Write hit on a Shared line (`PiUpgrade`).
    Upgrade(Addr),
    /// Dirty eviction with data (`PiWriteback`).
    Writeback(Addr),
    /// Shared eviction (`PiRplHint`).
    Hint(Addr),
}

/// Why [`Processor::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Stalled on a read miss (or waiting for an MSHR needed by a read).
    BlockedRead,
    /// Stalled on a write (MSHR file full or index conflict).
    BlockedWrite,
    /// Reached a global barrier.
    Barrier,
    /// Wants lock `id`.
    Lock(u32),
    /// Released lock `id` (the machine should resume the processor).
    Unlock(u32),
    /// Exhausted the run quantum; resume at the processor's current time.
    Quantum,
    /// The open-loop stream has no work *yet* ([`RefStream::try_next`]
    /// returned `None`): the processor is idle, waiting for the machine to
    /// admit the next arrival. Closed-loop streams never starve.
    Starved,
    /// The reference stream ended.
    Finished,
}

/// Execution-time accounting in quarter-cycles, the raw material for the
/// paper's Figure 4.1 breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcStats {
    /// Useful computation (and hit references).
    pub busy_q: u64,
    /// Blocking-read stall time.
    pub read_stall_q: u64,
    /// Write stall time (MSHR exhaustion / index conflicts).
    pub write_stall_q: u64,
    /// Synchronization wait time.
    pub sync_stall_q: u64,
    /// Open-loop idle time: the stream was open but no reference had
    /// arrived yet. Always zero for closed-loop streams, so adding it to
    /// [`ProcStats::total_q`] changes no existing number.
    pub idle_q: u64,
    /// Cache contention: processor waiting for its own cache while MAGIC
    /// held the bus (interventions, invalidations).
    pub cont_q: u64,
    /// Loads issued.
    pub reads: u64,
    /// Stores issued.
    pub writes: u64,
    /// Read misses sent to MAGIC.
    pub read_misses: u64,
    /// Write misses sent to MAGIC.
    pub write_misses: u64,
    /// Upgrades sent to MAGIC.
    pub upgrades: u64,
    /// Writes merged into outstanding misses.
    pub merges: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    /// Shared evictions (replacement hints).
    pub hints: u64,
    /// Invalidations received.
    pub invals_received: u64,
    /// Interventions received.
    pub interventions: u64,
    /// Completions or unblocks observed with a clock earlier than the
    /// interval they close (`now < issued_at` / `now < block start`).
    /// Impossible in a correct time-ordered schedule — asserted in debug
    /// builds and counted here (instead of silently clamping to zero)
    /// so release-mode event-ordering bugs surface in the stats.
    pub clock_skew: u64,
    /// Wakeups delivered at a machine time before the local pipeline
    /// clock reached the block point (the pipeline ran ahead inside its
    /// quantum). Legitimate, zero-stall events — see
    /// `Processor::charge_unblock`.
    pub early_wakeups: u64,
}

impl ProcStats {
    /// Total accounted quarter-cycles.
    pub fn total_q(&self) -> u64 {
        self.busy_q
            + self.read_stall_q
            + self.write_stall_q
            + self.sync_stall_q
            + self.cont_q
            + self.idle_q
    }

    /// All references issued.
    pub fn references(&self) -> u64 {
        self.reads + self.writes
    }

    /// Miss rate over all references (misses + upgrades).
    pub fn miss_rate(&self) -> f64 {
        let m = self.read_misses + self.write_misses + self.upgrades;
        if self.references() == 0 {
            0.0
        } else {
            m as f64 / self.references() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Read,
    Write,
    Sync,
    /// Open-loop starvation: parked until the machine admits an arrival.
    Idle,
}

/// Cycles the cache stays busy servicing a data intervention (paper Table
/// 3.2: 20 cycles to the first double word).
const INTERV_BUSY_CYCLES: u64 = 20;
/// Cycles the cache stays busy servicing a state-only transaction
/// (invalidation; paper Table 3.2: 15 cycles).
const INVAL_BUSY_CYCLES: u64 = 15;
/// Items interpreted per [`Processor::run`] call before yielding.
const RUN_QUANTUM: u64 = 50_000;
/// Maximum quarter-cycles a run may advance past its entry time before
/// yielding, bounding run-ahead skew relative to the event loop (so
/// invalidations and DMA interleave at sane points).
const TIME_QUANTUM_Q: u64 = 8_000;

/// One compute processor.
pub struct Processor {
    cache: L2Cache,
    mshrs: MshrFile,
    stream: Box<dyn RefStream>,
    /// Absolute time in quarter-cycles.
    qtime: u64,
    cache_busy_q: u64,
    pending: Option<WorkItem>,
    block_start_q: Option<u64>,
    block_kind: Option<BlockKind>,
    stats: ProcStats,
    lat_hist: Histogram,
    finished: bool,
    finish_q: u64,
}

impl std::fmt::Debug for Processor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Processor")
            .field("qtime", &self.qtime)
            .field("finished", &self.finished)
            .field("mshrs_in_use", &self.mshrs.in_use())
            .finish()
    }
}

impl Processor {
    /// Creates a processor with a cache of `cache_bytes` running `stream`.
    pub fn new(cache_bytes: u64, mshrs: usize, stream: Box<dyn RefStream>) -> Self {
        Processor {
            cache: L2Cache::new(cache_bytes),
            mshrs: MshrFile::new(mshrs),
            stream,
            qtime: 0,
            cache_busy_q: 0,
            pending: None,
            block_start_q: None,
            block_kind: None,
            stats: ProcStats::default(),
            lat_hist: Histogram::new(),
            finished: false,
            finish_q: 0,
        }
    }

    /// Replaces the reference stream. Used by the machine to attach an
    /// open-loop [`crate::MailboxStream`] after construction; swapping the
    /// stream of a running processor with a pending item is a logic error.
    pub fn set_stream(&mut self, stream: Box<dyn RefStream>) {
        debug_assert!(self.pending.is_none(), "stream swap with an item in flight");
        self.stream = stream;
    }

    /// Distribution of miss transaction latencies (issue to reply).
    pub fn miss_latency(&self) -> &Histogram {
        &self.lat_hist
    }

    /// Current processor time in system cycles (rounded up).
    pub fn now(&self) -> Cycle {
        Cycle::new(self.qtime.div_ceil(4))
    }

    /// Whether the stream has ended.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Time the stream ended (valid once [`Processor::finished`]).
    pub fn finish_time(&self) -> Cycle {
        Cycle::new(self.finish_q.div_ceil(4))
    }

    /// Execution-time statistics.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// The processor cache (for inspection in tests and reports).
    pub fn cache(&self) -> &L2Cache {
        &self.cache
    }

    /// Number of MSHRs currently allocated (checked mode's occupancy and
    /// drain audits).
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.in_use()
    }

    /// The allocated MSHRs themselves (wedge diagnostics: who is waiting
    /// on what).
    pub fn mshr_entries(&self) -> impl Iterator<Item = &crate::mshr::Mshr> {
        self.mshrs.iter()
    }

    fn charge_unblock(&mut self, now_q: u64) {
        if let (Some(start), Some(kind)) = (self.block_start_q, self.block_kind) {
            // `start` is the *local* pipeline clock at the block point,
            // which legitimately runs ahead of the machine clock inside a
            // quantum: a reply to an earlier non-blocking request (a write
            // upgrade issued before the pipeline ran ahead) can wake the
            // processor at a machine time before it blocked. That is an
            // early wakeup with no stall to charge — counted, not an
            // error, unlike the global-clock underflows in
            // [`Processor::record_latency`].
            let stall = now_q.checked_sub(start).unwrap_or_else(|| {
                self.stats.early_wakeups += 1;
                0
            });
            match kind {
                BlockKind::Read => self.stats.read_stall_q += stall,
                BlockKind::Write => self.stats.write_stall_q += stall,
                BlockKind::Sync => self.stats.sync_stall_q += stall,
                BlockKind::Idle => self.stats.idle_q += stall,
            }
            self.qtime = self.qtime.max(now_q);
        }
        self.block_start_q = None;
        self.block_kind = None;
    }

    /// Records a completed miss's latency. A completion earlier than its
    /// issue is a clock running backwards: asserted in debug builds,
    /// counted (and recorded as 0 so histogram counts stay conserved) in
    /// release.
    fn record_latency(&mut self, now: Cycle, issued_at: Cycle) {
        match now.raw().checked_sub(issued_at.raw()) {
            Some(lat) => self.lat_hist.record(lat),
            None => {
                debug_assert!(false, "miss completed at {now} before issue at {issued_at}");
                self.stats.clock_skew += 1;
                self.lat_hist.record(0);
            }
        }
    }

    fn block(&mut self, kind: BlockKind) {
        self.block_start_q = Some(self.qtime);
        self.block_kind = Some(kind);
    }

    fn cycle(&self) -> Cycle {
        Cycle::new(self.qtime.div_ceil(4))
    }

    fn wait_for_cache(&mut self) {
        if self.qtime < self.cache_busy_q {
            self.stats.cont_q += self.cache_busy_q - self.qtime;
            self.qtime = self.cache_busy_q;
        }
    }

    fn victim_actions(
        &mut self,
        victim: Option<Victim>,
        at: Cycle,
        out: &mut Vec<(Cycle, CpuOut)>,
    ) {
        if let Some(v) = victim {
            if v.dirty {
                self.stats.writebacks += 1;
                out.push((at, CpuOut::Writeback(v.addr)));
            } else {
                self.stats.hints += 1;
                out.push((at, CpuOut::Hint(v.addr)));
            }
        }
    }

    /// Interprets the stream from time `now` until the processor blocks,
    /// finishes, or exhausts its quantum. Outbound requests are appended
    /// to `out` with their issue times.
    pub fn run(&mut self, now: Cycle, out: &mut Vec<(Cycle, CpuOut)>) -> RunOutcome {
        if self.finished {
            return RunOutcome::Finished;
        }
        self.charge_unblock(now.raw() * 4);
        let entry_q = self.qtime;
        let mut budget = RUN_QUANTUM;
        loop {
            if budget == 0 || self.qtime - entry_q > TIME_QUANTUM_Q {
                return RunOutcome::Quantum;
            }
            budget -= 1;
            // `retrying` marks an item replayed after a block: reference
            // counters must not double-count it.
            let (item, retrying) = match self.pending.take() {
                Some(it) => (it, true),
                None => match self.stream.try_next() {
                    Some(it) => (it, false),
                    None => {
                        self.block(BlockKind::Idle);
                        return RunOutcome::Starved;
                    }
                },
            };
            match item {
                WorkItem::Busy(n) => {
                    self.qtime += n;
                    self.stats.busy_q += n;
                }
                WorkItem::Read(a) => {
                    // Count the reference when it first leaves the stream,
                    // not when it resolves: a read whose first encounter
                    // blocks (MSHR conflict, data in flight) would otherwise
                    // never be counted, making the totals timing-sensitive.
                    if !retrying {
                        self.stats.reads += 1;
                    }
                    self.wait_for_cache();
                    match self.cache.probe(a, false) {
                        CpuAccess::Hit => {
                            self.stats.busy_q += 1;
                            self.qtime += 1;
                        }
                        CpuAccess::NeedsUpgrade => unreachable!("reads never need upgrades"),
                        CpuAccess::Miss => {
                            if self.mshrs.find(a).is_some() {
                                // Data already in flight: wait for it.
                                self.pending = Some(item);
                                self.block(BlockKind::Read);
                                return RunOutcome::BlockedRead;
                            }
                            if self.mshrs.is_full() || self.mshrs.index_conflict(a, &self.cache) {
                                self.pending = Some(item);
                                self.block(BlockKind::Read);
                                return RunOutcome::BlockedRead;
                            }
                            self.stats.read_misses += 1;
                            let at = self.cycle();
                            self.mshrs.allocate(a, MissKind::Read, at);
                            out.push((at, CpuOut::Get(a.line())));
                            // Keep the read pending: a wakeup for some
                            // other line's completion must re-block on
                            // this one, not skip past it.
                            self.pending = Some(item);
                            self.block(BlockKind::Read);
                            return RunOutcome::BlockedRead;
                        }
                    }
                }
                WorkItem::Write(a) => {
                    // Counted at first stream take, as for reads above.
                    if !retrying {
                        self.stats.writes += 1;
                    }
                    self.wait_for_cache();
                    match self.cache.probe(a, true) {
                        CpuAccess::Hit => {
                            self.stats.busy_q += 1;
                            self.qtime += 1;
                        }
                        CpuAccess::NeedsUpgrade => {
                            if self.mshrs.find(a).is_some() {
                                // Upgrade (or miss) already outstanding: merge.
                                self.stats.merges += 1;
                                self.stats.busy_q += 1;
                                self.qtime += 1;
                            } else if self.mshrs.is_full()
                                || self.mshrs.index_conflict(a, &self.cache)
                            {
                                self.pending = Some(item);
                                self.block(BlockKind::Write);
                                return RunOutcome::BlockedWrite;
                            } else {
                                self.stats.upgrades += 1;
                                let at = self.cycle();
                                self.mshrs.allocate(a, MissKind::Upgrade, at);
                                self.cache.set_locked(a, true);
                                out.push((at, CpuOut::Upgrade(a.line())));
                                self.stats.busy_q += 1;
                                self.qtime += 1;
                            }
                        }
                        CpuAccess::Miss => {
                            if let Some(m) = self.mshrs.find_mut(a) {
                                if m.kind == MissKind::Read {
                                    m.write_merged = true;
                                }
                                self.stats.merges += 1;
                                self.stats.busy_q += 1;
                                self.qtime += 1;
                            } else if self.mshrs.is_full()
                                || self.mshrs.index_conflict(a, &self.cache)
                            {
                                self.pending = Some(item);
                                self.block(BlockKind::Write);
                                return RunOutcome::BlockedWrite;
                            } else {
                                self.stats.write_misses += 1;
                                let at = self.cycle();
                                self.mshrs.allocate(a, MissKind::Write, at);
                                out.push((at, CpuOut::GetX(a.line())));
                                self.stats.busy_q += 1;
                                self.qtime += 1;
                            }
                        }
                    }
                }
                WorkItem::Barrier => {
                    // Synchronization operations are fences: outstanding
                    // writes must drain first.
                    if self.mshrs.in_use() > 0 {
                        self.pending = Some(item);
                        self.block(BlockKind::Write);
                        return RunOutcome::BlockedWrite;
                    }
                    self.block(BlockKind::Sync);
                    return RunOutcome::Barrier;
                }
                WorkItem::Lock(id) => {
                    if self.mshrs.in_use() > 0 {
                        self.pending = Some(item);
                        self.block(BlockKind::Write);
                        return RunOutcome::BlockedWrite;
                    }
                    self.block(BlockKind::Sync);
                    return RunOutcome::Lock(id);
                }
                WorkItem::Unlock(id) => {
                    if self.mshrs.in_use() > 0 {
                        self.pending = Some(item);
                        self.block(BlockKind::Write);
                        return RunOutcome::BlockedWrite;
                    }
                    self.block(BlockKind::Sync);
                    return RunOutcome::Unlock(id);
                }
                WorkItem::Done => {
                    self.finished = true;
                    self.finish_q = self.qtime;
                    return RunOutcome::Finished;
                }
            }
        }
    }

    /// Delivers read-miss data (`PPut`/`PPutX`). Installs the line, frees
    /// the MSHR, and emits any eviction traffic. If a write was merged
    /// into the miss and the data arrived shared, an upgrade is issued
    /// immediately.
    pub fn complete_read(
        &mut self,
        addr: Addr,
        exclusive: bool,
        now: Cycle,
        out: &mut Vec<(Cycle, CpuOut)>,
    ) {
        let Some(m) = self.mshrs.release(addr) else {
            return; // stale reply (e.g. after an intervening invalidation)
        };
        self.record_latency(now, m.issued_at);
        // Planted bug (`planted-bugs`, test-only): pretend the grant was
        // never invalidated, so a stale exclusive reply resurrects a dead
        // owner — the historical merged-write reissue bug, re-introduced
        // for the minimizer's shrink suite. Checker-visible as an SWMR /
        // stale-value violation.
        let invalidated = m.invalidated && !cfg!(feature = "planted-bugs");
        if invalidated {
            // The grant was invalidated or poisoned in flight: use the
            // data once without caching it (an exclusive reply would
            // otherwise resurrect a stale owner). A subsequent reference
            // re-fetches.
            if m.write_merged {
                // A store was merged into this read miss; dropping the
                // grant must not drop the store. Reissue it as a write
                // miss (the MSHR we just released is free again).
                self.stats.write_misses += 1;
                self.mshrs.allocate(addr, MissKind::Write, now);
                out.push((now, CpuOut::GetX(addr.line())));
            }
            return;
        }
        let state = if exclusive || m.kind != MissKind::Read {
            LineState::Exclusive
        } else {
            LineState::Shared
        };
        let victim = self.cache.install(addr.line(), state);
        self.victim_actions(victim, now, out);
        if m.write_merged && state == LineState::Shared {
            self.stats.upgrades += 1;
            self.mshrs.allocate(addr, MissKind::Upgrade, now);
            self.cache.set_locked(addr, true);
            out.push((now, CpuOut::Upgrade(addr.line())));
        }
    }

    /// Delivers write-miss data or an upgrade acknowledgement.
    pub fn complete_write(&mut self, addr: Addr, now: Cycle, out: &mut Vec<(Cycle, CpuOut)>) {
        let Some(m) = self.mshrs.release(addr) else {
            return;
        };
        self.record_latency(now, m.issued_at);
        if m.invalidated {
            // Poisoned grant: complete the write architecturally without
            // caching the line.
            self.cache.set_locked(addr, false);
            self.cache.invalidate(addr.line());
            return;
        }
        match m.kind {
            MissKind::Upgrade => {
                self.cache.set_locked(addr, false);
                self.cache.install(addr.line(), LineState::Exclusive);
            }
            _ => {
                let victim = self.cache.install(addr.line(), LineState::Exclusive);
                self.victim_actions(victim, now, out);
            }
        }
    }

    /// Delivers any coherence reply (`PPut`, `PPutX`, `PUpgAck`), routing
    /// it to the outstanding miss's completion path by MSHR kind.
    pub fn deliver_reply(
        &mut self,
        addr: Addr,
        exclusive: bool,
        now: Cycle,
        out: &mut Vec<(Cycle, CpuOut)>,
    ) {
        match self.mshrs.find(addr).map(|m| m.kind) {
            Some(MissKind::Read) => self.complete_read(addr, exclusive, now, out),
            Some(MissKind::Write) | Some(MissKind::Upgrade) => self.complete_write(addr, now, out),
            None => {}
        }
    }

    /// Handles a NACKed request: returns the retry to issue (the MSHR
    /// stays allocated).
    pub fn nack_retry(&mut self, addr: Addr) -> Option<CpuOut> {
        let m = self.mshrs.find(addr)?;
        Some(match m.kind {
            MissKind::Read => CpuOut::Get(m.line),
            MissKind::Write => CpuOut::GetX(m.line),
            MissKind::Upgrade => CpuOut::Upgrade(m.line),
        })
    }

    /// Whether a miss is outstanding for `addr`'s line. The machine defers
    /// interventions to such lines until the data arrives (the reply is
    /// already in flight).
    pub fn has_mshr(&self, addr: Addr) -> bool {
        self.mshrs.find(addr).is_some()
    }

    /// Poisons an outstanding miss: its reply will complete the processor
    /// but the line will not be cached. The machine uses this when it
    /// abandons an intervention that waited too long for the in-flight
    /// grant (breaking request/forward cycles).
    pub fn poison_pending(&mut self, addr: Addr) {
        if let Some(m) = self.mshrs.find_mut(addr) {
            m.invalidated = true;
        }
    }

    /// MAGIC invalidates a line (`PInval`). Returns whether a copy was
    /// dropped. The bus transaction occupies the cache.
    pub fn inval(&mut self, addr: Addr, now: Cycle) -> bool {
        self.stats.invals_received += 1;
        self.bus_busy(now, INVAL_BUSY_CYCLES);
        // An invalidation that races past an in-flight shared-data grant
        // must not leave a stale copy: mark the pending read so its reply
        // is consumed without caching.
        if let Some(m) = self.mshrs.find_mut(addr) {
            if m.kind == MissKind::Read {
                m.invalidated = true;
            }
        }
        // An outstanding upgrade to this line is invalidated too: the
        // eventual reply will re-install exclusively, which is correct.
        self.cache.set_locked(addr, false);
        self.cache.invalidate(addr.line()).is_some()
    }

    /// MAGIC intervention: retrieve (and for `exclusive`, invalidate) the
    /// line from the cache. Returns whether the line was found.
    pub fn intervention(&mut self, addr: Addr, exclusive: bool, now: Cycle) -> bool {
        self.stats.interventions += 1;
        self.bus_busy(now, INTERV_BUSY_CYCLES);
        if exclusive {
            self.cache.invalidate(addr.line()).is_some()
        } else {
            self.cache.downgrade(addr.line()).is_some()
        }
    }

    fn bus_busy(&mut self, now: Cycle, cycles: u64) {
        let start = (now.raw() * 4).max(self.cache_busy_q);
        self.cache_busy_q = start + cycles * 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SliceStream;

    fn proc(items: Vec<WorkItem>) -> Processor {
        Processor::new(4 << 10, 4, Box::new(SliceStream::new(items)))
    }

    #[test]
    fn busy_only_stream_finishes() {
        let mut p = proc(vec![WorkItem::Busy(400)]);
        let mut out = Vec::new();
        assert_eq!(p.run(Cycle::ZERO, &mut out), RunOutcome::Finished);
        assert!(out.is_empty());
        assert_eq!(p.stats().busy_q, 400);
        assert_eq!(p.finish_time(), Cycle::new(100));
    }

    #[test]
    fn read_miss_blocks_and_completes() {
        let a = Addr::new(0x1000);
        let mut p = proc(vec![
            WorkItem::Read(a),
            WorkItem::Read(a),
            WorkItem::Busy(4),
        ]);
        let mut out = Vec::new();
        assert_eq!(p.run(Cycle::ZERO, &mut out), RunOutcome::BlockedRead);
        assert_eq!(out, vec![(Cycle::ZERO, CpuOut::Get(a))]);
        out.clear();
        p.complete_read(a, false, Cycle::new(24), &mut out);
        assert_eq!(p.run(Cycle::new(24), &mut out), RunOutcome::Finished);
        // 24-cycle read stall charged; second read hits.
        assert_eq!(p.stats().read_stall_q, 96);
        assert_eq!(p.stats().read_misses, 1);
        assert_eq!(p.stats().reads, 2);
    }

    #[test]
    fn write_miss_does_not_block() {
        let a = Addr::new(0x1000);
        let mut p = proc(vec![WorkItem::Write(a), WorkItem::Busy(40)]);
        let mut out = Vec::new();
        assert_eq!(p.run(Cycle::ZERO, &mut out), RunOutcome::Finished);
        assert_eq!(out, vec![(Cycle::ZERO, CpuOut::GetX(a))]);
        assert_eq!(p.stats().write_misses, 1);
        assert_eq!(p.stats().write_stall_q, 0);
    }

    #[test]
    fn write_merge_into_outstanding_miss() {
        let a = Addr::new(0x1000);
        let mut p = proc(vec![
            WorkItem::Write(a),
            WorkItem::Write(Addr::new(0x1008)),
            WorkItem::Busy(1),
        ]);
        let mut out = Vec::new();
        p.run(Cycle::ZERO, &mut out);
        assert_eq!(out.len(), 1, "second write merged");
        assert_eq!(p.stats().merges, 1);
    }

    #[test]
    fn invalidated_grant_reissues_merged_write() {
        // Regression: `complete_read` on a poisoned/invalidated grant used
        // to drop a merged store on the floor along with the grant — the
        // line stayed uncached *and* the write was never performed.
        let a = Addr::new(0x2000);
        let mut p = proc(vec![WorkItem::Busy(1)]);
        // A read miss with a store merged in, whose grant is invalidated
        // while in flight (the request/forward race `poison_pending`
        // breaks).
        p.mshrs.allocate(a, MissKind::Read, Cycle::ZERO);
        p.mshrs.find_mut(a).expect("allocated").write_merged = true;
        p.poison_pending(a);
        let mut out = Vec::new();
        p.complete_read(a, true, Cycle::new(50), &mut out);
        // The poisoned grant must not be cached...
        assert_eq!(p.cache.state_of(a), None);
        // ...but the merged store is reissued as a write miss.
        assert_eq!(out, vec![(Cycle::new(50), CpuOut::GetX(a.line()))]);
        let m = p.mshrs.find(a).expect("write miss outstanding");
        assert_eq!(m.kind, MissKind::Write);
        assert!(!m.invalidated);
        assert_eq!(p.stats().write_misses, 1);
        // Completing the reissued miss installs the line exclusively.
        out.clear();
        p.complete_write(a, Cycle::new(80), &mut out);
        assert_eq!(p.cache.state_of(a), Some(LineState::Exclusive));
        assert_eq!(p.outstanding_misses(), 0);
    }

    #[test]
    fn mshr_exhaustion_stalls_writes() {
        // 5 write misses to distinct sets with 4 MSHRs.
        let items: Vec<WorkItem> = (0..5)
            .map(|i| WorkItem::Write(Addr::new(i * 128)))
            .collect();
        let mut p = proc(items);
        let mut out = Vec::new();
        assert_eq!(p.run(Cycle::ZERO, &mut out), RunOutcome::BlockedWrite);
        assert_eq!(out.len(), 4);
        // Completing one frees an MSHR; the fifth write proceeds.
        out.clear();
        p.complete_write(Addr::new(0), Cycle::new(30), &mut out);
        assert_eq!(p.run(Cycle::new(30), &mut out), RunOutcome::Finished);
        assert_eq!(p.stats().write_misses, 5);
        // Blocked at q=4 (after four 1-slot writes), resumed at cycle 30.
        assert_eq!(p.stats().write_stall_q, 120 - 4);
    }

    #[test]
    fn index_conflict_stalls() {
        // 4 KB cache, 16 sets: lines 0 and 16*128 share set 0.
        let a = Addr::new(0);
        let b = Addr::new(16 * 128);
        let mut p = proc(vec![WorkItem::Write(a), WorkItem::Write(b)]);
        let mut out = Vec::new();
        assert_eq!(p.run(Cycle::ZERO, &mut out), RunOutcome::BlockedWrite);
        assert_eq!(out.len(), 1);
        out.clear();
        p.complete_write(a, Cycle::new(40), &mut out);
        assert_eq!(p.run(Cycle::new(40), &mut out), RunOutcome::Finished);
        assert_eq!(p.stats().write_misses, 2);
    }

    #[test]
    fn upgrade_path_and_ack() {
        let a = Addr::new(0x2000);
        let mut p = proc(vec![
            WorkItem::Read(a),
            WorkItem::Write(a),
            WorkItem::Write(a),
            WorkItem::Busy(1),
        ]);
        let mut out = Vec::new();
        p.run(Cycle::ZERO, &mut out); // blocks on read
        out.clear();
        p.complete_read(a, false, Cycle::new(24), &mut out); // shared data
        assert_eq!(p.run(Cycle::new(24), &mut out), RunOutcome::Finished);
        // First write needed an upgrade; second merged into it.
        assert!(out
            .iter()
            .any(|(_, o)| matches!(o, CpuOut::Upgrade(x) if x.same_line(a))));
        assert_eq!(p.stats().upgrades, 1);
        assert_eq!(p.stats().merges, 1);
        let mut out2 = Vec::new();
        p.complete_write(a, Cycle::new(60), &mut out2);
        assert_eq!(p.cache().state_of(a), Some(LineState::Exclusive));
    }

    #[test]
    fn eviction_emits_writeback_or_hint() {
        let stride = 16 * 128; // set-0 stride in the 4 KB cache
        let a = Addr::new(0);
        let b = Addr::new(stride);
        let c = Addr::new(2 * stride);
        let mut p = proc(vec![
            WorkItem::Read(a),
            WorkItem::Read(b),
            WorkItem::Read(c),
        ]);
        let mut out = Vec::new();
        p.run(Cycle::ZERO, &mut out);
        p.complete_read(a, true, Cycle::new(24), &mut out); // exclusive (dirty-equivalent)
        p.run(Cycle::new(24), &mut out);
        p.complete_read(b, false, Cycle::new(48), &mut out);
        p.run(Cycle::new(48), &mut out);
        out.clear();
        p.complete_read(c, false, Cycle::new(72), &mut out); // evicts a (dirty)
        assert!(out
            .iter()
            .any(|(_, o)| matches!(o, CpuOut::Writeback(x) if x.same_line(a))));
        assert_eq!(p.stats().writebacks, 1);
    }

    #[test]
    fn barrier_and_sync_accounting() {
        let mut p = proc(vec![
            WorkItem::Busy(4),
            WorkItem::Barrier,
            WorkItem::Busy(4),
        ]);
        let mut out = Vec::new();
        assert_eq!(p.run(Cycle::ZERO, &mut out), RunOutcome::Barrier);
        // Released 10 cycles later.
        assert_eq!(p.run(Cycle::new(11), &mut out), RunOutcome::Finished);
        assert_eq!(p.stats().sync_stall_q, 11 * 4 - 4);
        assert_eq!(p.stats().busy_q, 8);
    }

    #[test]
    fn intervention_downgrades_and_occupies_cache() {
        let a = Addr::new(0x3000);
        let mut p = proc(vec![
            WorkItem::Read(a),
            WorkItem::Read(a), // hit, but cache busy from intervention
            WorkItem::Busy(1),
        ]);
        let mut out = Vec::new();
        p.run(Cycle::ZERO, &mut out);
        p.complete_read(a, true, Cycle::new(24), &mut out);
        // Intervention arrives before the processor resumes.
        assert!(p.intervention(a, false, Cycle::new(24)));
        assert_eq!(p.cache().state_of(a), Some(LineState::Shared));
        assert_eq!(p.run(Cycle::new(24), &mut out), RunOutcome::Finished);
        assert!(
            p.stats().cont_q > 0,
            "contention while the bus held the cache"
        );
    }

    #[test]
    fn inval_drops_line_and_stale_reply_ignored() {
        let a = Addr::new(0x3000);
        let mut p = proc(vec![WorkItem::Read(a), WorkItem::Busy(1)]);
        let mut out = Vec::new();
        p.run(Cycle::ZERO, &mut out);
        p.complete_read(a, false, Cycle::new(24), &mut out);
        p.run(Cycle::new(24), &mut out);
        assert!(p.inval(a, Cycle::new(30)));
        assert_eq!(p.cache().state_of(a), None);
        assert!(!p.inval(a, Cycle::new(31)), "second inval finds nothing");
        // A stale completion for a line with no MSHR is ignored.
        p.complete_read(a, false, Cycle::new(40), &mut out);
    }

    #[test]
    fn nack_retry_reissues_request() {
        let a = Addr::new(0x5000);
        let mut p = proc(vec![WorkItem::Read(a)]);
        let mut out = Vec::new();
        p.run(Cycle::ZERO, &mut out);
        assert_eq!(p.nack_retry(a), Some(CpuOut::Get(a.line())));
        assert_eq!(p.nack_retry(Addr::new(0x9000)), None);
    }

    #[test]
    fn mailbox_stream_starves_resumes_and_finishes() {
        use crate::stream::{Mailbox, MailboxStream};
        let handle = Mailbox::handle();
        let mut p = Processor::new(4 << 10, 4, Box::new(MailboxStream::new(handle.clone())));
        let mut out = Vec::new();
        // Open but empty: the processor parks, charging idle time.
        assert_eq!(p.run(Cycle::ZERO, &mut out), RunOutcome::Starved);
        assert!(!p.finished());
        // The machine admits work at cycle 25 and wakes the processor.
        handle.lock().unwrap().push(WorkItem::Busy(8));
        assert_eq!(p.run(Cycle::new(25), &mut out), RunOutcome::Starved);
        assert_eq!(p.stats().idle_q, 100, "25 cycles parked");
        assert_eq!(p.stats().busy_q, 8);
        // Closing the mailbox ends the stream.
        handle.lock().unwrap().close();
        assert_eq!(p.run(Cycle::new(27), &mut out), RunOutcome::Finished);
        assert!(p.finished());
        // Idle time is in the total; no closed-loop bucket moved.
        assert_eq!(p.stats().read_stall_q, 0);
        assert_eq!(p.stats().sync_stall_q, 0);
        assert!(p.stats().total_q() >= p.stats().idle_q + p.stats().busy_q);
    }

    #[test]
    fn starved_mid_stream_preserves_reference_counts() {
        use crate::stream::{Mailbox, MailboxStream};
        let a = Addr::new(0x1000);
        let handle = Mailbox::handle();
        handle.lock().unwrap().push(WorkItem::Read(a));
        let mut p = Processor::new(4 << 10, 4, Box::new(MailboxStream::new(handle.clone())));
        let mut out = Vec::new();
        assert_eq!(p.run(Cycle::ZERO, &mut out), RunOutcome::BlockedRead);
        p.complete_read(a, false, Cycle::new(24), &mut out);
        // The mailbox is dry when the read completes: idle, not done.
        assert_eq!(p.run(Cycle::new(24), &mut out), RunOutcome::Starved);
        handle.lock().unwrap().push(WorkItem::Read(a));
        handle.lock().unwrap().close();
        assert_eq!(p.run(Cycle::new(30), &mut out), RunOutcome::Finished);
        assert_eq!(p.stats().reads, 2, "each read counted exactly once");
        assert_eq!(p.stats().read_misses, 1, "second read hits");
        assert_eq!(p.stats().read_stall_q, 96);
        // Parked at local q=97 (the hit consumed one slot after resuming
        // at q=96), woken at machine q=120.
        assert_eq!(p.stats().idle_q, 120 - 97);
    }

    #[test]
    fn quantum_yields_without_blocking() {
        // A very long busy stream split into many items.
        let items: Vec<WorkItem> = (0..60_000).map(|_| WorkItem::Busy(1)).collect();
        let mut p = proc(items);
        let mut out = Vec::new();
        assert_eq!(p.run(Cycle::ZERO, &mut out), RunOutcome::Quantum);
        let mut rounds = 1;
        loop {
            match p.run(p.now(), &mut out) {
                RunOutcome::Quantum => rounds += 1,
                RunOutcome::Finished => break,
                other => panic!("unexpected {other:?}"),
            }
            assert!(rounds < 100, "too many quanta");
        }
        assert!(rounds >= 2, "both item and time quanta should trigger");
        assert_eq!(p.stats().busy_q, 60_000);
    }
}
