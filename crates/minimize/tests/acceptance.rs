//! End-to-end acceptance: shrink a crafted permanent-link-outage wedge
//! on an 8-node mesh from a 400k-cycle checked stress run down to a
//! replayable artifact of a handful of references, and prove the
//! artifact replays to the exact same wedge fingerprint — including
//! under a different shard count.
//!
//! (Gated off under `planted-bugs`: the planted protocol bugs perturb
//! the stress run this scenario is tuned against.)
#![cfg(not(feature = "planted-bugs"))]

use flash_fault::LinkDown;
use flash_minimize::{minimize, EvalOptions, Predicate, SearchOptions, Spec};

#[test]
fn crafted_link_outage_wedge_shrinks_and_replays() {
    // Permanent outage of the 2->5 link from cycle 2000, under a seeded
    // 8-node stress net: node 2's traffic into node 5's memory (and
    // vice versa) eventually wedges behind the dead link.
    let mut spec = Spec::stress(8, 2, 60, 10)
        .with_check(true)
        .with_budget(400_000)
        .with_predicate(Predicate::Wedge { fingerprint: None });
    spec.link_down.push(LinkDown {
        src: 2,
        dst: 5,
        from: 2_000,
        until: None,
    });
    spec.watchdog = Some(100_000);

    let initial = spec.build_repro();
    assert!(initial.budget >= 200_000, "must start from a long run");
    assert!(initial.reference_count() > 400, "must start big");

    let out = minimize(
        &initial,
        &Predicate::Wedge { fingerprint: None },
        &SearchOptions::default(),
    )
    .expect("the outage wedges the initial run");
    let r = &out.repro;

    assert!(
        r.reference_count() <= 20,
        "{} references survived: {:?}",
        r.reference_count(),
        r.streams
    );
    assert!(r.fault_atoms.len() <= 2, "{:?}", r.fault_atoms);
    assert!(r.nodes <= 8);
    assert!(
        out.fingerprint.contains("links=[2->5!]"),
        "{}",
        out.fingerprint
    );

    // The artifact round-trips through its serialized form and replays
    // to the exact pinned fingerprint.
    let round = flash::repro::Repro::parse(&r.to_json_string()).unwrap();
    assert_eq!(&round, r);
    assert_eq!(
        round.replay().wedge_fingerprint().as_deref(),
        Some(out.fingerprint.as_str())
    );

    // Shard count is a host knob: replaying under 1 and 2 shards
    // observes the identical wedge.
    let p: Predicate = r.predicate.parse().unwrap();
    for shards in [1, 2] {
        let opts = EvalOptions {
            shards: Some(shards),
            ..Default::default()
        };
        assert_eq!(
            p.eval(&round, &opts).as_deref(),
            Some(out.fingerprint.as_str()),
            "shards={shards}"
        );
    }
}
