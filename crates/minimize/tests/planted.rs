//! Planted-bug shrink suite (`--features planted-bugs`).
//!
//! The feature re-introduces two historical protocol bugs:
//!
//! - **flash-cpu**: `complete_read` ignores the in-flight invalidation of
//!   a pending read grant, so a stale exclusive/shared reply resurrects a
//!   dead copy — checker-visible (`shared-under-dirty` et al.).
//! - **flash-protocol**: the native `pi_interv_reply` drops its
//!   stale-local-reply NACK guard, so a stale intervention reply rewrites
//!   an already-resolved header — the translated PP backend keeps the
//!   guard, so the differential oracle flags the divergence.
//!
//! The suite proves the minimizer earns its keep: a multi-hundred-
//! reference, 250k-cycle failing run shrinks to a handful of references
//! and fault atoms, deterministically (byte-identical to the checked-in
//! golden), idempotently, and independent of the shard count used to
//! evaluate candidates.
#![cfg(feature = "planted-bugs")]

use flash_minimize::{minimize, FaultsSpec, Predicate, SearchOptions, Spec};

const CPU_GOLDEN: &str = include_str!("../goldens/planted_cpu_invalidated_grant.json");
const PROTO_GOLDEN: &str = include_str!("../goldens/planted_proto_stale_interv_reply.json");

/// The spec the CPU-bug golden was minimized from: a 250k-cycle checked
/// stress run (184 references over 4 nodes) that trips the resurrected-
/// copy bug.
fn cpu_bug_spec() -> Spec {
    Spec::stress(4, 2, 40, 21)
        .with_faults(FaultsSpec::Light(21))
        .with_check(true)
        .with_budget(250_000)
        .with_predicate(Predicate::Violation { fingerprint: None })
}

#[test]
fn planted_cpu_bug_shrinks_to_a_tiny_artifact() {
    let initial = cpu_bug_spec().build_repro();
    assert!(initial.budget >= 200_000, "must start from a long run");
    assert!(initial.reference_count() > 100, "must start big");

    let out = minimize(
        &initial,
        &Predicate::Violation { fingerprint: None },
        &SearchOptions::default(),
    )
    .expect("planted bug fails the predicate");
    assert!(
        out.repro.reference_count() <= 20,
        "{} references survived",
        out.repro.reference_count()
    );
    assert!(
        out.repro.fault_atoms.len() <= 2,
        "{:?}",
        out.repro.fault_atoms
    );
    // Deterministic: byte-identical to the checked-in golden.
    assert_eq!(
        out.repro.to_json_string().trim_end(),
        CPU_GOLDEN.trim_end(),
        "shrink result drifted from the golden artifact"
    );
}

#[test]
fn planted_cpu_bug_shrink_is_shard_invariant() {
    // Candidate evaluation under a forced shard count must accept and
    // reject exactly the same candidates: same bytes out.
    let initial = cpu_bug_spec().build_repro();
    let mut opts = SearchOptions::default();
    opts.eval.shards = Some(2);
    let out = minimize(&initial, &Predicate::Violation { fingerprint: None }, &opts).unwrap();
    assert_eq!(out.repro.to_json_string().trim_end(), CPU_GOLDEN.trim_end());
}

#[test]
fn planted_cpu_bug_shrink_is_idempotent() {
    let golden = flash::repro::Repro::parse(CPU_GOLDEN).unwrap();
    let predicate: Predicate = golden.predicate.parse().unwrap();
    let again = minimize(&golden, &predicate, &SearchOptions::default()).unwrap();
    let mut x = again.repro.clone();
    let mut y = golden.clone();
    x.provenance = String::new();
    y.provenance = String::new();
    assert_eq!(x, y, "re-minimizing the minimal artifact changed it");
}

#[test]
fn planted_protocol_bug_golden_is_minimal_under_reminimization() {
    // The oracle-divergence shrink from scratch costs thousands of
    // attempts (the race needs fault timing to line up); the golden
    // captures its result. Re-minimizing the golden must terminate
    // quickly and change nothing: it is already a fixpoint.
    let golden = flash::repro::Repro::parse(PROTO_GOLDEN).unwrap();
    let predicate: Predicate = golden.predicate.parse().unwrap();
    let again = minimize(&golden, &predicate, &SearchOptions::default()).unwrap();
    let mut x = again.repro.clone();
    let mut y = golden.clone();
    x.provenance = String::new();
    y.provenance = String::new();
    assert_eq!(x, y, "protocol golden is not a shrink fixpoint");
    assert_eq!(again.fingerprint, golden.expect.unwrap());
}
