//! The checked-in golden minimal reproducers.
//!
//! Each golden is a `flash-repro-v1` artifact the minimizer produced from
//! a planted historical bug (see `crates/minimize/tests/planted.rs`).
//! They are permanent regression tests with two faces:
//!
//! - **Bugs compiled out** (the normal build): the artifacts must replay
//!   *clean* — if one ever fails again, the bug it captures is back.
//! - **Bugs compiled in** (`--features planted-bugs`): the artifacts must
//!   reproduce exactly the failure fingerprint they record — proof the
//!   goldens are real reproducers, not stale JSON.

use flash::repro::Repro;
use flash_minimize::Predicate;

const GOLDENS: [(&str, &str); 2] = [
    (
        "planted_cpu_invalidated_grant",
        include_str!("../goldens/planted_cpu_invalidated_grant.json"),
    ),
    (
        "planted_proto_stale_interv_reply",
        include_str!("../goldens/planted_proto_stale_interv_reply.json"),
    ),
];

#[test]
fn goldens_parse_and_carry_expectations() {
    for (name, text) in GOLDENS {
        let r = Repro::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(r.expect.is_some(), "{name}: no recorded fingerprint");
        assert!(!r.predicate.is_empty(), "{name}: no predicate");
        let _: Predicate = r
            .predicate
            .parse()
            .unwrap_or_else(|e| panic!("{name}: bad predicate: {e}"));
        assert!(
            r.provenance.contains("minimized in"),
            "{name}: missing shrink provenance"
        );
        // Byte-stable round trip: the artifact is its own canonical form.
        assert_eq!(r.to_json_string().trim_end(), text.trim_end(), "{name}");
    }
}

#[cfg(not(feature = "planted-bugs"))]
#[test]
fn goldens_replay_clean_with_bugs_fixed() {
    for (name, text) in GOLDENS {
        let r = Repro::parse(text).unwrap();
        let outcome = r.replay();
        assert!(
            outcome.is_clean(),
            "{name}: the bug this golden captures has returned\n  result: {:?}\n  violations: {:?}\n  recorded fingerprint: {}",
            outcome.result,
            outcome.violation_fingerprints(),
            r.expect.as_deref().unwrap_or("<none>"),
        );
    }
}

#[cfg(feature = "planted-bugs")]
#[test]
fn goldens_reproduce_their_recorded_failures() {
    for (name, text) in GOLDENS {
        let r = Repro::parse(text).unwrap();
        let predicate: Predicate = r.predicate.parse().unwrap();
        let observed = predicate.eval(&r, &flash_minimize::EvalOptions::default());
        assert_eq!(
            observed.as_deref(),
            r.expect.as_deref(),
            "{name}: artifact no longer reproduces its recorded failure"
        );
    }
}
