//! Failure specifications: the CLI surface of `minimize`.
//!
//! A [`Spec`] names everything needed to rebuild a failing run from
//! scratch — workload (a seeded stress net or a named paper workload,
//! materialized to a bounded explicit list), machine knobs, fault plan,
//! budget — plus the [`Predicate`] to shrink against. It parses from
//! `minimize`'s argument list and renders back to the identical one-line
//! invocation, which is what the randomized test suites print on failure:
//! every red `fault_soak`/`checked_stress` run is one paste away from a
//! minimal artifact.

use crate::predicate::Predicate;
use flash::repro::Repro;
use flash::ControllerKind;
use flash_fault::{FaultPlan, LinkDown};
use flash_workloads::ExplicitWorkload;
use std::fmt;

/// Where the reference streams come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// `flash_check::stress_streams(nodes, lines_per_node, items_per_proc,
    /// seed)` — the generator behind `tests/checked_stress.rs` and
    /// `tests/fault_soak.rs`.
    Stress {
        /// Mesh size.
        nodes: u16,
        /// Distinct lines per node memory.
        lines_per_node: u64,
        /// Work items per processor.
        items_per_proc: usize,
        /// Stream seed.
        seed: u64,
    },
    /// A named paper workload (`flash_workloads::by_name`), materialized
    /// to at most `bound` references per processor.
    Workload {
        /// Workload name (Table 3.5 spelling).
        name: String,
        /// Processor count.
        procs: u16,
        /// Scale divisor.
        scale: u32,
        /// Materialization bound (references per processor).
        bound: usize,
    },
    /// An open-loop Poisson/uniform traffic run
    /// (`flash_traffic::TrafficSpec::poisson`), each node's arrival
    /// stream materialized to a closed-loop item list with `Busy` gaps
    /// standing in for inter-arrival time
    /// (`flash_traffic::materialize`) — the bridge that lets the
    /// existing stream-shrinking machinery chew on `traffic_soak`
    /// failures.
    Traffic {
        /// Mesh size (= per-node sources).
        nodes: u16,
        /// Distinct objects the traffic touches.
        objects: u64,
        /// References per node.
        items_per_node: u64,
        /// Mean cycles between arrivals at one node.
        mean_gap: u64,
        /// Traffic seed.
        seed: u64,
        /// Materialization bound (references per node).
        bound: usize,
    },
}

/// Which fault-plan preset seeds the initial atom list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultsSpec {
    /// No faults.
    None,
    /// Armed, all-zero rates (hook-visibility pinning).
    Zeroed(u64),
    /// `FaultPlan::light(seed)`.
    Light(u64),
    /// `FaultPlan::stress(seed)`.
    Stress(u64),
}

impl FaultsSpec {
    fn plan(self) -> FaultPlan {
        match self {
            FaultsSpec::None => FaultPlan::none(),
            FaultsSpec::Zeroed(s) => FaultPlan::zeroed(s),
            FaultsSpec::Light(s) => FaultPlan::light(s),
            FaultsSpec::Stress(s) => FaultPlan::stress(s),
        }
    }
}

/// A complete failure specification.
///
/// # Examples
///
/// ```
/// use flash_minimize::Spec;
///
/// let args = ["--stress", "8,4,96,7", "--faults", "light,7", "--check",
///             "--predicate", "violation"];
/// let spec = Spec::from_args(&args.map(String::from)).unwrap();
/// assert_eq!(spec.to_string(),
///            "--stress 8,4,96,7 --faults light,7 --check --predicate violation");
/// let round = Spec::from_args(
///     &spec.to_string().split(' ').map(String::from).collect::<Vec<_>>(),
/// ).unwrap();
/// assert_eq!(round, spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Reference-stream source.
    pub source: Source,
    /// Controller kind (default: the detailed emulated FLASH).
    pub controller: ControllerKind,
    /// Cache capacity override (`None`: the 1 MB default).
    pub cache_bytes: Option<u64>,
    /// Checked mode.
    pub check: bool,
    /// Fault preset.
    pub faults: FaultsSpec,
    /// Scripted link outages appended to the preset.
    pub link_down: Vec<LinkDown>,
    /// Watchdog override (`None`: node-scaled default).
    pub watchdog: Option<u64>,
    /// Cycle budget (default 2M — the randomized nets' run length).
    pub budget: u64,
    /// The failure predicate.
    pub predicate: Predicate,
}

impl Spec {
    /// A stress-net spec with the suite defaults — the constructor the
    /// soak tests use to print their repro invocation.
    pub fn stress(nodes: u16, lines_per_node: u64, items_per_proc: usize, seed: u64) -> Spec {
        Spec {
            source: Source::Stress {
                nodes,
                lines_per_node,
                items_per_proc,
                seed,
            },
            controller: ControllerKind::FlashEmulated,
            cache_bytes: None,
            check: false,
            faults: FaultsSpec::None,
            link_down: Vec::new(),
            watchdog: None,
            budget: 2_000_000,
            predicate: Predicate::Wedge { fingerprint: None },
        }
    }

    /// An open-loop traffic spec with the suite defaults — the
    /// constructor `tests/traffic_soak.rs` uses to print its repro
    /// invocation. The materialization bound defaults to the full item
    /// budget; `ddmin` shrinks from there.
    pub fn traffic(
        nodes: u16,
        objects: u64,
        items_per_node: u64,
        mean_gap: u64,
        seed: u64,
    ) -> Spec {
        Spec {
            source: Source::Traffic {
                nodes,
                objects,
                items_per_node,
                mean_gap,
                seed,
                bound: items_per_node as usize,
            },
            ..Spec::stress(0, 0, 0, 0)
        }
    }

    /// Sets the fault preset.
    pub fn with_faults(mut self, faults: FaultsSpec) -> Spec {
        self.faults = faults;
        self
    }

    /// Enables checked mode.
    pub fn with_check(mut self, on: bool) -> Spec {
        self.check = on;
        self
    }

    /// Sets the predicate.
    pub fn with_predicate(mut self, p: Predicate) -> Spec {
        self.predicate = p;
        self
    }

    /// Sets the cycle budget.
    pub fn with_budget(mut self, budget: u64) -> Spec {
        self.budget = budget;
        self
    }

    /// The ready-to-paste shell command reproducing this spec.
    pub fn command_line(&self) -> String {
        format!("cargo run --release -p flash-minimize --bin minimize -- {self}")
    }

    /// Materializes the spec into the initial (unshrunk) [`Repro`].
    pub fn build_repro(&self) -> Repro {
        let (nodes, streams) = match &self.source {
            Source::Stress {
                nodes,
                lines_per_node,
                items_per_proc,
                seed,
            } => (
                *nodes,
                flash_check::stress_streams(*nodes, *lines_per_node, *items_per_proc, *seed),
            ),
            Source::Workload {
                name,
                procs,
                scale,
                bound,
            } => {
                let w = flash_workloads::by_name(name, *procs, *scale);
                let e = ExplicitWorkload::materialize(w.as_ref(), *bound);
                (e.procs, e.streams)
            }
            Source::Traffic {
                nodes,
                objects,
                items_per_node,
                mean_gap,
                seed,
                bound,
            } => {
                let spec = flash_traffic::TrafficSpec::poisson(
                    *nodes,
                    *objects,
                    *items_per_node,
                    *mean_gap,
                    *seed,
                );
                let streams = spec
                    .sources()
                    .into_iter()
                    .map(|mut s| flash_traffic::materialize(s.as_mut(), *bound))
                    .collect();
                (*nodes, streams)
            }
        };
        let mut plan = self.faults.plan();
        for l in &self.link_down {
            plan = plan.with_link_down(l.src, l.dst, l.from, l.until);
        }
        let mut r = Repro::flash(nodes);
        r.controller = self.controller;
        if let Some(bytes) = self.cache_bytes {
            r.cache_bytes = bytes;
        }
        if let Source::Workload {
            name, procs, scale, ..
        } = &self.source
        {
            r.placement = flash_workloads::by_name(name, *procs, *scale).placement();
            let w = flash_workloads::by_name(name, *procs, *scale);
            r.dma = w
                .dma_events()
                .into_iter()
                .map(|(at, node, addr)| (at.raw(), node.0, addr.raw()))
                .collect();
        }
        r.check = self.check || self.predicate.needs_check();
        if let Some(w) = self.watchdog {
            r.watchdog_window = w;
        }
        r.fault_seed = plan.seed;
        r.fault_atoms = plan.atoms();
        r.budget = self.budget;
        r.streams = streams;
        r.predicate = self.predicate.to_string();
        r.provenance = format!("spec: {self}");
        r
    }

    /// Parses a spec from `minimize`'s argument list. Unrecognized flags
    /// are an error (the bin strips its own output flags first).
    pub fn from_args(args: &[String]) -> Result<Spec, String> {
        let mut source: Option<Source> = None;
        let mut spec = Spec::stress(0, 0, 0, 0); // placeholder source
        let mut predicate: Option<Predicate> = None;
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or(format!("{flag} needs a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--stress" => {
                    let v = value(&mut i, "--stress")?;
                    let p: Vec<&str> = v.split(',').collect();
                    let [n, l, it, s] = p[..] else {
                        return Err("--stress needs NODES,LINES,ITEMS,SEED".into());
                    };
                    source = Some(Source::Stress {
                        nodes: n.parse().map_err(|_| "bad --stress nodes")?,
                        lines_per_node: l.parse().map_err(|_| "bad --stress lines")?,
                        items_per_proc: it.parse().map_err(|_| "bad --stress items")?,
                        seed: s.parse().map_err(|_| "bad --stress seed")?,
                    });
                }
                "--workload" => {
                    let v = value(&mut i, "--workload")?;
                    let p: Vec<&str> = v.split(',').collect();
                    let (name, procs, scale, bound) = match p[..] {
                        [n, pr, sc] => (n, pr, sc, "100000"),
                        [n, pr, sc, b] => (n, pr, sc, b),
                        _ => return Err("--workload needs NAME,PROCS,SCALE[,BOUND]".into()),
                    };
                    source = Some(Source::Workload {
                        name: name.to_string(),
                        procs: procs.parse().map_err(|_| "bad --workload procs")?,
                        scale: scale.parse().map_err(|_| "bad --workload scale")?,
                        bound: bound.parse().map_err(|_| "bad --workload bound")?,
                    });
                }
                "--traffic" => {
                    let v = value(&mut i, "--traffic")?;
                    let p: Vec<&str> = v.split(',').collect();
                    let (n, o, it, g, s, b) = match p[..] {
                        [n, o, it, g, s] => (n, o, it, g, s, None),
                        [n, o, it, g, s, b] => (n, o, it, g, s, Some(b)),
                        _ => {
                            return Err(
                                "--traffic needs NODES,OBJECTS,ITEMS,GAP,SEED[,BOUND]".into()
                            )
                        }
                    };
                    let items: u64 = it.parse().map_err(|_| "bad --traffic items")?;
                    source = Some(Source::Traffic {
                        nodes: n.parse().map_err(|_| "bad --traffic nodes")?,
                        objects: o.parse().map_err(|_| "bad --traffic objects")?,
                        items_per_node: items,
                        mean_gap: g.parse().map_err(|_| "bad --traffic gap")?,
                        seed: s.parse().map_err(|_| "bad --traffic seed")?,
                        bound: match b {
                            None => items as usize,
                            Some(b) => b.parse().map_err(|_| "bad --traffic bound")?,
                        },
                    });
                }
                "--controller" => {
                    spec.controller = match value(&mut i, "--controller")?.as_str() {
                        "flash" => ControllerKind::FlashEmulated,
                        "cost-table" => ControllerKind::FlashCostTable,
                        "ideal" => ControllerKind::Ideal,
                        other => return Err(format!("unknown controller `{other}`")),
                    };
                }
                "--cache" => {
                    spec.cache_bytes = Some(
                        value(&mut i, "--cache")?
                            .parse()
                            .map_err(|_| "bad --cache")?,
                    );
                }
                "--check" => spec.check = true,
                "--faults" => {
                    let v = value(&mut i, "--faults")?;
                    spec.faults = match v.split_once(',') {
                        None if v == "none" => FaultsSpec::None,
                        Some((preset, seed)) => {
                            let seed: u64 = seed.parse().map_err(|_| "bad --faults seed")?;
                            match preset {
                                "zeroed" => FaultsSpec::Zeroed(seed),
                                "light" => FaultsSpec::Light(seed),
                                "stress" => FaultsSpec::Stress(seed),
                                other => return Err(format!("unknown faults preset `{other}`")),
                            }
                        }
                        None => return Err(format!("bad --faults `{v}`")),
                    };
                }
                "--link-down" => {
                    let v = value(&mut i, "--link-down")?;
                    let p: Vec<&str> = v.split(',').collect();
                    let (src, dst, from, until) = match p[..] {
                        [s, d, f] => (s, d, f, None),
                        [s, d, f, u] => (s, d, f, Some(u)),
                        _ => return Err("--link-down needs SRC,DST,FROM[,UNTIL]".into()),
                    };
                    spec.link_down.push(LinkDown {
                        src: src.parse().map_err(|_| "bad --link-down src")?,
                        dst: dst.parse().map_err(|_| "bad --link-down dst")?,
                        from: from.parse().map_err(|_| "bad --link-down from")?,
                        until: match until {
                            None => None,
                            Some(u) => Some(u.parse().map_err(|_| "bad --link-down until")?),
                        },
                    });
                }
                "--watchdog" => {
                    spec.watchdog = Some(
                        value(&mut i, "--watchdog")?
                            .parse()
                            .map_err(|_| "bad --watchdog")?,
                    );
                }
                "--budget" => {
                    spec.budget = value(&mut i, "--budget")?
                        .parse()
                        .map_err(|_| "bad --budget")?;
                }
                "--predicate" => {
                    predicate = Some(value(&mut i, "--predicate")?.parse()?);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
            i += 1;
        }
        spec.source = source.ok_or("a --stress or --workload source is required")?;
        spec.predicate = predicate.ok_or("--predicate is required")?;
        Ok(spec)
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            Source::Stress {
                nodes,
                lines_per_node,
                items_per_proc,
                seed,
            } => write!(
                f,
                "--stress {nodes},{lines_per_node},{items_per_proc},{seed}"
            )?,
            Source::Workload {
                name,
                procs,
                scale,
                bound,
            } => write!(f, "--workload {name},{procs},{scale},{bound}")?,
            Source::Traffic {
                nodes,
                objects,
                items_per_node,
                mean_gap,
                seed,
                bound,
            } => write!(
                f,
                "--traffic {nodes},{objects},{items_per_node},{mean_gap},{seed},{bound}"
            )?,
        }
        match self.controller {
            ControllerKind::FlashEmulated => {}
            ControllerKind::FlashCostTable => write!(f, " --controller cost-table")?,
            ControllerKind::Ideal => write!(f, " --controller ideal")?,
        }
        if let Some(bytes) = self.cache_bytes {
            write!(f, " --cache {bytes}")?;
        }
        match self.faults {
            FaultsSpec::None => {}
            FaultsSpec::Zeroed(s) => write!(f, " --faults zeroed,{s}")?,
            FaultsSpec::Light(s) => write!(f, " --faults light,{s}")?,
            FaultsSpec::Stress(s) => write!(f, " --faults stress,{s}")?,
        }
        for l in &self.link_down {
            match l.until {
                None => write!(f, " --link-down {},{},{}", l.src, l.dst, l.from)?,
                Some(u) => write!(f, " --link-down {},{},{},{u}", l.src, l.dst, l.from)?,
            }
        }
        if self.check {
            write!(f, " --check")?;
        }
        if let Some(w) = self.watchdog {
            write!(f, " --watchdog {w}")?;
        }
        if self.budget != 2_000_000 {
            write!(f, " --budget {}", self.budget)?;
        }
        write!(f, " --predicate {}", self.predicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Spec, String> {
        Spec::from_args(&line.split(' ').map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn display_parse_round_trip() {
        for line in [
            "--stress 8,4,96,7 --predicate wedge",
            "--stress 16,8,192,3 --faults stress,3 --check --predicate violation",
            "--workload FFT,4,64,500 --cache 65536 --predicate oracle",
            "--traffic 4,64,200,30,11,200 --faults light,3 --check --predicate violation",
            "--stress 8,4,96,7 --faults zeroed,0 --link-down 1,2,120000 --watchdog 150000 --budget 400000 --predicate wedge",
            "--stress 4,2,16,1 --controller cost-table --link-down 0,1,100,900 --predicate shards:1,4",
        ] {
            let spec = parse(line).unwrap();
            assert_eq!(spec.to_string(), line);
            assert_eq!(parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "--predicate wedge",                      // no source
            "--stress 8,4,96,7",                      // no predicate
            "--stress 8,4,96 --predicate wedge",      // short tuple
            "--traffic 4,64,200 --predicate wedge",   // short traffic tuple
            "--stress 8,4,96,7 --predicate nonsense", // bad predicate
            "--stress 8,4,96,7 --faults heavy,1 --predicate wedge",
            "--stress 8,4,96,7 --frobnicate --predicate wedge",
            "--stress 8,4,96,7 --budget --predicate wedge",
        ] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn stress_spec_builds_a_repro() {
        let spec =
            parse("--stress 4,2,24,9 --faults light,9 --check --predicate violation").unwrap();
        let r = spec.build_repro();
        assert_eq!(r.nodes, 4);
        assert_eq!(r.streams.len(), 4);
        assert!(r.check, "violation predicate forces checked mode");
        assert!(!r.fault_atoms.is_empty());
        assert_eq!(r.fault_seed, 9);
        assert_eq!(r.predicate, "violation");
        assert!(r.provenance.starts_with("spec: --stress 4,2,24,9"));
        // The generator is seeded: same spec, same streams.
        assert_eq!(spec.build_repro().to_json_string(), r.to_json_string());
    }

    #[test]
    fn traffic_spec_materializes_paced_streams() {
        let spec = parse("--traffic 4,64,50,30,11,50 --check --predicate violation").unwrap();
        let r = spec.build_repro();
        assert_eq!(r.nodes, 4);
        assert_eq!(r.streams.len(), 4);
        for s in &r.streams {
            use flash_cpu::WorkItem;
            let refs = s
                .iter()
                .filter(|i| matches!(i, WorkItem::Read(_) | WorkItem::Write(_)))
                .count();
            assert_eq!(refs, 50, "bound covers the whole item budget");
            assert!(
                s.iter().any(|i| matches!(i, WorkItem::Busy(_))),
                "inter-arrival gaps materialize as busy work"
            );
        }
        // Parse → build is seeded: byte-identical repro both times.
        assert_eq!(spec.build_repro().to_json_string(), r.to_json_string());
        // Shortened form defaults the bound to the item budget.
        let short = parse("--traffic 4,64,50,30,11 --check --predicate violation").unwrap();
        assert_eq!(short, spec);
    }

    #[test]
    fn workload_spec_carries_placement_and_dma() {
        let spec = parse("--workload OS,4,16,100 --predicate wedge").unwrap();
        let r = spec.build_repro();
        assert_eq!(r.nodes, 4);
        assert!(!r.dma.is_empty(), "OS workload has DMA traffic");
        assert!(matches!(
            r.placement,
            flash::Placement::RoundRobinPages { .. }
        ));
    }

    #[test]
    fn command_line_is_pasteable() {
        let spec = Spec::stress(8, 4, 96, 7).with_predicate(Predicate::Wedge { fingerprint: None });
        let cmd = spec.command_line();
        assert!(cmd.starts_with("cargo run --release -p flash-minimize"));
        assert!(cmd.ends_with("--stress 8,4,96,7 --predicate wedge"));
    }
}
