//! Rendering minimal artifacts as regression-test stubs.

use flash::repro::Repro;

/// Renders a ready-to-paste `#[test]` function embedding the artifact.
///
/// The stub asserts the replay is **clean** — it is meant to be checked
/// in *with the fix* for the failure the artifact captures, at which
/// point it permanently pins that this exact minimal scenario stays
/// healthy. Until the fix lands, the stub fails with the artifact's
/// recorded fingerprint in the panic message, which is the fastest
/// possible red/green signal while debugging.
///
/// # Examples
///
/// ```
/// use flash::repro::Repro;
/// use flash_minimize::emit::test_stub;
///
/// let mut r = Repro::flash(2);
/// r.budget = 100_000;
/// r.expect = Some("wedge|links=[]|pending=[]|waiters=[]".into());
/// let stub = test_stub(&r, "link_outage_stays_fixed");
/// assert!(stub.contains("fn link_outage_stays_fixed()"));
/// assert!(stub.contains("flash-repro-v1"));
/// ```
pub fn test_stub(repro: &Repro, name: &str) -> String {
    let json = repro.to_json_string();
    let json = json.trim_end();
    let expect = repro.expect.as_deref().unwrap_or("<none recorded>");
    format!(
        r###"/// Golden minimal reproducer (flash-repro-v1), checked in as a
/// permanent regression test. Originally failed as:
///   {expect}
/// Provenance: {provenance}
#[test]
fn {name}() {{
    let repro = flash::repro::Repro::parse(ARTIFACT).expect("artifact parses");
    let outcome = repro.replay();
    assert!(
        outcome.is_clean(),
        "regression: minimal reproducer failed again\n  result: {{:?}}\n  violations: {{:?}}\n  recorded fingerprint: {{}}",
        outcome.result,
        outcome.violation_fingerprints(),
        repro.expect.as_deref().unwrap_or("<none>"),
    );
}}

const ARTIFACT: &str = r##"{json}"##;
"###,
        provenance = if repro.provenance.is_empty() {
            "<none>"
        } else {
            &repro.provenance
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_compilable_shape_and_artifact_embedding() {
        let mut r = Repro::flash(2);
        r.budget = 50_000;
        r.streams = vec![vec![flash_cpu::WorkItem::Busy(10)], vec![]];
        r.expect = Some("swmr@n0:0x80".into());
        r.provenance = "unit test".into();
        let stub = test_stub(&r, "my_regression");
        assert!(stub.contains("fn my_regression()"));
        assert!(stub.contains("swmr@n0:0x80"));
        assert!(stub.contains("unit test"));
        // The embedded artifact round-trips.
        let start = stub.find(r###"r##""###).unwrap() + 4;
        let end = stub.find(r###""##"###).unwrap();
        let embedded = &stub[start..end];
        assert_eq!(Repro::parse(embedded).unwrap(), r);
    }
}
