//! Failure predicates: what "still fails" means during shrinking.
//!
//! A predicate evaluates a candidate [`Repro`] and answers with the
//! observed failure fingerprint (`None`: the candidate is healthy, or
//! failed in some *different* way — both mean the shrink step is
//! rejected). Every evaluation runs under
//! [`flash_bench::isolate::call`]: a candidate that panics inside the
//! simulator is simply "not failing the right way", and with a wall-clock
//! limit set, a candidate that hangs (watchdog shrunk too far) costs one
//! timeout instead of hanging the search.

use flash::repro::{ReplayOutcome, Repro};
use flash_bench::isolate;
use std::fmt;
use std::time::Duration;

/// Evaluation policy, shared by every predicate.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// Wall-clock limit per candidate evaluation. `None` trusts the
    /// candidate's own cycle budget and watchdog (the deterministic
    /// default — timeouts depend on host speed, so artifact-determinism
    /// tests leave this unset).
    pub timeout: Option<Duration>,
    /// Forced shard count for replays (`None`: the `FLASH_SHARDS`
    /// process default). Shard counts are byte-identity-pinned, so this
    /// changes host behaviour only — it exists so determinism tests can
    /// compare searches across shard counts without touching the
    /// environment.
    pub shards: Option<usize>,
}

impl EvalOptions {
    fn replay(&self, repro: &Repro) -> Option<ReplayOutcome> {
        let r = repro.clone();
        match self.shards {
            Some(n) => isolate::call(self.timeout, move || r.replay_with_shards(n)),
            None => isolate::call(self.timeout, move || r.replay()),
        }
        .ok()
    }
}

/// A failure predicate in `flash-minimize`'s CLI syntax.
///
/// | Syntax | Meaning |
/// |---|---|
/// | `wedge` | any [`RunResult::Wedged`](flash::RunResult::Wedged) |
/// | `wedge:<fp>` | a wedge with exactly this fingerprint |
/// | `violation` | any checker violation (checked mode must be on) |
/// | `violation:<fp>` | a violation with exactly this fingerprint |
/// | `oracle` | any native-vs-PP differential-oracle divergence |
/// | `shards:<a>,<b>` | replay diverges between shard counts `a` and `b` |
/// | `exit:<cmd>` | `<cmd> <artifact-path>` exits nonzero |
///
/// # Examples
///
/// ```
/// use flash_minimize::Predicate;
///
/// let p: Predicate = "wedge:wedge|links=[1->2!]|pending=[]|waiters=[]".parse().unwrap();
/// assert_eq!(p.to_string(), "wedge:wedge|links=[1->2!]|pending=[]|waiters=[]");
/// assert!("shards:1,4".parse::<Predicate>().is_ok());
/// assert!("frobnicate".parse::<Predicate>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// The run wedges (optionally with a pinned fingerprint).
    Wedge {
        /// Exact [`flash::WedgeReport::fingerprint`] to require.
        fingerprint: Option<String>,
    },
    /// The checker reports a violation (optionally a pinned fingerprint).
    Violation {
        /// Exact [`flash_check::Violation::fingerprint`] to require.
        fingerprint: Option<String>,
    },
    /// The native-vs-PP differential oracle diverges.
    Oracle,
    /// Replays under two shard counts produce different artifacts — a
    /// determinism-contract breach, not a protocol failure.
    ShardDivergence {
        /// The two shard counts compared.
        shards: (usize, usize),
    },
    /// An external command, invoked as `cmd <artifact-path>`, exits
    /// nonzero.
    ExitNonzero {
        /// The command line prefix (run through `sh -c`, with the
        /// candidate artifact path appended).
        cmd: String,
    },
}

impl Predicate {
    /// Evaluates a candidate. `Some(fingerprint)` when the candidate
    /// fails the predicate's way; `None` when healthy, failing some other
    /// way, panicking, or timing out.
    pub fn eval(&self, repro: &Repro, opts: &EvalOptions) -> Option<String> {
        match self {
            Predicate::Wedge { fingerprint } => {
                let observed = opts.replay(repro)?.wedge_fingerprint()?;
                match fingerprint {
                    Some(want) if *want != observed => None,
                    _ => Some(observed),
                }
            }
            Predicate::Violation { fingerprint } => {
                let fps = opts.replay(repro)?.violation_fingerprints();
                match fingerprint {
                    Some(want) => fps.contains(want).then(|| want.clone()),
                    None => fps.into_iter().next(),
                }
            }
            Predicate::Oracle => opts
                .replay(repro)?
                .violation_fingerprints()
                .into_iter()
                .find(|fp| fp.starts_with("oracle-")),
            Predicate::ShardDivergence { shards: (a, b) } => {
                let (a, b) = (*a, *b);
                let ra = {
                    let r = repro.clone();
                    isolate::call(opts.timeout, move || {
                        outcome_digest(&r.replay_with_shards(a))
                    })
                    .ok()?
                };
                let rb = {
                    let r = repro.clone();
                    isolate::call(opts.timeout, move || {
                        outcome_digest(&r.replay_with_shards(b))
                    })
                    .ok()?
                };
                (ra != rb).then(|| format!("shard-divergence:{a}!={b}"))
            }
            Predicate::ExitNonzero { cmd } => {
                let path = std::env::temp_dir().join(format!(
                    "flash-minimize-{}-{:x}.json",
                    std::process::id(),
                    fxhash(repro.to_json_string().as_bytes())
                ));
                std::fs::write(&path, repro.to_json_string()).ok()?;
                let status = std::process::Command::new("sh")
                    .arg("-c")
                    .arg(format!("{cmd} {}", path.display()))
                    .status();
                let _ = std::fs::remove_file(&path);
                match status {
                    Ok(s) if !s.success() => Some(format!("exit:{}", s.code().unwrap_or(-1))),
                    _ => None,
                }
            }
        }
    }

    /// Returns this predicate with the observed fingerprint pinned, so
    /// the shrink keeps *this* failure rather than drifting to any
    /// failure. Only `wedge`/`violation` pin; the others are already
    /// exact.
    pub fn pinned(&self, observed: &str) -> Predicate {
        match self {
            Predicate::Wedge { fingerprint: None } => Predicate::Wedge {
                fingerprint: Some(observed.to_string()),
            },
            Predicate::Violation { fingerprint: None } => Predicate::Violation {
                fingerprint: Some(observed.to_string()),
            },
            other => other.clone(),
        }
    }

    /// Whether the candidate must run in checked mode for this predicate
    /// to be observable.
    pub fn needs_check(&self) -> bool {
        matches!(self, Predicate::Violation { .. } | Predicate::Oracle)
    }
}

/// Everything observable about a replay, digested for divergence
/// comparison. Uses `Debug` forms: any field-level difference shows up.
fn outcome_digest(out: &ReplayOutcome) -> String {
    format!(
        "{:?}|{:?}|{}",
        out.result,
        out.violation_fingerprints(),
        out.oracle_checked
    )
}

/// Tiny FNV-style hash for temp-file naming (not cryptographic).
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Wedge { fingerprint: None } => write!(f, "wedge"),
            Predicate::Wedge {
                fingerprint: Some(fp),
            } => write!(f, "wedge:{fp}"),
            Predicate::Violation { fingerprint: None } => write!(f, "violation"),
            Predicate::Violation {
                fingerprint: Some(fp),
            } => write!(f, "violation:{fp}"),
            Predicate::Oracle => write!(f, "oracle"),
            Predicate::ShardDivergence { shards: (a, b) } => write!(f, "shards:{a},{b}"),
            Predicate::ExitNonzero { cmd } => write!(f, "exit:{cmd}"),
        }
    }
}

impl std::str::FromStr for Predicate {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (head, rest) = match s.split_once(':') {
            Some((h, r)) => (h, Some(r)),
            None => (s, None),
        };
        match (head, rest) {
            ("wedge", fp) => Ok(Predicate::Wedge {
                fingerprint: fp.map(str::to_string),
            }),
            ("violation", fp) => Ok(Predicate::Violation {
                fingerprint: fp.map(str::to_string),
            }),
            ("oracle", None) => Ok(Predicate::Oracle),
            ("shards", Some(pair)) => {
                let (a, b) = pair
                    .split_once(',')
                    .ok_or("shards predicate needs `a,b`")?;
                Ok(Predicate::ShardDivergence {
                    shards: (
                        a.trim().parse().map_err(|_| "bad shard count")?,
                        b.trim().parse().map_err(|_| "bad shard count")?,
                    ),
                })
            }
            ("exit", Some(cmd)) if !cmd.is_empty() => Ok(Predicate::ExitNonzero {
                cmd: cmd.to_string(),
            }),
            _ => Err(format!(
                "unknown predicate `{s}` (expected wedge[:fp], violation[:fp], oracle, shards:a,b, exit:cmd)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash::config::node_addr;
    use flash_cpu::WorkItem;
    use flash_engine::NodeId;
    use flash_fault::{FaultAtom, LinkDown};

    fn wedge_repro() -> Repro {
        let a = node_addr(NodeId(1), 0x4000);
        let mut r = Repro::flash(3);
        r.watchdog_window = 100_000;
        r.fault_atoms = vec![FaultAtom::LinkDown(LinkDown {
            src: 1,
            dst: 2,
            from: 1_000,
            until: None,
        })];
        r.budget = 400_000;
        r.streams = vec![
            vec![WorkItem::Busy(20_000), WorkItem::Read(a), WorkItem::Busy(4)],
            vec![WorkItem::Busy(4)],
            vec![WorkItem::Write(a), WorkItem::Busy(4)],
        ];
        r
    }

    #[test]
    fn parse_display_round_trip() {
        for text in [
            "wedge",
            "wedge:wedge|links=[1->2!]|pending=[]|waiters=[]",
            "violation",
            "violation:swmr@n3:0x8000",
            "oracle",
            "shards:1,4",
            "exit:cargo run -q --bin replayer --",
        ] {
            let p: Predicate = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
        }
        assert!("".parse::<Predicate>().is_err());
        assert!("oracle:x".parse::<Predicate>().is_err());
        assert!("shards:5".parse::<Predicate>().is_err());
        assert!("exit:".parse::<Predicate>().is_err());
    }

    #[test]
    fn wedge_predicate_matches_and_pins() {
        let r = wedge_repro();
        let any = Predicate::Wedge { fingerprint: None };
        let opts = EvalOptions::default();
        let fp = any.eval(&r, &opts).expect("crafted outage must wedge");
        assert!(fp.starts_with("wedge|links=[1->2!]|"));
        let pinned = any.pinned(&fp);
        assert_eq!(pinned.eval(&r, &opts), Some(fp.clone()));
        // A different pinned fingerprint rejects the candidate.
        let other = Predicate::Wedge {
            fingerprint: Some("wedge|links=[0->1!]|pending=[]|waiters=[]".into()),
        };
        assert_eq!(other.eval(&r, &opts), None);
    }

    #[test]
    fn healthy_candidate_fails_no_predicate() {
        let mut r = wedge_repro();
        r.fault_atoms.clear(); // no outage: completes
        r.check = true;
        let opts = EvalOptions::default();
        assert_eq!(Predicate::Wedge { fingerprint: None }.eval(&r, &opts), None);
        assert_eq!(
            Predicate::Violation { fingerprint: None }.eval(&r, &opts),
            None
        );
        assert_eq!(Predicate::Oracle.eval(&r, &opts), None);
        assert_eq!(
            Predicate::ShardDivergence { shards: (1, 2) }.eval(&r, &opts),
            None,
            "sharded engine is byte-identical, so no divergence"
        );
    }

    #[test]
    fn shard_override_changes_nothing_observable() {
        let r = wedge_repro();
        let base = Predicate::Wedge { fingerprint: None }
            .eval(&r, &EvalOptions::default())
            .unwrap();
        for shards in [1, 2, 3] {
            let opts = EvalOptions {
                shards: Some(shards),
                ..Default::default()
            };
            assert_eq!(
                Predicate::Wedge { fingerprint: None }.eval(&r, &opts),
                Some(base.clone()),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn exit_predicate_runs_external_command() {
        let r = wedge_repro();
        let opts = EvalOptions::default();
        let fail = Predicate::ExitNonzero {
            cmd: "test ! -s".into(), // artifact is nonempty → nonzero exit
        };
        assert_eq!(fail.eval(&r, &opts), Some("exit:1".into()));
        let pass = Predicate::ExitNonzero {
            cmd: "test -s".into(),
        };
        assert_eq!(pass.eval(&r, &opts), None);
    }

    #[test]
    fn needs_check_is_accurate() {
        assert!(Predicate::Violation { fingerprint: None }.needs_check());
        assert!(Predicate::Oracle.needs_check());
        assert!(!Predicate::Wedge { fingerprint: None }.needs_check());
        assert!(!Predicate::ShardDivergence { shards: (1, 2) }.needs_check());
    }
}
