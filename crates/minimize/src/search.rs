//! The fixpoint shrink loop.
//!
//! One minimization runs a deterministic sequence of phases over the
//! candidate [`Repro`], repeating the whole sequence until a full pass
//! changes nothing (or the attempt budget runs out):
//!
//! 1. **budget halving** — run length down to a 10k-cycle floor;
//! 2. **watchdog halving** — wedge detection latency down to 5k cycles;
//! 3. **ddmin over fault atoms** — which fault-plan ingredients are
//!    load-bearing;
//! 4. **ddmin over references** — the flattened `(processor, item)` list,
//!    cut globally so cross-processor interactions shrink together;
//! 5. **trailing-node drop** — processors left with empty streams fall
//!    off the mesh end (any candidate the smaller mesh breaks — rehomed
//!    addresses, out-of-range DMA or outage scripts — simply fails the
//!    predicate, or panics into the isolation layer, and is rejected);
//! 6. **cache halving** — capacity down to an 8 KiB floor (smaller
//!    caches usually *tighten* a repro: more evictions, same protocol).
//!
//! Every candidate evaluation is memoized on the candidate's serialized
//! form and counted against the attempt budget; budget exhaustion freezes
//! the current (still-failing) candidate rather than aborting. All
//! decisions depend only on simulation results, which are byte-identical
//! across shard counts and PP backends — so the same input spec always
//! shrinks to the same artifact, byte for byte.

use crate::ddmin::ddmin;
use crate::predicate::{EvalOptions, Predicate};
use flash::repro::Repro;
use flash_cpu::WorkItem;
use std::collections::HashMap;

/// Floor for the budget-halving phase, in cycles.
const BUDGET_FLOOR: u64 = 10_000;
/// Floor for the watchdog-halving phase, in cycles.
const WATCHDOG_FLOOR: u64 = 5_000;
/// Floor for the cache-halving phase, in bytes.
const CACHE_FLOOR: u64 = 8 << 10;

/// Search policy.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Per-candidate evaluation policy (timeout, shard override).
    pub eval: EvalOptions,
    /// Maximum candidate evaluations (cache misses). Exhaustion freezes
    /// the current candidate; it never un-shrinks.
    pub max_attempts: u64,
    /// Skip fingerprint pinning: accept any failure of the predicate's
    /// class while shrinking, not just the initially observed one.
    pub no_pin: bool,
    /// Print one line per accepted shrink to stderr.
    pub verbose: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            eval: EvalOptions::default(),
            max_attempts: 5_000,
            no_pin: false,
            verbose: false,
        }
    }
}

/// A completed minimization.
#[derive(Debug, Clone)]
pub struct Shrink {
    /// The minimal failing artifact (predicate, fingerprint, and
    /// provenance fields filled in).
    pub repro: Repro,
    /// The failure fingerprint the minimal artifact reproduces. Under
    /// pinning (the default) this is also the fingerprint observed on the
    /// initial spec — every accepted candidate had to match it. Unpinned
    /// predicates (`--no-pin`, `oracle`) may drift to a different
    /// instance of the same failure class while shrinking, so the final
    /// observation is re-recorded here and in the artifact's `expect`.
    pub fingerprint: String,
    /// Candidate evaluations spent (cache misses only).
    pub attempts: u64,
    /// Full phase-sequence passes run (the last one changed nothing,
    /// unless the attempt budget ran out first).
    pub iterations: u32,
}

struct Evaluator<'a> {
    predicate: &'a Predicate,
    opts: &'a EvalOptions,
    cache: HashMap<String, bool>,
    attempts: u64,
    max_attempts: u64,
}

impl Evaluator<'_> {
    fn fails(&mut self, candidate: &Repro) -> bool {
        let key = candidate.to_json_string();
        if let Some(&hit) = self.cache.get(&key) {
            return hit;
        }
        if self.attempts >= self.max_attempts {
            return false; // budget exhausted: freeze the current repro
        }
        self.attempts += 1;
        let failing = self.predicate.eval(candidate, self.opts).is_some();
        self.cache.insert(key, failing);
        failing
    }

    fn exhausted(&self) -> bool {
        self.attempts >= self.max_attempts
    }
}

/// Shrinks `initial` to a minimal case still failing `predicate`.
///
/// Returns `Err` when the initial spec does not fail the predicate at
/// all — there is nothing to minimize (and silently "minimizing" a
/// healthy run to the empty artifact would be worse than an error).
pub fn minimize(
    initial: &Repro,
    predicate: &Predicate,
    opts: &SearchOptions,
) -> Result<Shrink, String> {
    let mut repro = initial.clone();
    if predicate.needs_check() && !repro.check {
        repro.check = true;
    }

    let fingerprint = predicate
        .eval(&repro, &opts.eval)
        .ok_or_else(|| format!("initial spec does not fail predicate `{predicate}`"))?;
    let pinned = if opts.no_pin {
        predicate.clone()
    } else {
        predicate.pinned(&fingerprint)
    };
    let mut eval = Evaluator {
        predicate: &pinned,
        opts: &opts.eval,
        cache: HashMap::new(),
        attempts: 0,
        max_attempts: opts.max_attempts,
    };
    // The initial repro is known-failing under the unpinned predicate;
    // seed the cache so phases never re-run it. Under pinning the initial
    // observation *is* the pinned fingerprint, so it fails either way.
    eval.cache.insert(repro.to_json_string(), true);

    let initial_refs = repro.reference_count();
    let initial_atoms = repro.fault_atoms.len();
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let before = repro.to_json_string();
        shrink_budget(&mut repro, &mut eval, opts.verbose);
        shrink_watchdog(&mut repro, &mut eval, opts.verbose);
        shrink_atoms(&mut repro, &mut eval, opts.verbose);
        shrink_refs(&mut repro, &mut eval, opts.verbose);
        drop_trailing_nodes(&mut repro, &mut eval, opts.verbose);
        shrink_cache(&mut repro, &mut eval, opts.verbose);
        if repro.to_json_string() == before || eval.exhausted() {
            break;
        }
    }

    // An unpinned predicate (oracle, --no-pin) may have drifted to a
    // different instance of the failure class than the initial
    // observation; re-evaluate the final candidate so `expect` records
    // what the artifact actually reproduces.
    let fingerprint = pinned.eval(&repro, &opts.eval).unwrap_or(fingerprint);
    repro.predicate = pinned.to_string();
    repro.expect = Some(fingerprint.clone());
    let stats = format!(
        "minimized in {} attempt(s), {} pass(es): {} -> {} reference(s), {} -> {} fault atom(s), {} -> {} node(s)",
        eval.attempts,
        iterations,
        initial_refs,
        repro.reference_count(),
        initial_atoms,
        repro.fault_atoms.len(),
        initial.nodes,
        repro.nodes,
    );
    repro.provenance = if initial.provenance.is_empty() {
        stats
    } else {
        format!("{}; {stats}", initial.provenance)
    };
    Ok(Shrink {
        fingerprint,
        attempts: eval.attempts,
        iterations,
        repro,
    })
}

fn note(verbose: bool, msg: &str) {
    if verbose {
        eprintln!("[minimize] {msg}");
    }
}

fn shrink_budget(repro: &mut Repro, eval: &mut Evaluator<'_>, verbose: bool) {
    while repro.budget / 2 >= BUDGET_FLOOR {
        let mut candidate = repro.clone();
        candidate.budget = repro.budget / 2;
        if !eval.fails(&candidate) {
            break;
        }
        note(verbose, &format!("budget -> {}", candidate.budget));
        *repro = candidate;
    }
}

fn shrink_watchdog(repro: &mut Repro, eval: &mut Evaluator<'_>, verbose: bool) {
    while repro.watchdog_window > 0 && repro.watchdog_window / 2 >= WATCHDOG_FLOOR {
        let mut candidate = repro.clone();
        candidate.watchdog_window = repro.watchdog_window / 2;
        if !eval.fails(&candidate) {
            break;
        }
        note(
            verbose,
            &format!("watchdog -> {}", candidate.watchdog_window),
        );
        *repro = candidate;
    }
}

fn shrink_atoms(repro: &mut Repro, eval: &mut Evaluator<'_>, verbose: bool) {
    if repro.fault_atoms.is_empty() {
        return;
    }
    let reduced = ddmin(&repro.fault_atoms.clone(), |atoms| {
        let mut candidate = repro.clone();
        candidate.fault_atoms = atoms.to_vec();
        eval.fails(&candidate)
    });
    if reduced.len() < repro.fault_atoms.len() {
        note(
            verbose,
            &format!("fault atoms -> {} ({reduced:?})", reduced.len()),
        );
        repro.fault_atoms = reduced;
    }
}

fn shrink_refs(repro: &mut Repro, eval: &mut Evaluator<'_>, verbose: bool) {
    let flat: Vec<(u16, WorkItem)> = repro
        .streams
        .iter()
        .enumerate()
        .flat_map(|(p, items)| items.iter().map(move |&it| (p as u16, it)))
        .collect();
    if flat.is_empty() {
        return;
    }
    let procs = repro.streams.len();
    let rebuild = |subset: &[(u16, WorkItem)]| {
        let mut streams: Vec<Vec<WorkItem>> = vec![Vec::new(); procs];
        for &(p, it) in subset {
            streams[p as usize].push(it);
        }
        streams
    };
    let reduced = ddmin(&flat, |subset| {
        let mut candidate = repro.clone();
        candidate.streams = rebuild(subset);
        eval.fails(&candidate)
    });
    if reduced.len() < flat.len() {
        note(verbose, &format!("references -> {}", reduced.len()));
        repro.streams = rebuild(&reduced);
    }
}

fn drop_trailing_nodes(repro: &mut Repro, eval: &mut Evaluator<'_>, verbose: bool) {
    while repro.nodes > 1 {
        let last = repro.nodes as usize - 1;
        if repro.streams.get(last).is_some_and(|s| !s.is_empty()) {
            break;
        }
        let mut candidate = repro.clone();
        candidate.nodes -= 1;
        candidate.streams.truncate(candidate.nodes as usize);
        if !eval.fails(&candidate) {
            break;
        }
        note(verbose, &format!("nodes -> {}", candidate.nodes));
        *repro = candidate;
    }
}

fn shrink_cache(repro: &mut Repro, eval: &mut Evaluator<'_>, verbose: bool) {
    while repro.cache_bytes / 2 >= CACHE_FLOOR {
        let mut candidate = repro.clone();
        candidate.cache_bytes = repro.cache_bytes / 2;
        if !eval.fails(&candidate) {
            break;
        }
        note(verbose, &format!("cache -> {}", candidate.cache_bytes));
        *repro = candidate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash::config::node_addr;
    use flash_engine::NodeId;
    use flash_fault::{FaultAtom, LinkDown};

    /// The crafted permanent-link-outage wedge on a mesh, padded with
    /// decoy traffic the shrink must strip.
    fn padded_wedge(nodes: u16) -> Repro {
        let a = node_addr(NodeId(1), 0x4000);
        let mut r = Repro::flash(nodes);
        r.watchdog_window = 100_000;
        r.fault_seed = 7;
        r.fault_atoms = vec![
            FaultAtom::DramRefresh {
                period: 50_000,
                cycles: 120,
            },
            FaultAtom::LinkDown(LinkDown {
                src: 1,
                dst: 2,
                from: 1_000,
                until: None,
            }),
        ];
        r.budget = 600_000;
        // Decoys: every node reads its own memory a few times.
        r.streams = (0..nodes)
            .map(|p| {
                let mut items = vec![
                    WorkItem::Read(node_addr(NodeId(p), 0x80)),
                    WorkItem::Busy(50),
                    WorkItem::Read(node_addr(NodeId(p), 0x100)),
                ];
                match p {
                    0 => {
                        items.extend([WorkItem::Busy(20_000), WorkItem::Read(a), WorkItem::Busy(4)])
                    }
                    2 => items.extend([WorkItem::Write(a), WorkItem::Busy(4)]),
                    _ => {}
                }
                items
            })
            .collect();
        r
    }

    #[test]
    fn healthy_initial_spec_is_an_error() {
        let mut r = padded_wedge(3);
        r.fault_atoms.clear();
        let e = minimize(
            &r,
            &Predicate::Wedge { fingerprint: None },
            &SearchOptions::default(),
        )
        .unwrap_err();
        assert!(e.contains("does not fail"), "{e}");
    }

    #[test]
    fn shrinks_the_padded_wedge_to_the_core_interaction() {
        let initial = padded_wedge(4);
        let out = minimize(
            &initial,
            &Predicate::Wedge { fingerprint: None },
            &SearchOptions::default(),
        )
        .unwrap();
        let r = &out.repro;
        // The decoy refs and the decoy fault atom must be gone.
        assert!(
            r.reference_count() <= 5,
            "{} refs survived: {:?}",
            r.reference_count(),
            r.streams
        );
        assert_eq!(r.fault_atoms.len(), 1, "{:?}", r.fault_atoms);
        assert!(matches!(r.fault_atoms[0], FaultAtom::LinkDown(_)));
        // The artifact still fails, with the pinned fingerprint.
        assert_eq!(
            r.replay().wedge_fingerprint().as_deref(),
            Some(out.fingerprint.as_str())
        );
        assert_eq!(r.expect.as_deref(), Some(out.fingerprint.as_str()));
        assert!(r.predicate.starts_with("wedge:"), "{}", r.predicate);
        assert!(r.provenance.contains("minimized in"), "{}", r.provenance);
        // Budget and watchdog came down from the initial values.
        assert!(r.budget < initial.budget);
        assert!(r.watchdog_window < initial.watchdog_window);
    }

    #[test]
    fn minimization_is_deterministic_and_idempotent() {
        let initial = padded_wedge(3);
        let opts = SearchOptions::default();
        let pred = Predicate::Wedge { fingerprint: None };
        let a = minimize(&initial, &pred, &opts).unwrap();
        let b = minimize(&initial, &pred, &opts).unwrap();
        assert_eq!(
            a.repro.to_json_string(),
            b.repro.to_json_string(),
            "same input -> byte-identical artifact"
        );
        // Minimizing the minimal case changes nothing (the provenance
        // records a fresh pass, so compare the replay-relevant fields).
        let again = minimize(&a.repro, &pred, &opts).unwrap();
        let mut x = again.repro.clone();
        let mut y = a.repro.clone();
        x.provenance = String::new();
        y.provenance = String::new();
        assert_eq!(x, y, "minimization is idempotent");
    }

    #[test]
    fn attempt_budget_freezes_but_never_unshrinks() {
        let initial = padded_wedge(3);
        let out = minimize(
            &initial,
            &Predicate::Wedge { fingerprint: None },
            &SearchOptions {
                max_attempts: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.attempts <= 5);
        // Whatever it reached still fails.
        assert!(out.repro.replay().wedge_fingerprint().is_some());
    }
}
