//! # flash-minimize — delta-debugging failure shrinker
//!
//! The randomized correctness nets (checked stress, fault soak, the
//! native-vs-PP oracle, shard-determinism diffs) surface failures as a
//! seed plus a multi-million-cycle run — real, but undebuggable. This
//! crate shrinks such a failure to a minimal case, in the spirit of
//! minirust's `tooling/minimize`: an executable reference kept honest by
//! reduced counterexamples.
//!
//! The pipeline:
//!
//! 1. A [`Spec`] (workload + machine config + fault plan + [`Predicate`])
//!    is materialized into a [`flash::repro::Repro`] — explicit,
//!    bounded per-processor reference lists via
//!    [`flash_workloads::ExplicitWorkload`], the fault plan as an
//!    editable [`flash_fault::FaultAtom`] list.
//! 2. [`search::minimize`] runs [`ddmin`](ddmin::ddmin) over references
//!    and fault atoms plus halving ladders over budget, watchdog, cache
//!    size, and mesh size, to a fixpoint, with every candidate evaluated
//!    under [`flash_bench::isolate`]'s panic/timeout isolation and
//!    matched against the *pinned* failure fingerprint ("same wedge, not
//!    just any wedge").
//! 3. The minimal case is emitted as a self-contained, versioned
//!    `flash-repro-v1` JSON artifact that replays bit-identically, and
//!    optionally as a ready-to-paste `#[test]` stub ([`emit::test_stub`]).
//!
//! The `minimize` bin drives the pipeline from the command line; the
//! randomized test suites print its exact invocation on every failure.

#![deny(missing_docs)]

pub mod ddmin;
pub mod emit;
pub mod predicate;
pub mod search;
pub mod spec;

pub use predicate::{EvalOptions, Predicate};
pub use search::{minimize, SearchOptions, Shrink};
pub use spec::{FaultsSpec, Source, Spec};
