//! The ddmin delta-debugging kernel (Zeller & Hildebrandt's algorithm).
//!
//! Generic over the item type: the search applies it to flattened
//! `(processor, WorkItem)` reference lists and to [`flash_fault::FaultAtom`]
//! lists alike. The kernel is fully deterministic — chunk boundaries and
//! probe order depend only on the input length — which is half of the
//! "same input → byte-identical artifact" guarantee (the other half being
//! the simulator's own determinism).

/// Minimizes `items` to a 1-minimal failing subset.
///
/// `test` receives a candidate subset (in original order) and returns
/// `true` when the failure still reproduces. The input itself must fail
/// (callers check this before starting). Returns the reduced list; every
/// remaining item is load-bearing in the sense that removing any single
/// one makes the failure disappear — *provided* `test` is a pure function
/// of the candidate and the attempt budget did not interrupt the search
/// (`test` may signal exhaustion by returning `false` forever, which
/// simply freezes the current subset).
///
/// # Examples
///
/// ```
/// use flash_minimize::ddmin::ddmin;
///
/// // Failure: the list contains both 3 and 7.
/// let out = ddmin(&(0..100).collect::<Vec<i32>>(), |c| {
///     c.contains(&3) && c.contains(&7)
/// });
/// assert_eq!(out, vec![3, 7]);
/// ```
pub fn ddmin<T: Clone, F: FnMut(&[T]) -> bool>(items: &[T], mut test: F) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.len() <= 1 {
        return current;
    }
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;

        // Probe each chunk alone ("subset") first — the biggest possible
        // cut — then each complement. Deterministic left-to-right order.
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let subset: Vec<T> = current[start..end].to_vec();
            if subset.len() < current.len() && test(&subset) {
                current = subset;
                n = 2;
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }

        if n > 2 {
            // Complements only make sense with more than two chunks (for
            // n = 2 each complement *is* the other subset, just probed).
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let mut complement: Vec<T> = current[..start].to_vec();
                complement.extend_from_slice(&current[end..]);
                if !complement.is_empty() && complement.len() < current.len() && test(&complement) {
                    current = complement;
                    n = (n - 1).max(2);
                    reduced = true;
                    break;
                }
                start = end;
            }
        }
        if reduced {
            continue;
        }

        if n >= current.len() {
            break; // granularity is single items: 1-minimal
        }
        n = (n * 2).min(current.len());
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_culprit() {
        let items: Vec<u32> = (0..64).collect();
        let out = ddmin(&items, |c| c.contains(&37));
        assert_eq!(out, vec![37]);
    }

    #[test]
    fn finds_interacting_pair_far_apart() {
        let items: Vec<u32> = (0..200).collect();
        let out = ddmin(&items, |c| c.contains(&1) && c.contains(&198));
        assert_eq!(out, vec![1, 198]);
    }

    #[test]
    fn preserves_relative_order() {
        let items = vec![5, 4, 3, 2, 1];
        let out = ddmin(&items, |c| c.contains(&4) && c.contains(&2));
        assert_eq!(out, vec![4, 2]);
    }

    #[test]
    fn everything_load_bearing_stays() {
        let items = vec![1, 2, 3, 4];
        let out = ddmin(&items, |c| c.len() == 4);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton_pass_through() {
        assert!(ddmin::<u32, _>(&[], |_| true).is_empty());
        assert_eq!(ddmin(&[9], |_| true), vec![9]);
    }

    #[test]
    fn result_is_one_minimal() {
        // Failure needs at least 3 items from the first half.
        let items: Vec<u32> = (0..40).collect();
        let out = ddmin(&items, |c| c.iter().filter(|&&x| x < 20).count() >= 3);
        assert_eq!(out.len(), 3, "{out:?}");
        for i in 0..out.len() {
            let mut probe = out.clone();
            probe.remove(i);
            assert!(
                probe.iter().filter(|&&x| x < 20).count() < 3,
                "dropping {} should break the failure",
                out[i]
            );
        }
    }

    #[test]
    fn deterministic_for_same_input() {
        let items: Vec<u32> = (0..128).collect();
        let pred = |c: &[u32]| c.contains(&7) && c.contains(&100) && c.contains(&101);
        assert_eq!(ddmin(&items, pred), ddmin(&items, pred));
    }

    #[test]
    fn counts_probes_monotonically() {
        // The attempt budget in the search layer relies on `test` seeing
        // every probe; verify probes are bounded and nonzero.
        let items: Vec<u32> = (0..32).collect();
        let mut probes = 0;
        let _ = ddmin(&items, |c| {
            probes += 1;
            c.contains(&31)
        });
        assert!(probes > 0 && probes < 1_000, "{probes}");
    }
}
