//! `minimize` — shrink a failing FLASH run to a minimal, replayable
//! `flash-repro-v1` artifact.
//!
//! ```text
//! minimize [output flags] <failure spec> --predicate <p>
//! minimize --replay <artifact.json>
//! ```
//!
//! Failure spec (see `flash_minimize::Spec`):
//!
//! ```text
//!   --stress NODES,LINES,ITEMS,SEED   seeded stress-net streams
//!   --workload NAME,PROCS,SCALE[,BOUND] named paper workload, bounded
//!   --controller flash|cost-table|ideal    (default flash)
//!   --cache BYTES                     cache capacity override
//!   --check                           arm the flash-check net
//!   --faults none|zeroed,S|light,S|stress,S   fault preset
//!   --link-down SRC,DST,FROM[,UNTIL]  scripted outage (repeatable)
//!   --watchdog CYCLES                 watchdog override
//!   --budget CYCLES                   run budget (default 2000000)
//!   --predicate wedge[:fp] | violation[:fp] | oracle | shards:a,b | exit:cmd
//! ```
//!
//! Output flags:
//!
//! ```text
//!   --out PATH          write the minimal artifact (default: repro.json)
//!   --emit-test NAME    also print a #[test] regression stub
//!   --attempts N        candidate-evaluation budget (default 5000)
//!   --timeout SECS      wall-clock limit per candidate (default: none)
//!   --shards N          force a shard count for every replay
//!   --no-pin            don't pin the first observed fingerprint
//!   --verbose           log accepted shrinks to stderr
//! ```
//!
//! Replay mode:
//!
//! ```text
//!   --replay PATH       replay an artifact; exit 0 if the recorded
//!                       failure reproduces, 2 if the run is clean,
//!                       1 on any mismatch.
//! ```

use flash::repro::Repro;
use flash_minimize::{emit, minimize, EvalOptions, Predicate, SearchOptions, Spec};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("minimize: {e}");
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) -> Result<i32, String> {
    let mut spec_args: Vec<String> = Vec::new();
    let mut out_path = String::from("repro.json");
    let mut emit_test: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut opts = SearchOptions::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or(format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out_path = value(&mut i, "--out")?,
            "--emit-test" => emit_test = Some(value(&mut i, "--emit-test")?),
            "--replay" => replay_path = Some(value(&mut i, "--replay")?),
            "--attempts" => {
                opts.max_attempts = value(&mut i, "--attempts")?
                    .parse()
                    .map_err(|_| "bad --attempts")?;
            }
            "--timeout" => {
                let secs: f64 = value(&mut i, "--timeout")?
                    .parse()
                    .map_err(|_| "bad --timeout")?;
                opts.eval.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--shards" => {
                opts.eval.shards = Some(
                    value(&mut i, "--shards")?
                        .parse()
                        .map_err(|_| "bad --shards")?,
                );
            }
            "--no-pin" => opts.no_pin = true,
            "--verbose" => opts.verbose = true,
            other => spec_args.push(other.to_string()),
        }
        i += 1;
    }

    if let Some(path) = replay_path {
        return replay(&path, &opts.eval);
    }

    let spec = Spec::from_args(&spec_args)?;
    let initial = spec.build_repro();
    eprintln!(
        "minimizing: {} node(s), {} reference(s), {} fault atom(s), predicate `{}`",
        initial.nodes,
        initial.reference_count(),
        initial.fault_atoms.len(),
        spec.predicate,
    );
    let shrink = minimize(&initial, &spec.predicate, &opts)?;
    std::fs::write(&out_path, shrink.repro.to_json_string())
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!(
        "minimal: {} node(s), {} reference(s), {} fault atom(s) after {} attempt(s); fingerprint {}",
        shrink.repro.nodes,
        shrink.repro.reference_count(),
        shrink.repro.fault_atoms.len(),
        shrink.attempts,
        shrink.fingerprint,
    );
    eprintln!("artifact: {out_path}");
    eprintln!("replay:   minimize --replay {out_path}");
    if let Some(name) = emit_test {
        println!("{}", emit::test_stub(&shrink.repro, &name));
    }
    Ok(0)
}

/// Replays an artifact and reports whether its recorded failure still
/// reproduces.
fn replay(path: &str, eval: &EvalOptions) -> Result<i32, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let repro = Repro::parse(&text)?;
    let predicate: Predicate = repro
        .predicate
        .parse()
        .map_err(|e| format!("artifact predicate: {e}"))?;
    match predicate.eval(&repro, eval) {
        Some(fp) => {
            println!("reproduced: {fp}");
            if let Some(expect) = &repro.expect {
                if *expect != fp {
                    println!("WARNING: artifact recorded a different fingerprint: {expect}");
                    return Ok(1);
                }
            }
            Ok(0)
        }
        None => {
            let outcome = repro.replay();
            println!(
                "clean: failure did not reproduce (result {:?}, {} violation(s))",
                outcome.result,
                outcome.violations.len()
            );
            Ok(2)
        }
    }
}
