//! Static dual-issue scheduling (the PPtwine role).
//!
//! "The PP is a dual-issue machine, executing a pair of instructions every
//! cycle. To simplify implementation, the PP does not include support for
//! resource conflict detection; all instruction pairs must be statically
//! scheduled to avoid dependencies" (paper §2). This module packs an
//! assembled [`Module`] into issue pairs under those rules:
//!
//! * no intra-pair register dependence (RAW or WAW);
//! * control transfers (branches, jumps, `switch`) may only occupy the
//!   second slot of a pair, so the whole pair completes before control
//!   moves — a lone control instruction is padded with a trailing NOP;
//! * at most one memory-port instruction (load/store) and at most one
//!   MAGIC-unit instruction (`send`/`memop`/`mfmsg`/`switch`) per pair;
//! * pairs never straddle basic-block boundaries (labels).
//!
//! Within a basic block the scheduler may hoist a later instruction into
//! an earlier pair when doing so breaks no dependence (a window-limited
//! list schedule), which is what pushes the dynamic dual-issue efficiency
//! towards the paper's reported 1.53.

use crate::isa::Instr;
use crate::prog::{Module, Pair, Program};
use std::collections::BTreeMap;

/// Scheduling options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedOptions {
    /// Pack two instructions per cycle. `false` models the single-issue PP
    /// of the paper's §5.3 de-optimization experiment.
    pub dual_issue: bool,
    /// How many instructions ahead the scheduler may look when filling the
    /// second slot (0 = adjacent pairing only).
    pub window: usize,
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions {
            dual_issue: true,
            window: 3,
        }
    }
}

impl SchedOptions {
    /// The production configuration used on MAGIC.
    pub fn magic() -> Self {
        Self::default()
    }

    /// Single-issue scheduling for the §5.3 comparison.
    pub fn single_issue() -> Self {
        SchedOptions {
            dual_issue: false,
            window: 0,
        }
    }
}

/// Statically schedules `module` into an executable [`Program`].
///
/// # Panics
///
/// Panics if a label points past the end of the instruction stream while
/// also being a branch target (the assembler prevents this for programs it
/// produces).
pub fn schedule(module: &Module, opts: SchedOptions) -> Program {
    // Basic-block leaders: entry, every label target, every instruction
    // following a control transfer.
    let n = module.instrs.len();
    let mut leader = vec![false; n + 1];
    leader[0] = true;
    for &t in &module.labels {
        if t <= n {
            leader[t] = true;
        }
    }
    for (i, instr) in module.instrs.iter().enumerate() {
        if instr.is_control() && i < n {
            leader[i + 1] = true;
        }
    }

    let mut pairs: Vec<Pair> = Vec::with_capacity(n);
    // instr index -> pair index where it was placed
    let mut placement = vec![usize::MAX; n];
    let mut consumed = vec![false; n];

    let mut i = 0;
    while i < n {
        if consumed[i] {
            i += 1;
            continue;
        }
        let a = module.instrs[i];
        consumed[i] = true;
        placement[i] = pairs.len();

        let mut b = Instr::Nop;
        if opts.dual_issue && !a.is_control() {
            // Look for a partner in the same basic block within the window.
            let mut moved_over: Vec<Instr> = Vec::new();
            let mut j = i + 1;
            let mut dist = 0;
            while j < n && dist <= opts.window {
                if leader[j] {
                    break; // block boundary
                }
                let cand = module.instrs[j];
                if !consumed[j]
                    && can_pair(&a, &cand)
                    && moved_over.iter().all(|m| independent(m, &cand))
                {
                    // Hoisting `cand` over `moved_over` is safe only if the
                    // candidate is not a control transfer when instructions
                    // remain between i and j (control must stay last), and
                    // none of the skipped instructions is itself control.
                    let skipped_control = moved_over.iter().any(|m| m.is_control());
                    if (!cand.is_control() || moved_over.is_empty()) && !skipped_control {
                        b = cand;
                        consumed[j] = true;
                        placement[j] = pairs.len();
                        break;
                    }
                }
                if !consumed[j] {
                    moved_over.push(cand);
                    dist += 1;
                }
                j += 1;
            }
        }
        pairs.push(Pair { a, b });
        i += 1;
    }

    // Resolve labels to pair indices. A label at instruction k maps to the
    // pair containing the first unconsumed-at-or-after-k instruction; since
    // labels are leaders, instruction k starts its own pair.
    let label_pc: Vec<usize> = module
        .labels
        .iter()
        .map(|&t| if t >= n { pairs.len() } else { placement[t] })
        .collect();

    let symbols: BTreeMap<String, usize> = module
        .symbols
        .iter()
        .map(|(name, l)| (name.clone(), label_pc[l.0 as usize]))
        .collect();

    Program::new(pairs, label_pc, symbols)
}

/// Whether `b` may share an issue pair with `a` (with `a` first).
fn can_pair(a: &Instr, b: &Instr) -> bool {
    if *a == Instr::Nop || *b == Instr::Nop {
        return false; // never pair with explicit NOPs; padding is implicit
    }
    if a.is_control() {
        return false;
    }
    if !independent(a, b) {
        return false;
    }
    // Structural hazards: one memory port, one MAGIC-interface unit.
    let mem = |i: &Instr| matches!(i, Instr::Load { .. } | Instr::Store { .. });
    let unit = |i: &Instr| {
        matches!(
            i,
            Instr::Send { .. } | Instr::MemOp { .. } | Instr::MfMsg { .. } | Instr::Switch
        )
    };
    if mem(a) && mem(b) {
        return false;
    }
    if unit(a) && unit(b) {
        return false;
    }
    true
}

/// No RAW, WAR, or WAW dependence between `x` (earlier) and `y` (later).
fn independent(x: &Instr, y: &Instr) -> bool {
    let reads = |i: &Instr, r| {
        let (srcs, k) = i.sources();
        srcs[..k].iter().flatten().any(|&s| s == r)
    };
    if let Some(d) = x.dest() {
        if reads(y, d) || y.dest() == Some(d) {
            return false; // RAW or WAW
        }
    }
    if let Some(d) = y.dest() {
        if reads(x, d) {
            return false; // WAR (matters when hoisting y over x)
        }
    }
    // Memory disambiguation is not attempted: a store may not pass a load
    // or store, and vice versa.
    let mem = |i: &Instr| matches!(i, Instr::Load { .. } | Instr::Store { .. });
    let sideeff = |i: &Instr| matches!(i, Instr::Send { .. } | Instr::MemOp { .. });
    if (mem(x) && mem(y)) && (matches!(x, Instr::Store { .. }) || matches!(y, Instr::Store { .. }))
    {
        return false;
    }
    // Side-effecting MAGIC ops keep their program order relative to each
    // other and to stores.
    if sideeff(x) && (sideeff(y) || matches!(y, Instr::Store { .. })) {
        return false;
    }
    if sideeff(y) && matches!(x, Instr::Store { .. }) {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sched(src: &str) -> Program {
        schedule(&assemble(src).unwrap(), SchedOptions::default())
    }

    #[test]
    fn independent_instrs_pair() {
        let p = sched("s:\n  addi r1, r0, 1\n  addi r2, r0, 2\n  switch\n");
        // (addi, addi), (switch, nop)
        assert_eq!(p.pairs.len(), 2);
        assert_eq!(p.pairs[0].useful(), 2);
    }

    #[test]
    fn raw_dependence_blocks_pairing() {
        let p = sched("s:\n  addi r1, r0, 1\n  addi r2, r1, 2\n  switch\n");
        // The dependent addi cannot share the first pair; the switch pairs
        // with the second addi instead.
        assert_eq!(p.pairs[0].useful(), 1);
        assert_eq!(p.pairs.len(), 2);
        assert_eq!(p.pairs[1].useful(), 2);
    }

    #[test]
    fn control_only_in_second_slot() {
        let p = sched("s:\n  addi r1, r0, 1\n  beq r2, r3, s\n  switch\n");
        // beq can pair after addi.
        assert_eq!(p.pairs[0].useful(), 2);
        assert!(p.pairs[0].b.is_control());
    }

    #[test]
    fn window_hoists_independent_later_instruction() {
        // r2 depends on r1, but the third instruction is independent and
        // should be hoisted into the first pair.
        let p = sched("s:\n  addi r1, r0, 1\n  addi r2, r1, 2\n  addi r3, r0, 3\n  switch\n");
        assert_eq!(p.pairs[0].useful(), 2);
        match p.pairs[0].b {
            Instr::AluImm { rd, .. } => assert_eq!(rd.0, 3),
            ref other => panic!("unexpected slot b: {other:?}"),
        }
    }

    #[test]
    fn hoisting_respects_war() {
        // Cannot hoist `addi r1, r0, 9` (writes r1) over `addi r2, r1, 2`
        // (reads r1) into the first pair with `addi r1, r0, 1` (WAW with it
        // anyway); ensure r2's value computation stays correct by blocking.
        let p = sched("s:\n  addi r1, r0, 1\n  addi r2, r1, 2\n  addi r1, r0, 9\n  switch\n");
        // First pair must not contain the second write to r1.
        assert_eq!(p.pairs[0].useful(), 1);
    }

    #[test]
    fn labels_break_blocks() {
        let p = sched("s:\n  addi r1, r0, 1\nmid:\n  addi r2, r0, 2\n  switch\n");
        assert_eq!(p.pairs[0].useful(), 1, "pairing across a label is illegal");
        assert_eq!(p.symbols["mid"], 1);
    }

    #[test]
    fn single_issue_never_pairs() {
        let p = schedule(
            &assemble("s:\n  addi r1, r0, 1\n  addi r2, r0, 2\n  switch\n").unwrap(),
            SchedOptions::single_issue(),
        );
        assert!(p.pairs.iter().all(|pr| pr.useful() <= 1));
        assert_eq!(p.pairs.len(), 3);
    }

    #[test]
    fn two_loads_do_not_share_a_pair() {
        let p = sched("s:\n  ld r1, 0(r4)\n  ld r2, 8(r4)\n  switch\n");
        assert_eq!(p.pairs[0].useful(), 1);
    }

    #[test]
    fn store_does_not_pass_store() {
        let p = sched("s:\n  sd r1, 0(r4)\n  sd r2, 8(r4)\n  switch\n");
        assert_eq!(p.pairs[0].useful(), 1);
    }

    #[test]
    fn alu_pairs_with_load() {
        let p = sched("s:\n  ld r1, 0(r4)\n  addi r2, r0, 7\n  switch\n");
        assert_eq!(p.pairs[0].useful(), 2);
    }

    #[test]
    fn sends_keep_program_order() {
        let p = sched("s:\n  sendp r1, r2, r3\n  sendp r4, r5, r6\n  switch\n");
        assert_eq!(p.pairs[0].useful(), 1);
    }

    #[test]
    fn label_at_end_maps_past_last_pair() {
        let p = sched("s:\n  nop\nend:\n");
        assert_eq!(p.symbols["end"], p.pairs.len());
    }
}
