//! The PP instruction-set emulator (the PPsim role).
//!
//! "PPsim, the instruction set emulator for the PP, executes the handlers
//! and reports accurate instruction usage statistics and dynamic cycle
//! counts" (paper §3.3). [`run`] executes one handler from its entry point
//! to its `switch` instruction against an [`Env`] that supplies message
//! header fields and protocol memory, and returns the handler's dynamic
//! cycle count, its instruction statistics, and a timeline of *effects*
//! (message sends, memory operations, MAGIC data cache misses) with their
//! cycle offsets. The machine model replays that timeline on the event
//! queue, inserting stalls for contended resources.

use crate::isa::{
    field_mask, AluOp, FieldOp, Instr, MemOpKind, MemSize, Reg, SendTarget, NUM_REGS,
};
use crate::prog::Program;
use std::error::Error;
use std::fmt;

/// An outgoing message composed by a `send` instruction, in raw register
/// form. The protocol crate gives meaning to `mtype` and `aux`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutMsg {
    /// Where the message goes (local processor or network).
    pub target: SendTarget,
    /// Whether a data buffer travels with the header.
    pub with_data: bool,
    /// Raw message type.
    pub mtype: u64,
    /// Destination node (network sends only).
    pub dest: u64,
    /// Address carried in the header.
    pub addr: u64,
    /// Auxiliary header field (ack counts, forwarding info, ...).
    pub aux: u64,
}

/// A MAGIC data cache miss reported by the environment on a PP load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdcMiss {
    /// Protocol-memory line that must be fetched.
    pub line: u64,
    /// Whether the access was a store.
    pub write: bool,
    /// Dirty victim line that must be written back first, if any.
    pub victim_writeback: Option<u64>,
}

/// One externally visible action of a handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// An outgoing message.
    Send(OutMsg),
    /// A memory operation on a 128-byte data line.
    MemOp {
        /// Read into or write from a data buffer.
        kind: MemOpKind,
        /// Byte address of the line.
        addr: u64,
    },
    /// A MAGIC data cache miss (stalls the PP; occupies the memory system).
    Mdc(MdcMiss),
}

/// An effect annotated with the execution-cycle offset (from handler start)
/// at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEffect {
    /// Pairs completed before this effect issued.
    pub offset: u64,
    /// The action itself.
    pub kind: EffectKind,
}

/// Dynamic instruction statistics for one or more handler runs
/// (the raw material for paper Table 5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Dual-issue pairs executed (equals execution cycles).
    pub pairs: u64,
    /// Non-NOP instructions executed.
    pub instrs: u64,
    /// Special (MAGIC-extension) instructions executed.
    pub special: u64,
    /// ALU + branch instructions executed (denominator for special use).
    pub alu_branch: u64,
    /// PP loads executed.
    pub loads: u64,
    /// PP stores executed.
    pub stores: u64,
    /// MDC misses reported by the environment.
    pub mdc_misses: u64,
    /// Handler invocations accumulated.
    pub invocations: u64,
}

impl RunStats {
    /// Accumulates another run's statistics.
    pub fn merge(&mut self, other: &RunStats) {
        self.pairs += other.pairs;
        self.instrs += other.instrs;
        self.special += other.special;
        self.alu_branch += other.alu_branch;
        self.loads += other.loads;
        self.stores += other.stores;
        self.mdc_misses += other.mdc_misses;
        self.invocations += other.invocations;
    }

    /// Dynamic dual-issue efficiency: non-NOP instructions per pair
    /// (2.0 would be perfect; the paper reports 1.43–1.54).
    pub fn dual_issue_efficiency(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.instrs as f64 / self.pairs as f64
        }
    }

    /// Dynamic fraction of ALU and branch instructions that are special.
    pub fn special_fraction(&self) -> f64 {
        if self.alu_branch == 0 {
            0.0
        } else {
            self.special as f64 / self.alu_branch as f64
        }
    }

    /// Mean instruction pairs per handler invocation.
    pub fn pairs_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.pairs as f64 / self.invocations as f64
        }
    }
}

/// The result of emulating one handler.
#[derive(Debug, Clone, Default)]
pub struct HandlerRun {
    /// Externally visible actions, in issue order with cycle offsets.
    pub effects: Vec<TimedEffect>,
    /// Pure execution cycles (pairs executed); resource stalls are added by
    /// the machine model when replaying `effects`.
    pub exec_cycles: u64,
    /// Instruction statistics for this run.
    pub stats: RunStats,
}

/// The environment a handler executes against: message header fields and
/// protocol memory (directory headers, pointer store), with MDC modelling.
pub trait Env {
    /// Loads `size` bytes at `addr` from protocol memory. Also reports an
    /// MDC miss if the access missed.
    fn load(&mut self, addr: u64, size: MemSize) -> (u64, Option<MdcMiss>);

    /// Stores `size` bytes at `addr` to protocol memory, reporting an MDC
    /// miss if the access missed.
    fn store(&mut self, addr: u64, val: u64, size: MemSize) -> Option<MdcMiss>;

    /// Reads a field of the message header being processed.
    fn msg_field(&mut self, field: u8) -> u64;
}

/// An emulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The handler executed more than the configured pair budget without
    /// reaching `switch` — almost certainly an infinite loop.
    RanAway {
        /// The pair budget that was exhausted.
        budget: u64,
    },
    /// Control transferred outside the program.
    BadPc {
        /// The offending pair index.
        pc: usize,
    },
    /// A load or store used an address not aligned to its size.
    Unaligned {
        /// The offending byte address.
        addr: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::RanAway { budget } => {
                write!(f, "handler exceeded {budget} pairs without switch")
            }
            EmuError::BadPc { pc } => write!(f, "control transfer to invalid pc {pc}"),
            EmuError::Unaligned { addr } => {
                write!(f, "unaligned protocol memory access at {addr:#x}")
            }
        }
    }
}

impl Error for EmuError {}

/// Default pair budget for [`run`]; generous compared to real handlers
/// (tens of pairs, hundreds when walking long sharer lists).
pub const DEFAULT_PAIR_BUDGET: u64 = 1_000_000;

enum Ctl {
    Jump(usize),
    Switch,
}

/// Executes the handler at pair index `entry` until its `switch`.
///
/// # Errors
///
/// Returns an [`EmuError`] on runaway execution, a control transfer outside
/// the program, or an unaligned memory access.
///
/// # Examples
///
/// ```
/// use flash_pp::{asm, sched, emu};
///
/// let module = asm::assemble("h:\n  addi r1, r0, 2\n  addi r2, r0, 3\n  switch\n")?;
/// let prog = sched::schedule(&module, sched::SchedOptions::default());
/// let mut env = emu::FlatEnv::new(256);
/// let run = emu::run(&prog, prog.entry("h").unwrap(), &mut env, emu::DEFAULT_PAIR_BUDGET)?;
/// assert_eq!(run.exec_cycles, 2); // (addi,addi) + (switch,nop)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(
    program: &Program,
    entry: usize,
    env: &mut impl Env,
    pair_budget: u64,
) -> Result<HandlerRun, EmuError> {
    let mut regs = [0u64; NUM_REGS];
    let mut out = HandlerRun {
        stats: RunStats {
            invocations: 1,
            ..RunStats::default()
        },
        ..HandlerRun::default()
    };
    let mut pc = entry;
    loop {
        if out.stats.pairs >= pair_budget {
            return Err(EmuError::RanAway {
                budget: pair_budget,
            });
        }
        let pair = *program.pairs.get(pc).ok_or(EmuError::BadPc { pc })?;
        let offset = out.stats.pairs;
        out.stats.pairs += 1;
        // Pre-decoded at schedule time: both slots of a pair always
        // execute (control applies after the pair), so per-pair counts
        // are exact and the hot loop skips three per-instruction
        // classification matches.
        let meta = program.pair_meta(pc);
        out.stats.instrs += meta.instrs as u64;
        out.stats.special += meta.special as u64;
        out.stats.alu_branch += meta.alu_branch as u64;

        let mut ctl = None;
        for instr in [pair.a, pair.b] {
            if instr == Instr::Nop {
                continue;
            }
            if let Some(c) = exec(instr, &mut regs, env, program, offset, &mut out)? {
                ctl = Some(c);
            }
        }
        match ctl {
            Some(Ctl::Switch) => {
                out.exec_cycles = out.stats.pairs;
                return Ok(out);
            }
            Some(Ctl::Jump(target)) => pc = target,
            None => pc += 1,
        }
    }
}

fn exec(
    instr: Instr,
    regs: &mut [u64; NUM_REGS],
    env: &mut impl Env,
    program: &Program,
    offset: u64,
    out: &mut HandlerRun,
) -> Result<Option<Ctl>, EmuError> {
    let w = |regs: &mut [u64; NUM_REGS], rd: Reg, v: u64| {
        if rd != Reg::ZERO {
            regs[rd.index()] = v;
        }
    };
    match instr {
        Instr::Nop => {}
        Instr::Alu { op, rd, rs, rt } => {
            let v = op.apply(regs[rs.index()], regs[rt.index()]);
            w(regs, rd, v);
        }
        Instr::AluImm { op, rd, rs, imm } => {
            // Logical immediates zero-extend; arithmetic immediates
            // sign-extend (DLX convention).
            let b = match op {
                AluOp::And | AluOp::Or | AluOp::Xor => imm as u16 as u64,
                _ => imm as i64 as u64,
            };
            let v = op.apply(regs[rs.index()], b);
            w(regs, rd, v);
        }
        Instr::Lui { rd, imm } => w(regs, rd, (imm as u64) << 16),
        Instr::FieldImm {
            op,
            rd,
            rs,
            pos,
            width,
        } => {
            let m = field_mask(pos, width);
            let a = regs[rs.index()];
            let v = match op {
                FieldOp::AndMask => a & m,
                FieldOp::AndNotMask => a & !m,
                FieldOp::OrMask => a | m,
                FieldOp::XorMask => a ^ m,
            };
            w(regs, rd, v);
        }
        Instr::BfExt { rd, rs, pos, width } => {
            let v = (regs[rs.index()] >> pos) & field_mask(0, width);
            w(regs, rd, v);
        }
        Instr::BfIns { rd, rs, pos, width } => {
            let m = field_mask(pos, width);
            let v = (regs[rd.index()] & !m) | ((regs[rs.index()] << pos) & m);
            w(regs, rd, v);
        }
        Instr::Ffs { rd, rs } => {
            let v = regs[rs.index()];
            let pos = if v == 0 {
                64
            } else {
                v.trailing_zeros() as u64
            };
            w(regs, rd, pos);
        }
        Instr::Load { rd, rs, off, size } => {
            out.stats.loads += 1;
            let addr = regs[rs.index()].wrapping_add(off as i64 as u64);
            if !addr.is_multiple_of(size.bytes()) {
                return Err(EmuError::Unaligned { addr });
            }
            let (v, miss) = env.load(addr, size);
            if let Some(m) = miss {
                out.stats.mdc_misses += 1;
                out.effects.push(TimedEffect {
                    offset,
                    kind: EffectKind::Mdc(m),
                });
            }
            w(regs, rd, v);
        }
        Instr::Store { rt, rs, off, size } => {
            out.stats.stores += 1;
            let addr = regs[rs.index()].wrapping_add(off as i64 as u64);
            if !addr.is_multiple_of(size.bytes()) {
                return Err(EmuError::Unaligned { addr });
            }
            if let Some(m) = env.store(addr, regs[rt.index()], size) {
                out.stats.mdc_misses += 1;
                out.effects.push(TimedEffect {
                    offset,
                    kind: EffectKind::Mdc(m),
                });
            }
        }
        Instr::Branch {
            cond,
            rs,
            rt,
            target,
        } => {
            if cond.taken(regs[rs.index()], regs[rt.index()]) {
                return Ok(Some(Ctl::Jump(program.label_pc(target))));
            }
        }
        Instr::BranchBit {
            set,
            rs,
            bit,
            target,
        } => {
            let bitval = (regs[rs.index()] >> bit) & 1 == 1;
            if bitval == set {
                return Ok(Some(Ctl::Jump(program.label_pc(target))));
            }
        }
        Instr::Jump { target } => return Ok(Some(Ctl::Jump(program.label_pc(target)))),
        Instr::MfMsg { rd, field } => {
            let v = env.msg_field(field);
            w(regs, rd, v);
        }
        Instr::Send {
            target,
            with_data,
            rtype,
            rdest,
            raddr,
            raux,
        } => {
            out.effects.push(TimedEffect {
                offset,
                kind: EffectKind::Send(OutMsg {
                    target,
                    with_data,
                    mtype: regs[rtype.index()],
                    dest: regs[rdest.index()],
                    addr: regs[raddr.index()],
                    aux: regs[raux.index()],
                }),
            });
        }
        Instr::MemOp { kind, raddr } => {
            out.effects.push(TimedEffect {
                offset,
                kind: EffectKind::MemOp {
                    kind,
                    addr: regs[raddr.index()],
                },
            });
        }
        Instr::Switch => return Ok(Some(Ctl::Switch)),
    }
    Ok(None)
}

/// A simple [`Env`] over a flat byte array with no MDC (every access hits):
/// the workhorse for unit tests and for measuring pure handler occupancies.
#[derive(Debug, Clone)]
pub struct FlatEnv {
    mem: Vec<u8>,
    /// Message header fields returned by `mfmsg`.
    pub fields: [u64; 16],
}

impl FlatEnv {
    /// Creates an environment with `bytes` of zeroed protocol memory.
    pub fn new(bytes: usize) -> Self {
        FlatEnv {
            mem: vec![0; bytes],
            fields: [0; 16],
        }
    }

    /// Reads back a 64-bit value (for assertions).
    ///
    /// # Panics
    ///
    /// Panics if `addr + 8` exceeds the memory size.
    pub fn peek64(&self, addr: u64) -> u64 {
        let a = addr as usize;
        u64::from_le_bytes(self.mem[a..a + 8].try_into().expect("in range"))
    }

    /// Writes a 64-bit value (for test setup).
    ///
    /// # Panics
    ///
    /// Panics if `addr + 8` exceeds the memory size.
    pub fn poke64(&mut self, addr: u64, val: u64) {
        let a = addr as usize;
        self.mem[a..a + 8].copy_from_slice(&val.to_le_bytes());
    }
}

impl Env for FlatEnv {
    fn load(&mut self, addr: u64, size: MemSize) -> (u64, Option<MdcMiss>) {
        let a = addr as usize;
        let v = match size {
            MemSize::Double => u64::from_le_bytes(self.mem[a..a + 8].try_into().expect("in range")),
            MemSize::Word => {
                u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("in range")) as u64
            }
        };
        (v, None)
    }

    fn store(&mut self, addr: u64, val: u64, size: MemSize) -> Option<MdcMiss> {
        let a = addr as usize;
        match size {
            MemSize::Double => self.mem[a..a + 8].copy_from_slice(&val.to_le_bytes()),
            MemSize::Word => self.mem[a..a + 4].copy_from_slice(&(val as u32).to_le_bytes()),
        }
        None
    }

    fn msg_field(&mut self, field: u8) -> u64 {
        self.fields[field as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::sched::{schedule, SchedOptions};

    fn exec_src(src: &str, env: &mut FlatEnv) -> HandlerRun {
        let m = assemble(src).unwrap();
        let p = schedule(&m, SchedOptions::default());
        run(&p, 0, env, DEFAULT_PAIR_BUDGET).unwrap()
    }

    #[test]
    fn arithmetic_and_store() {
        let mut env = FlatEnv::new(64);
        let r = exec_src(
            "h:\n  addi r1, r0, 6\n  addi r2, r0, 7\n  add r3, r1, r2\n  addi r4, r0, 8\n  sd r3, 0(r4)\n  switch\n",
            &mut env,
        );
        assert_eq!(env.peek64(8), 13);
        assert_eq!(r.stats.stores, 1);
        assert!(r.effects.is_empty());
    }

    #[test]
    fn loop_with_branch() {
        // Sum 1..=5 by looping.
        let src = "h:
  addi r1, r0, 5
  addi r2, r0, 0
loop:
  add r2, r2, r1
  addi r1, r1, -1
  bgtz r1, loop
  addi r3, r0, 16
  sd r2, 0(r3)
  switch
";
        let mut env = FlatEnv::new(64);
        exec_src(src, &mut env);
        assert_eq!(env.peek64(16), 15);
    }

    #[test]
    fn bitfield_instructions() {
        let src = "h:
  li r1, 0x1234
  bfext r2, r1, 4, 8      ; (0x1234 >> 4) & 0xff = 0x23
  li r3, 0xff
  bfins r1, r3, 8, 4      ; insert 0xf at bits 8..12
  ffs r4, r1
  addi r5, r0, 0
  ffs r6, r5              ; ffs(0) = 64
  switch
";
        let mut env = FlatEnv::new(0);
        let m = assemble(src).unwrap();
        let p = schedule(&m, SchedOptions::default());
        // Verify by re-running and storing results via a tweaked source
        // instead: simpler to check register effects through memory.
        let src2 = "h:
  li r1, 0x1234
  bfext r2, r1, 4, 8
  addi r9, r0, 0
  sd r2, 0(r9)
  li r3, 0xff
  bfins r1, r3, 8, 4
  sd r1, 8(r9)
  ffs r4, r1
  sd r4, 16(r9)
  addi r5, r0, 0
  ffs r6, r5
  sd r6, 24(r9)
  switch
";
        let mut env2 = FlatEnv::new(64);
        exec_src(src2, &mut env2);
        assert_eq!(env2.peek64(0), 0x23);
        assert_eq!(env2.peek64(8), 0x1f34); // bits 8..12 set to 0xf
        assert_eq!(env2.peek64(16), 2); // lowest set bit of 0x1f34
        assert_eq!(env2.peek64(24), 64);
        let _ = (p, &mut env); // silence unused in first half
    }

    #[test]
    fn field_immediates() {
        let src = "h:
  li r1, 0xabcd
  andfi r2, r1, 4, 8
  andcfi r3, r1, 4, 8
  orfi r4, r0, 2, 3
  addi r9, r0, 0
  sd r2, 0(r9)
  sd r3, 8(r9)
  sd r4, 16(r9)
  switch
";
        let mut env = FlatEnv::new(64);
        exec_src(src, &mut env);
        assert_eq!(env.peek64(0), 0xabcd & 0xff0);
        assert_eq!(env.peek64(8), 0xabcd & !0xff0u64);
        assert_eq!(env.peek64(16), 0b11100);
    }

    #[test]
    fn branch_on_bit() {
        let src = "h:
  li r1, 0b1000
  addi r2, r0, 1
  bbs r1, 3, set
  addi r2, r0, 99
set:
  bbc r1, 0, clear
  addi r2, r0, 98
clear:
  addi r9, r0, 0
  sd r2, 0(r9)
  switch
";
        let mut env = FlatEnv::new(16);
        exec_src(src, &mut env);
        assert_eq!(env.peek64(0), 1);
    }

    #[test]
    fn send_and_memop_effects_in_order() {
        let src = "h:
  addi r1, r0, 5    ; type
  addi r2, r0, 3    ; dest
  li r3, 0x1000     ; addr
  addi r4, r0, 0
  memrd r3
  sendnd r1, r2, r3, r4
  switch
";
        let mut env = FlatEnv::new(0);
        let r = exec_src(src, &mut env);
        assert_eq!(r.effects.len(), 2);
        match r.effects[0].kind {
            EffectKind::MemOp { kind, addr } => {
                assert_eq!(kind, MemOpKind::ReadLine);
                assert_eq!(addr, 0x1000);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        match r.effects[1].kind {
            EffectKind::Send(m) => {
                assert_eq!(m.mtype, 5);
                assert_eq!(m.dest, 3);
                assert_eq!(m.addr, 0x1000);
                assert!(m.with_data);
                assert_eq!(m.target, SendTarget::Network);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert!(r.effects[0].offset <= r.effects[1].offset);
    }

    #[test]
    fn msg_fields_visible() {
        let src = "h:\n  mfmsg r1, 2\n  addi r9, r0, 0\n  sd r1, 0(r9)\n  switch\n";
        let mut env = FlatEnv::new(16);
        env.fields[2] = 0xdead;
        exec_src(src, &mut env);
        assert_eq!(env.peek64(0), 0xdead);
    }

    #[test]
    fn runaway_detection() {
        let m = assemble("h:\n  j h\n").unwrap();
        let p = schedule(&m, SchedOptions::default());
        let mut env = FlatEnv::new(0);
        assert_eq!(
            run(&p, 0, &mut env, 100).unwrap_err(),
            EmuError::RanAway { budget: 100 }
        );
    }

    #[test]
    fn unaligned_access_rejected() {
        let m = assemble("h:\n  addi r1, r0, 3\n  ld r2, 0(r1)\n  switch\n").unwrap();
        let p = schedule(&m, SchedOptions::default());
        let mut env = FlatEnv::new(64);
        assert_eq!(
            run(&p, 0, &mut env, 100).unwrap_err(),
            EmuError::Unaligned { addr: 3 }
        );
    }

    #[test]
    fn word_accesses() {
        let src = "h:\n  li r1, 0x11223344\n  addi r9, r0, 0\n  sw r1, 4(r9)\n  lw r2, 4(r9)\n  sd r2, 8(r9)\n  switch\n";
        let mut env = FlatEnv::new(32);
        exec_src(src, &mut env);
        assert_eq!(env.peek64(8), 0x11223344);
    }

    #[test]
    fn stats_counting() {
        let src = "h:\n  addi r1, r0, 1\n  bfext r2, r1, 0, 1\n  ld r3, 0(r0)\n  switch\n";
        let mut env = FlatEnv::new(16);
        let r = exec_src(src, &mut env);
        assert_eq!(r.stats.instrs, 4);
        assert_eq!(r.stats.special, 1);
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.invocations, 1);
        assert!(r.stats.dual_issue_efficiency() > 1.0);
        assert!(r.stats.special_fraction() > 0.0);
    }

    #[test]
    fn single_issue_costs_more_cycles() {
        let src = "h:\n  addi r1, r0, 1\n  addi r2, r0, 2\n  addi r3, r0, 3\n  addi r4, r0, 4\n  switch\n";
        let m = assemble(src).unwrap();
        let dual = schedule(&m, SchedOptions::default());
        let single = schedule(&m, SchedOptions::single_issue());
        let mut env = FlatEnv::new(0);
        let rd = run(&dual, 0, &mut env, 100).unwrap();
        let rs = run(&single, 0, &mut env, 100).unwrap();
        assert!(rs.exec_cycles == 0 || rd.exec_cycles < rs.exec_cycles || rd.exec_cycles <= 3);
        assert_eq!(rs.exec_cycles, 5);
        assert_eq!(rd.exec_cycles, 3); // (1,2)(3,4)(switch,nop)
    }
}
