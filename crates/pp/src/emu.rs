//! The PP instruction-set emulator (the PPsim role).
//!
//! "PPsim, the instruction set emulator for the PP, executes the handlers
//! and reports accurate instruction usage statistics and dynamic cycle
//! counts" (paper §3.3). [`run`] executes one handler from its entry point
//! to its `switch` instruction against an [`Env`] that supplies message
//! header fields and protocol memory, and returns the handler's dynamic
//! cycle count, its instruction statistics, and a timeline of *effects*
//! (message sends, memory operations, MAGIC data cache misses) with their
//! cycle offsets. The machine model replays that timeline on the event
//! queue, inserting stalls for contended resources.

use crate::isa::{
    field_mask, AluOp, FieldOp, Instr, MemOpKind, MemSize, Reg, SendTarget, NUM_REGS,
};
use crate::prog::Program;
use std::error::Error;
use std::fmt;

/// An outgoing message composed by a `send` instruction, in raw register
/// form. The protocol crate gives meaning to `mtype` and `aux`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutMsg {
    /// Where the message goes (local processor or network).
    pub target: SendTarget,
    /// Whether a data buffer travels with the header.
    pub with_data: bool,
    /// Raw message type.
    pub mtype: u64,
    /// Destination node (network sends only).
    pub dest: u64,
    /// Address carried in the header.
    pub addr: u64,
    /// Auxiliary header field (ack counts, forwarding info, ...).
    pub aux: u64,
}

/// A MAGIC data cache miss reported by the environment on a PP load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdcMiss {
    /// Protocol-memory line that must be fetched.
    pub line: u64,
    /// Whether the access was a store.
    pub write: bool,
    /// Dirty victim line that must be written back first, if any.
    pub victim_writeback: Option<u64>,
}

/// One externally visible action of a handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// An outgoing message.
    Send(OutMsg),
    /// A memory operation on a 128-byte data line.
    MemOp {
        /// Read into or write from a data buffer.
        kind: MemOpKind,
        /// Byte address of the line.
        addr: u64,
    },
    /// A MAGIC data cache miss (stalls the PP; occupies the memory system).
    Mdc(MdcMiss),
}

/// An effect annotated with the execution-cycle offset (from handler start)
/// at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEffect {
    /// Pairs completed before this effect issued.
    pub offset: u64,
    /// The action itself.
    pub kind: EffectKind,
}

/// Dynamic instruction statistics for one or more handler runs
/// (the raw material for paper Table 5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Dual-issue pairs executed (equals execution cycles).
    pub pairs: u64,
    /// Non-NOP instructions executed.
    pub instrs: u64,
    /// Special (MAGIC-extension) instructions executed.
    pub special: u64,
    /// ALU + branch instructions executed (denominator for special use).
    pub alu_branch: u64,
    /// PP loads executed.
    pub loads: u64,
    /// PP stores executed.
    pub stores: u64,
    /// MDC misses reported by the environment.
    pub mdc_misses: u64,
    /// Handler invocations accumulated.
    pub invocations: u64,
}

impl RunStats {
    /// Accumulates another run's statistics.
    pub fn merge(&mut self, other: &RunStats) {
        self.pairs += other.pairs;
        self.instrs += other.instrs;
        self.special += other.special;
        self.alu_branch += other.alu_branch;
        self.loads += other.loads;
        self.stores += other.stores;
        self.mdc_misses += other.mdc_misses;
        self.invocations += other.invocations;
    }

    /// Dynamic dual-issue efficiency: non-NOP instructions per pair
    /// (2.0 would be perfect; the paper reports 1.43–1.54).
    pub fn dual_issue_efficiency(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.instrs as f64 / self.pairs as f64
        }
    }

    /// Dynamic fraction of ALU and branch instructions that are special.
    pub fn special_fraction(&self) -> f64 {
        if self.alu_branch == 0 {
            0.0
        } else {
            self.special as f64 / self.alu_branch as f64
        }
    }

    /// Mean instruction pairs per handler invocation.
    pub fn pairs_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.pairs as f64 / self.invocations as f64
        }
    }
}

/// The result of emulating one handler.
#[derive(Debug, Clone, Default)]
pub struct HandlerRun {
    /// Externally visible actions, in issue order with cycle offsets.
    pub effects: Vec<TimedEffect>,
    /// Pure execution cycles (pairs executed); resource stalls are added by
    /// the machine model when replaying `effects`.
    pub exec_cycles: u64,
    /// Instruction statistics for this run.
    pub stats: RunStats,
}

/// A PP register file (`r0`–`r31`, 64 bits each). `r0` is hardwired to
/// zero: writes to it through [`Regs::set`] are discarded. One register
/// file can be reused across handler invocations — [`run_into`] resets it
/// on entry — so the hot path never reallocates.
#[derive(Debug, Clone)]
pub struct Regs([u64; NUM_REGS]);

impl Regs {
    /// A fresh, zeroed register file.
    pub fn new() -> Self {
        Regs([0; NUM_REGS])
    }

    /// Reads a register.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.0[r.index()]
    }

    /// Writes a register. Writes to `r0` are discarded.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        if r != Reg::ZERO {
            self.0[r.index()] = v;
        }
    }

    /// Zeroes every register (the handler entry state).
    #[inline]
    pub fn reset(&mut self) {
        self.0 = [0; NUM_REGS];
    }

    /// Reads by raw index (the translator pre-validates indices).
    #[inline]
    pub(crate) fn get_i(&self, i: u8) -> u64 {
        self.0[i as usize]
    }

    /// Writes by raw index; index 0 is the hardwired zero register.
    #[inline]
    pub(crate) fn set_i(&mut self, i: u8, v: u64) {
        if i != 0 {
            self.0[i as usize] = v;
        }
    }
}

impl Default for Regs {
    fn default() -> Self {
        Self::new()
    }
}

/// A reusable buffer for the effect timeline of a handler run. Clearing
/// and reusing one sink across invocations keeps the hot path
/// allocation-free once the buffer reaches steady-state capacity.
#[derive(Debug, Clone, Default)]
pub struct EffectSink {
    effects: Vec<TimedEffect>,
    mdc_misses: u64,
}

impl EffectSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards buffered effects; capacity is retained.
    pub fn clear(&mut self) {
        self.effects.clear();
        self.mdc_misses = 0;
    }

    /// Appends an effect, counting MDC misses as they stream in.
    #[inline]
    pub fn push(&mut self, e: TimedEffect) {
        if matches!(e.kind, EffectKind::Mdc(_)) {
            self.mdc_misses += 1;
        }
        self.effects.push(e);
    }

    /// The buffered effects, in issue order.
    pub fn effects(&self) -> &[TimedEffect] {
        &self.effects
    }

    /// Number of buffered effects.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// Whether the sink holds no effects.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }

    /// MDC misses among the buffered effects.
    pub fn mdc_misses(&self) -> u64 {
        self.mdc_misses
    }

    /// Adds `base` to the offset of every effect from index `from` on.
    /// The translator's blocks record block-relative offsets and rebase
    /// them to handler-relative offsets after each block completes.
    pub(crate) fn rebase(&mut self, from: usize, base: u64) {
        for e in &mut self.effects[from..] {
            e.offset += base;
        }
    }

    /// Consumes the sink, yielding the owned effect vector.
    pub fn into_effects(self) -> Vec<TimedEffect> {
        self.effects
    }
}

/// The environment a handler executes against: message header fields and
/// protocol memory (directory headers, pointer store), with MDC modelling.
pub trait Env {
    /// Loads `size` bytes at `addr` from protocol memory. Also reports an
    /// MDC miss if the access missed.
    fn load(&mut self, addr: u64, size: MemSize) -> (u64, Option<MdcMiss>);

    /// Stores `size` bytes at `addr` to protocol memory, reporting an MDC
    /// miss if the access missed.
    fn store(&mut self, addr: u64, val: u64, size: MemSize) -> Option<MdcMiss>;

    /// Reads a field of the message header being processed.
    fn msg_field(&mut self, field: u8) -> u64;
}

/// An emulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The handler executed more than the configured pair budget without
    /// reaching `switch` — almost certainly an infinite loop.
    RanAway {
        /// The pair budget that was exhausted.
        budget: u64,
    },
    /// Control transferred outside the program.
    BadPc {
        /// The offending pair index.
        pc: usize,
    },
    /// A load or store used an address not aligned to its size.
    Unaligned {
        /// The offending byte address.
        addr: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::RanAway { budget } => {
                write!(f, "handler exceeded {budget} pairs without switch")
            }
            EmuError::BadPc { pc } => write!(f, "control transfer to invalid pc {pc}"),
            EmuError::Unaligned { addr } => {
                write!(f, "unaligned protocol memory access at {addr:#x}")
            }
        }
    }
}

impl Error for EmuError {}

/// Default pair budget for [`run`]; generous compared to real handlers
/// (tens of pairs, hundreds when walking long sharer lists).
pub const DEFAULT_PAIR_BUDGET: u64 = 1_000_000;

enum Ctl {
    Jump(usize),
    Switch,
}

/// Executes the handler at pair index `entry` until its `switch`.
///
/// # Errors
///
/// Returns an [`EmuError`] on runaway execution, a control transfer outside
/// the program, or an unaligned memory access.
///
/// # Examples
///
/// ```
/// use flash_pp::{asm, sched, emu};
///
/// let module = asm::assemble("h:\n  addi r1, r0, 2\n  addi r2, r0, 3\n  switch\n")?;
/// let prog = sched::schedule(&module, sched::SchedOptions::default());
/// let mut env = emu::FlatEnv::new(256);
/// let run = emu::run(&prog, prog.entry("h").unwrap(), &mut env, emu::DEFAULT_PAIR_BUDGET)?;
/// assert_eq!(run.exec_cycles, 2); // (addi,addi) + (switch,nop)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(
    program: &Program,
    entry: usize,
    env: &mut impl Env,
    pair_budget: u64,
) -> Result<HandlerRun, EmuError> {
    let mut regs = Regs::new();
    let mut sink = EffectSink::new();
    let (exec_cycles, stats) = run_into(program, entry, env, pair_budget, &mut regs, &mut sink)?;
    Ok(HandlerRun {
        effects: sink.into_effects(),
        exec_cycles,
        stats,
    })
}

/// Non-allocating core of [`run`]: executes into caller-provided scratch
/// state. `regs` is reset and `sink` cleared on entry; on success the
/// effect timeline is left in `sink` and the pure execution cycle count
/// plus the run's statistics are returned. On error the sink's contents
/// are unspecified.
///
/// # Errors
///
/// As [`run`].
pub fn run_into(
    program: &Program,
    entry: usize,
    env: &mut (impl Env + ?Sized),
    pair_budget: u64,
    regs: &mut Regs,
    sink: &mut EffectSink,
) -> Result<(u64, RunStats), EmuError> {
    regs.reset();
    sink.clear();
    let mut stats = RunStats {
        invocations: 1,
        ..RunStats::default()
    };
    resume(program, entry, env, pair_budget, regs, sink, &mut stats).map(|cycles| (cycles, stats))
}

/// The per-pair interpreter loop, resumable mid-run: continues at `pc`
/// with live register, effect, and statistics state. `stats.pairs` counts
/// against `pair_budget`, so a resumed run sees the same budget horizon as
/// an uninterrupted one. The translator drops back into this loop when a
/// basic block might cross the budget, reproducing the emulator's exact
/// per-pair error ordering.
pub(crate) fn resume(
    program: &Program,
    mut pc: usize,
    env: &mut (impl Env + ?Sized),
    pair_budget: u64,
    regs: &mut Regs,
    sink: &mut EffectSink,
    stats: &mut RunStats,
) -> Result<u64, EmuError> {
    loop {
        if stats.pairs >= pair_budget {
            return Err(EmuError::RanAway {
                budget: pair_budget,
            });
        }
        let pair = *program.pairs.get(pc).ok_or(EmuError::BadPc { pc })?;
        let offset = stats.pairs;
        stats.pairs += 1;
        // Pre-decoded at schedule time: both slots of a pair always
        // execute (control applies after the pair), so per-pair counts
        // are exact and the hot loop skips three per-instruction
        // classification matches.
        let meta = program.pair_meta(pc);
        stats.instrs += meta.instrs as u64;
        stats.special += meta.special as u64;
        stats.alu_branch += meta.alu_branch as u64;

        let mut ctl = None;
        for instr in [pair.a, pair.b] {
            if instr == Instr::Nop {
                continue;
            }
            if let Some(c) = exec(instr, regs, env, program, offset, stats, sink)? {
                ctl = Some(c);
            }
        }
        match ctl {
            Some(Ctl::Switch) => {
                stats.mdc_misses = sink.mdc_misses();
                return Ok(stats.pairs);
            }
            Some(Ctl::Jump(target)) => pc = target,
            None => pc += 1,
        }
    }
}

fn exec(
    instr: Instr,
    regs: &mut Regs,
    env: &mut (impl Env + ?Sized),
    program: &Program,
    offset: u64,
    stats: &mut RunStats,
    sink: &mut EffectSink,
) -> Result<Option<Ctl>, EmuError> {
    match instr {
        Instr::Nop => {}
        Instr::Alu { op, rd, rs, rt } => {
            let v = op.apply(regs.get(rs), regs.get(rt));
            regs.set(rd, v);
        }
        Instr::AluImm { op, rd, rs, imm } => {
            // Logical immediates zero-extend; arithmetic immediates
            // sign-extend (DLX convention).
            let b = match op {
                AluOp::And | AluOp::Or | AluOp::Xor => imm as u16 as u64,
                _ => imm as i64 as u64,
            };
            let v = op.apply(regs.get(rs), b);
            regs.set(rd, v);
        }
        Instr::Lui { rd, imm } => regs.set(rd, (imm as u64) << 16),
        Instr::FieldImm {
            op,
            rd,
            rs,
            pos,
            width,
        } => {
            let m = field_mask(pos, width);
            let a = regs.get(rs);
            let v = match op {
                FieldOp::AndMask => a & m,
                FieldOp::AndNotMask => a & !m,
                FieldOp::OrMask => a | m,
                FieldOp::XorMask => a ^ m,
            };
            regs.set(rd, v);
        }
        Instr::BfExt { rd, rs, pos, width } => {
            let v = (regs.get(rs) >> pos) & field_mask(0, width);
            regs.set(rd, v);
        }
        Instr::BfIns { rd, rs, pos, width } => {
            let m = field_mask(pos, width);
            let v = (regs.get(rd) & !m) | ((regs.get(rs) << pos) & m);
            regs.set(rd, v);
        }
        Instr::Ffs { rd, rs } => {
            let v = regs.get(rs);
            let pos = if v == 0 {
                64
            } else {
                v.trailing_zeros() as u64
            };
            regs.set(rd, pos);
        }
        Instr::Load { rd, rs, off, size } => {
            stats.loads += 1;
            let addr = regs.get(rs).wrapping_add(off as i64 as u64);
            if !addr.is_multiple_of(size.bytes()) {
                return Err(EmuError::Unaligned { addr });
            }
            let (v, miss) = env.load(addr, size);
            if let Some(m) = miss {
                sink.push(TimedEffect {
                    offset,
                    kind: EffectKind::Mdc(m),
                });
            }
            regs.set(rd, v);
        }
        Instr::Store { rt, rs, off, size } => {
            stats.stores += 1;
            let addr = regs.get(rs).wrapping_add(off as i64 as u64);
            if !addr.is_multiple_of(size.bytes()) {
                return Err(EmuError::Unaligned { addr });
            }
            if let Some(m) = env.store(addr, regs.get(rt), size) {
                sink.push(TimedEffect {
                    offset,
                    kind: EffectKind::Mdc(m),
                });
            }
        }
        Instr::Branch {
            cond,
            rs,
            rt,
            target,
        } => {
            if cond.taken(regs.get(rs), regs.get(rt)) {
                return Ok(Some(Ctl::Jump(program.label_pc(target))));
            }
        }
        Instr::BranchBit {
            set,
            rs,
            bit,
            target,
        } => {
            let bitval = (regs.get(rs) >> bit) & 1 == 1;
            if bitval == set {
                return Ok(Some(Ctl::Jump(program.label_pc(target))));
            }
        }
        Instr::Jump { target } => return Ok(Some(Ctl::Jump(program.label_pc(target)))),
        Instr::MfMsg { rd, field } => {
            let v = env.msg_field(field);
            regs.set(rd, v);
        }
        Instr::Send {
            target,
            with_data,
            rtype,
            rdest,
            raddr,
            raux,
        } => {
            sink.push(TimedEffect {
                offset,
                kind: EffectKind::Send(OutMsg {
                    target,
                    with_data,
                    mtype: regs.get(rtype),
                    dest: regs.get(rdest),
                    addr: regs.get(raddr),
                    aux: regs.get(raux),
                }),
            });
        }
        Instr::MemOp { kind, raddr } => {
            sink.push(TimedEffect {
                offset,
                kind: EffectKind::MemOp {
                    kind,
                    addr: regs.get(raddr),
                },
            });
        }
        Instr::Switch => return Ok(Some(Ctl::Switch)),
    }
    Ok(None)
}

/// A simple [`Env`] over a flat byte array with no MDC (every access hits):
/// the workhorse for unit tests and for measuring pure handler occupancies.
#[derive(Debug, Clone)]
pub struct FlatEnv {
    mem: Vec<u8>,
    /// Message header fields returned by `mfmsg`.
    pub fields: [u64; 16],
}

impl FlatEnv {
    /// Creates an environment with `bytes` of zeroed protocol memory.
    pub fn new(bytes: usize) -> Self {
        FlatEnv {
            mem: vec![0; bytes],
            fields: [0; 16],
        }
    }

    /// Reads back a 64-bit value (for assertions).
    ///
    /// # Panics
    ///
    /// Panics if `addr + 8` exceeds the memory size.
    pub fn peek64(&self, addr: u64) -> u64 {
        let a = addr as usize;
        u64::from_le_bytes(self.mem[a..a + 8].try_into().expect("in range"))
    }

    /// Writes a 64-bit value (for test setup).
    ///
    /// # Panics
    ///
    /// Panics if `addr + 8` exceeds the memory size.
    pub fn poke64(&mut self, addr: u64, val: u64) {
        let a = addr as usize;
        self.mem[a..a + 8].copy_from_slice(&val.to_le_bytes());
    }
}

impl Env for FlatEnv {
    fn load(&mut self, addr: u64, size: MemSize) -> (u64, Option<MdcMiss>) {
        let a = addr as usize;
        let v = match size {
            MemSize::Double => u64::from_le_bytes(self.mem[a..a + 8].try_into().expect("in range")),
            MemSize::Word => {
                u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("in range")) as u64
            }
        };
        (v, None)
    }

    fn store(&mut self, addr: u64, val: u64, size: MemSize) -> Option<MdcMiss> {
        let a = addr as usize;
        match size {
            MemSize::Double => self.mem[a..a + 8].copy_from_slice(&val.to_le_bytes()),
            MemSize::Word => self.mem[a..a + 4].copy_from_slice(&(val as u32).to_le_bytes()),
        }
        None
    }

    fn msg_field(&mut self, field: u8) -> u64 {
        self.fields[field as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::sched::{schedule, SchedOptions};

    fn exec_src(src: &str, env: &mut FlatEnv) -> HandlerRun {
        let m = assemble(src).unwrap();
        let p = schedule(&m, SchedOptions::default());
        run(&p, 0, env, DEFAULT_PAIR_BUDGET).unwrap()
    }

    #[test]
    fn arithmetic_and_store() {
        let mut env = FlatEnv::new(64);
        let r = exec_src(
            "h:\n  addi r1, r0, 6\n  addi r2, r0, 7\n  add r3, r1, r2\n  addi r4, r0, 8\n  sd r3, 0(r4)\n  switch\n",
            &mut env,
        );
        assert_eq!(env.peek64(8), 13);
        assert_eq!(r.stats.stores, 1);
        assert!(r.effects.is_empty());
    }

    #[test]
    fn loop_with_branch() {
        // Sum 1..=5 by looping.
        let src = "h:
  addi r1, r0, 5
  addi r2, r0, 0
loop:
  add r2, r2, r1
  addi r1, r1, -1
  bgtz r1, loop
  addi r3, r0, 16
  sd r2, 0(r3)
  switch
";
        let mut env = FlatEnv::new(64);
        exec_src(src, &mut env);
        assert_eq!(env.peek64(16), 15);
    }

    #[test]
    fn bitfield_instructions() {
        let src = "h:
  li r1, 0x1234
  bfext r2, r1, 4, 8      ; (0x1234 >> 4) & 0xff = 0x23
  li r3, 0xff
  bfins r1, r3, 8, 4      ; insert 0xf at bits 8..12
  ffs r4, r1
  addi r5, r0, 0
  ffs r6, r5              ; ffs(0) = 64
  switch
";
        let mut env = FlatEnv::new(0);
        let m = assemble(src).unwrap();
        let p = schedule(&m, SchedOptions::default());
        // Verify by re-running and storing results via a tweaked source
        // instead: simpler to check register effects through memory.
        let src2 = "h:
  li r1, 0x1234
  bfext r2, r1, 4, 8
  addi r9, r0, 0
  sd r2, 0(r9)
  li r3, 0xff
  bfins r1, r3, 8, 4
  sd r1, 8(r9)
  ffs r4, r1
  sd r4, 16(r9)
  addi r5, r0, 0
  ffs r6, r5
  sd r6, 24(r9)
  switch
";
        let mut env2 = FlatEnv::new(64);
        exec_src(src2, &mut env2);
        assert_eq!(env2.peek64(0), 0x23);
        assert_eq!(env2.peek64(8), 0x1f34); // bits 8..12 set to 0xf
        assert_eq!(env2.peek64(16), 2); // lowest set bit of 0x1f34
        assert_eq!(env2.peek64(24), 64);
        let _ = (p, &mut env); // silence unused in first half
    }

    #[test]
    fn field_immediates() {
        let src = "h:
  li r1, 0xabcd
  andfi r2, r1, 4, 8
  andcfi r3, r1, 4, 8
  orfi r4, r0, 2, 3
  addi r9, r0, 0
  sd r2, 0(r9)
  sd r3, 8(r9)
  sd r4, 16(r9)
  switch
";
        let mut env = FlatEnv::new(64);
        exec_src(src, &mut env);
        assert_eq!(env.peek64(0), 0xabcd & 0xff0);
        assert_eq!(env.peek64(8), 0xabcd & !0xff0u64);
        assert_eq!(env.peek64(16), 0b11100);
    }

    #[test]
    fn branch_on_bit() {
        let src = "h:
  li r1, 0b1000
  addi r2, r0, 1
  bbs r1, 3, set
  addi r2, r0, 99
set:
  bbc r1, 0, clear
  addi r2, r0, 98
clear:
  addi r9, r0, 0
  sd r2, 0(r9)
  switch
";
        let mut env = FlatEnv::new(16);
        exec_src(src, &mut env);
        assert_eq!(env.peek64(0), 1);
    }

    #[test]
    fn send_and_memop_effects_in_order() {
        let src = "h:
  addi r1, r0, 5    ; type
  addi r2, r0, 3    ; dest
  li r3, 0x1000     ; addr
  addi r4, r0, 0
  memrd r3
  sendnd r1, r2, r3, r4
  switch
";
        let mut env = FlatEnv::new(0);
        let r = exec_src(src, &mut env);
        assert_eq!(r.effects.len(), 2);
        match r.effects[0].kind {
            EffectKind::MemOp { kind, addr } => {
                assert_eq!(kind, MemOpKind::ReadLine);
                assert_eq!(addr, 0x1000);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        match r.effects[1].kind {
            EffectKind::Send(m) => {
                assert_eq!(m.mtype, 5);
                assert_eq!(m.dest, 3);
                assert_eq!(m.addr, 0x1000);
                assert!(m.with_data);
                assert_eq!(m.target, SendTarget::Network);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert!(r.effects[0].offset <= r.effects[1].offset);
    }

    #[test]
    fn msg_fields_visible() {
        let src = "h:\n  mfmsg r1, 2\n  addi r9, r0, 0\n  sd r1, 0(r9)\n  switch\n";
        let mut env = FlatEnv::new(16);
        env.fields[2] = 0xdead;
        exec_src(src, &mut env);
        assert_eq!(env.peek64(0), 0xdead);
    }

    #[test]
    fn runaway_detection() {
        let m = assemble("h:\n  j h\n").unwrap();
        let p = schedule(&m, SchedOptions::default());
        let mut env = FlatEnv::new(0);
        assert_eq!(
            run(&p, 0, &mut env, 100).unwrap_err(),
            EmuError::RanAway { budget: 100 }
        );
    }

    #[test]
    fn unaligned_access_rejected() {
        let m = assemble("h:\n  addi r1, r0, 3\n  ld r2, 0(r1)\n  switch\n").unwrap();
        let p = schedule(&m, SchedOptions::default());
        let mut env = FlatEnv::new(64);
        assert_eq!(
            run(&p, 0, &mut env, 100).unwrap_err(),
            EmuError::Unaligned { addr: 3 }
        );
    }

    #[test]
    fn word_accesses() {
        let src = "h:\n  li r1, 0x11223344\n  addi r9, r0, 0\n  sw r1, 4(r9)\n  lw r2, 4(r9)\n  sd r2, 8(r9)\n  switch\n";
        let mut env = FlatEnv::new(32);
        exec_src(src, &mut env);
        assert_eq!(env.peek64(8), 0x11223344);
    }

    #[test]
    fn stats_counting() {
        let src = "h:\n  addi r1, r0, 1\n  bfext r2, r1, 0, 1\n  ld r3, 0(r0)\n  switch\n";
        let mut env = FlatEnv::new(16);
        let r = exec_src(src, &mut env);
        assert_eq!(r.stats.instrs, 4);
        assert_eq!(r.stats.special, 1);
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.invocations, 1);
        assert!(r.stats.dual_issue_efficiency() > 1.0);
        assert!(r.stats.special_fraction() > 0.0);
    }

    #[test]
    fn single_issue_costs_more_cycles() {
        let src = "h:\n  addi r1, r0, 1\n  addi r2, r0, 2\n  addi r3, r0, 3\n  addi r4, r0, 4\n  switch\n";
        let m = assemble(src).unwrap();
        let dual = schedule(&m, SchedOptions::default());
        let single = schedule(&m, SchedOptions::single_issue());
        let mut env = FlatEnv::new(0);
        let rd = run(&dual, 0, &mut env, 100).unwrap();
        let rs = run(&single, 0, &mut env, 100).unwrap();
        assert!(rs.exec_cycles == 0 || rd.exec_cycles < rs.exec_cycles || rd.exec_cycles <= 3);
        assert_eq!(rs.exec_cycles, 5);
        assert_eq!(rd.exec_cycles, 3); // (1,2)(3,4)(switch,nop)
    }
}
