//! The protocol processor instruction set.
//!
//! The PP is "a general purpose microprocessor core" whose "instruction
//! set, based on DLX, has been extended to include bitfield insert/extract
//! and branch on bit set/clear instructions" (paper §2). Per §5.3 the
//! special instructions fall into four categories: find first set bit,
//! branch on bit set/clear, ALU field immediates (an immediate operand that
//! is a string of consecutive ones or zeros), and field insertion.
//!
//! Registers are 64 bits wide (directory headers are 8 bytes). `r0` is
//! hardwired to zero; `r29`/`r30` are reserved as assembler temporaries for
//! the DLX substitution sequences of [`crate::dlx`] and may not be used by
//! handler code.

use std::fmt;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 32;

/// Bytes occupied by one encoded instruction (for static code-size
/// accounting, paper Table 5.2).
pub const INSTR_BYTES: u64 = 4;

/// First assembler-reserved temporary register.
pub const TEMP0: Reg = Reg(29);
/// Second assembler-reserved temporary register.
pub const TEMP1: Reg = Reg(30);

/// A PP register, `r0`–`r31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Index into a register file array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A branch-target label. Labels are allocated by the assembler and
/// resolved to instruction (then pair) indices late, so that program
/// transformations such as DLX substitution can splice code freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Three-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
}

impl AluOp {
    /// Applies the operation to two 64-bit values.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        let sh = (b & 63) as u32;
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(sh),
            AluOp::Srl => a.wrapping_shr(sh),
            AluOp::Sra => (a as i64).wrapping_shr(sh) as u64,
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        }
    }
}

/// Field-immediate flavours (the special "ALU field immediate" class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldOp {
    /// AND with the field mask (keeps the field, e.g. extract-in-place).
    AndMask,
    /// AND with the complement of the field mask (clears the field).
    AndNotMask,
    /// OR with the field mask (sets the field).
    OrMask,
    /// XOR with the field mask (toggles the field).
    XorMask,
}

/// Branch conditions against zero or a second register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrCond {
    /// `rs == rt`
    Eq,
    /// `rs != rt`
    Ne,
    /// `rs < 0` (signed; `rt` ignored)
    Ltz,
    /// `rs >= 0` (signed; `rt` ignored)
    Gez,
    /// `rs <= 0` (signed; `rt` ignored)
    Lez,
    /// `rs > 0` (signed; `rt` ignored)
    Gtz,
}

impl BrCond {
    /// Evaluates the condition.
    pub fn taken(self, rs: u64, rt: u64) -> bool {
        match self {
            BrCond::Eq => rs == rt,
            BrCond::Ne => rs != rt,
            BrCond::Ltz => (rs as i64) < 0,
            BrCond::Gez => (rs as i64) >= 0,
            BrCond::Lez => (rs as i64) <= 0,
            BrCond::Gtz => (rs as i64) > 0,
        }
    }
}

/// Memory access widths for PP loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSize {
    /// 4 bytes.
    Word,
    /// 8 bytes.
    Double,
}

impl MemSize {
    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::Word => 4,
            MemSize::Double => 8,
        }
    }
}

/// Destination of an outgoing message composed by a `send` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTarget {
    /// To the local compute processor through the PI.
    Processor,
    /// To a remote node through the NI (destination node in a register).
    Network,
}

/// Memory operations the PP can initiate on the node's memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOpKind {
    /// Read the 128-byte line into a data buffer (for an outgoing reply).
    ReadLine,
    /// Write the message's data buffer back to the 128-byte line.
    WriteLine,
}

/// One PP instruction.
///
/// The variants marked *special* are the MAGIC ISA extensions evaluated in
/// paper §5.3 / Tables 5.2–5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// No operation (also used as an empty issue slot).
    Nop,
    /// `rd = rs op rt`
    Alu {
        op: AluOp,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// `rd = rs op imm` — the immediate is limited to 16 bits signed, as in
    /// DLX; wider constants require `lui`/`ori` sequences or the special
    /// field-immediate forms.
    AluImm {
        op: AluOp,
        rd: Reg,
        rs: Reg,
        imm: i16,
    },
    /// `rd = imm << 16` (load upper immediate).
    Lui { rd: Reg, imm: u16 },
    /// *Special:* ALU with a field-mask immediate of `width` consecutive
    /// ones starting at bit `pos`.
    FieldImm {
        op: FieldOp,
        rd: Reg,
        rs: Reg,
        pos: u8,
        width: u8,
    },
    /// *Special:* `rd = (rs >> pos) & ones(width)` — bitfield extract.
    BfExt {
        rd: Reg,
        rs: Reg,
        pos: u8,
        width: u8,
    },
    /// *Special:* insert the low `width` bits of `rs` into `rd` at `pos`.
    BfIns {
        rd: Reg,
        rs: Reg,
        pos: u8,
        width: u8,
    },
    /// *Special:* `rd` = index of the lowest set bit of `rs`, or 64 if
    /// `rs == 0`.
    Ffs { rd: Reg, rs: Reg },
    /// `rd = mem[rs + off]`
    Load {
        rd: Reg,
        rs: Reg,
        off: i16,
        size: MemSize,
    },
    /// `mem[rs + off] = rt`
    Store {
        rt: Reg,
        rs: Reg,
        off: i16,
        size: MemSize,
    },
    /// Conditional branch.
    Branch {
        cond: BrCond,
        rs: Reg,
        rt: Reg,
        target: Label,
    },
    /// *Special:* branch if bit `bit` of `rs` is set (`set = true`) or
    /// clear (`set = false`).
    BranchBit {
        set: bool,
        rs: Reg,
        bit: u8,
        target: Label,
    },
    /// Unconditional jump.
    Jump { target: Label },
    /// Read a field of the incoming message header: `rd = msg[field]`.
    MfMsg { rd: Reg, field: u8 },
    /// Compose and issue an outgoing message. `rdest` is only meaningful
    /// for [`SendTarget::Network`].
    Send {
        target: SendTarget,
        with_data: bool,
        rtype: Reg,
        rdest: Reg,
        raddr: Reg,
        raux: Reg,
    },
    /// Initiate a memory operation on the line addressed by `raddr`.
    MemOp { kind: MemOpKind, raddr: Reg },
    /// End of handler: return control to the inbox.
    Switch,
}

impl Instr {
    /// Whether this is one of the MAGIC ISA extensions (Table 5.2's
    /// "special instruction use").
    pub fn is_special(&self) -> bool {
        matches!(
            self,
            Instr::FieldImm { .. }
                | Instr::BfExt { .. }
                | Instr::BfIns { .. }
                | Instr::Ffs { .. }
                | Instr::BranchBit { .. }
        )
    }

    /// Whether this instruction counts in the "ALU and branch" population
    /// used as the denominator for special-instruction use in Table 5.2.
    pub fn is_alu_or_branch(&self) -> bool {
        matches!(
            self,
            Instr::Alu { .. }
                | Instr::AluImm { .. }
                | Instr::Lui { .. }
                | Instr::FieldImm { .. }
                | Instr::BfExt { .. }
                | Instr::BfIns { .. }
                | Instr::Ffs { .. }
                | Instr::Branch { .. }
                | Instr::BranchBit { .. }
                | Instr::Jump { .. }
        )
    }

    /// Whether this instruction may transfer control.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::BranchBit { .. } | Instr::Jump { .. } | Instr::Switch
        )
    }

    /// Destination register written, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::FieldImm { rd, .. }
            | Instr::BfExt { rd, .. }
            | Instr::BfIns { rd, .. }
            | Instr::Ffs { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::MfMsg { rd, .. } => {
                if rd == Reg::ZERO {
                    None
                } else {
                    Some(rd)
                }
            }
            _ => None,
        }
    }

    /// Source registers read.
    pub fn sources(&self) -> ([Option<Reg>; 4], usize) {
        let mut out = [None; 4];
        let mut n = 0;
        let mut push = |r: Reg| {
            out[n] = Some(r);
            n += 1;
        };
        match *self {
            Instr::Alu { rs, rt, .. } => {
                push(rs);
                push(rt);
            }
            Instr::AluImm { rs, .. }
            | Instr::FieldImm { rs, .. }
            | Instr::BfExt { rs, .. }
            | Instr::Ffs { rs, .. }
            | Instr::Load { rs, .. } => push(rs),
            Instr::BfIns { rd, rs, .. } => {
                push(rd);
                push(rs);
            }
            Instr::Store { rt, rs, .. } => {
                push(rt);
                push(rs);
            }
            Instr::Branch { rs, rt, cond, .. } => {
                push(rs);
                if matches!(cond, BrCond::Eq | BrCond::Ne) {
                    push(rt);
                }
            }
            Instr::BranchBit { rs, .. } => push(rs),
            Instr::Send {
                rtype,
                rdest,
                raddr,
                raux,
                target,
                ..
            } => {
                push(rtype);
                if target == SendTarget::Network {
                    push(rdest);
                }
                push(raddr);
                push(raux);
            }
            Instr::MemOp { raddr, .. } => push(raddr),
            _ => {}
        }
        (out, n)
    }
}

/// A contiguous mask of `width` ones starting at bit `pos`.
///
/// # Examples
///
/// ```
/// assert_eq!(flash_pp::isa::field_mask(4, 8), 0xff0);
/// assert_eq!(flash_pp::isa::field_mask(0, 64), u64::MAX);
/// ```
#[inline]
pub fn field_mask(pos: u8, width: u8) -> u64 {
    if width == 0 {
        return 0;
    }
    let ones = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    ones << pos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, u64::MAX), 2);
        assert_eq!(AluOp::Sub.apply(3, 5), (-2i64) as u64);
        assert_eq!(AluOp::Sll.apply(1, 63), 1 << 63);
        assert_eq!(AluOp::Sra.apply(u64::MAX, 5), u64::MAX);
        assert_eq!(AluOp::Srl.apply(u64::MAX, 63), 1);
        assert_eq!(AluOp::Slt.apply((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.apply((-1i64) as u64, 0), 0);
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::Eq.taken(5, 5));
        assert!(!BrCond::Eq.taken(5, 6));
        assert!(BrCond::Ltz.taken((-3i64) as u64, 0));
        assert!(BrCond::Gez.taken(0, 0));
        assert!(BrCond::Lez.taken(0, 99));
        assert!(BrCond::Gtz.taken(1, 0));
    }

    #[test]
    fn field_mask_edges() {
        assert_eq!(field_mask(0, 1), 1);
        assert_eq!(field_mask(63, 1), 1 << 63);
        assert_eq!(field_mask(8, 0), 0);
        assert_eq!(field_mask(32, 32), 0xffff_ffff_0000_0000);
    }

    #[test]
    fn special_classification() {
        let special = Instr::BfExt {
            rd: Reg(1),
            rs: Reg(2),
            pos: 0,
            width: 4,
        };
        assert!(special.is_special());
        assert!(special.is_alu_or_branch());
        let plain = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs: Reg(2),
            imm: 1,
        };
        assert!(!plain.is_special());
        assert!(plain.is_alu_or_branch());
        assert!(!Instr::Switch.is_alu_or_branch());
    }

    #[test]
    fn dest_and_sources() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs: Reg(4),
            rt: Reg(5),
        };
        assert_eq!(i.dest(), Some(Reg(3)));
        let (srcs, n) = i.sources();
        assert_eq!(n, 2);
        assert_eq!(srcs[0], Some(Reg(4)));
        // Writes to r0 are discarded, so there is no dependence-relevant dest.
        let z = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs: Reg(4),
            imm: 0,
        };
        assert_eq!(z.dest(), None);
        // bfins reads its destination too.
        let b = Instr::BfIns {
            rd: Reg(7),
            rs: Reg(8),
            pos: 4,
            width: 4,
        };
        let (srcs, n) = b.sources();
        assert_eq!(n, 2);
        assert_eq!(srcs[0], Some(Reg(7)));
    }
}
