//! The MAGIC protocol processor (PP) toolchain and emulator.
//!
//! The PP is the programmable core inside MAGIC that runs the
//! cache-coherence protocol *handlers* (paper §2). This crate is the Rust
//! equivalent of the FLASH project's PP software stack:
//!
//! | FLASH tool | This crate |
//! |---|---|
//! | gcc port (handlers in C) | [`asm`] — handlers in PP assembly |
//! | PPtwine (static dual-issue scheduling) | [`sched`] |
//! | PPsim (IS emulator, cycle counts, statistics) | [`emu`] |
//! | "no special instructions" compiler mode (§5.3) | [`dlx`] |
//!
//! The crate is protocol-agnostic: message types, directory layouts and
//! handler code live in `flash-protocol`, which drives this crate.
//!
//! # Examples
//!
//! Assemble, schedule, and run a two-instruction handler:
//!
//! ```
//! use flash_pp::{asm, sched, emu};
//!
//! let module = asm::assemble("handler:\n  addi r1, r0, 41\n  addi r1, r1, 1\n  switch\n")?;
//! let program = sched::schedule(&module, sched::SchedOptions::magic());
//! let mut env = emu::FlatEnv::new(64);
//! let run = emu::run(&program, program.entry("handler").unwrap(), &mut env,
//!                    emu::DEFAULT_PAIR_BUDGET)?;
//! assert!(run.exec_cycles >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asm;
pub mod dlx;
pub mod emu;
pub mod isa;
pub mod prog;
pub mod sched;
pub mod translate;

pub use asm::{assemble, AsmError};
pub use emu::{run, EffectSink, Env, HandlerRun, OutMsg, Regs, RunStats};
pub use isa::{Instr, MemOpKind, MemSize, Reg, SendTarget};
pub use prog::{Module, Pair, PairMeta, Program};
pub use sched::{schedule, SchedOptions};
pub use translate::{translate_shared, BlockExit, Translated};

/// Code-generation options bundling the §5.3 de-optimization knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodegenOptions {
    /// Keep the MAGIC special instructions (bitfield, branch-on-bit, ffs,
    /// field immediates). `false` applies [`dlx::expand_specials`].
    pub special_instrs: bool,
    /// Schedule for the dual-issue PP. `false` schedules single-issue.
    pub dual_issue: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            special_instrs: true,
            dual_issue: true,
        }
    }
}

impl CodegenOptions {
    /// The production MAGIC configuration.
    pub fn magic() -> Self {
        Self::default()
    }

    /// The paper's §5.3 "standard embedded RISC" configuration: no special
    /// instructions, single issue.
    pub fn deoptimized() -> Self {
        CodegenOptions {
            special_instrs: false,
            dual_issue: false,
        }
    }
}

/// Assembles and schedules `source` under `options` in one step.
///
/// # Errors
///
/// Returns an [`AsmError`] if the source fails to assemble.
///
/// # Examples
///
/// ```
/// let fast = flash_pp::build("h:\n  bfext r1, r2, 4, 8\n  switch\n",
///                            flash_pp::CodegenOptions::magic())?;
/// let slow = flash_pp::build("h:\n  bfext r1, r2, 4, 8\n  switch\n",
///                            flash_pp::CodegenOptions::deoptimized())?;
/// assert!(slow.pairs.len() > fast.pairs.len());
/// # Ok::<(), flash_pp::AsmError>(())
/// ```
pub fn build(source: &str, options: CodegenOptions) -> Result<Program, AsmError> {
    let module = asm::assemble(source)?;
    let module = if options.special_instrs {
        module
    } else {
        dlx::expand_specials(&module)
    };
    let sched_opts = if options.dual_issue {
        SchedOptions::magic()
    } else {
        SchedOptions::single_issue()
    };
    Ok(sched::schedule(&module, sched_opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_pipeline_end_to_end() {
        let src = "h:\n  li r1, 0xff\n  bbs r1, 0, done\n  addi r2, r0, 1\ndone:\n  switch\n";
        let p = build(src, CodegenOptions::magic()).unwrap();
        let mut env = emu::FlatEnv::new(0);
        let r = emu::run(&p, p.entry("h").unwrap(), &mut env, 1000).unwrap();
        assert!(r.exec_cycles > 0);

        let d = build(src, CodegenOptions::deoptimized()).unwrap();
        let rd = emu::run(&d, d.entry("h").unwrap(), &mut env, 1000).unwrap();
        assert!(rd.exec_cycles >= r.exec_cycles);
        assert_eq!(rd.stats.special, 0);
    }
}
