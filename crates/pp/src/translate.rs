//! Pre-translated handler execution (the "compiled" fast path).
//!
//! [`Translated::new`] lowers a scheduled [`Program`] into a chain of
//! basic blocks once, so that handler invocation becomes straight-line
//! step execution plus branch resolution instead of per-pair
//! decode/execute. Every quantity the static dual-issue schedule
//! fixes is baked in at translation time: block pair counts, per-effect
//! cycle offsets, pre-extended immediates, field masks, and the per-block
//! contribution to [`RunStats`]. Only genuinely dynamic values — register
//! contents, environment responses, MDC hits and misses — are computed at
//! run time.
//!
//! # Equivalence obligations
//!
//! [`Translated::run_into`] must be *bit-identical* to [`emu::run_into`]:
//! the same `Result` (including error values), the same [`RunStats`], the
//! same [`TimedEffect`] timeline with the same offsets, and the same
//! sequence of [`Env`] calls. The suite in
//! `crates/pp/tests/translated_vs_emulated.rs` pins this over random
//! programs, budgets, and environments; `flash-protocol`'s differential
//! suite pins it for every real protocol handler. Three mechanisms uphold
//! the obligation:
//!
//! * Blocks end exactly at the emulator's divergence points (labels and
//!   control pairs), and the effect offsets baked into each block equal
//!   the pair index the emulator would report.
//! * A block that might cross the pair budget is never executed natively:
//!   the runner drops back into the emulator's resumable per-pair loop,
//!   so budget exhaustion and mid-block faults keep the emulator's exact
//!   error ordering and environment side effects.
//! * Programs the translator cannot prove canonical (a control
//!   instruction anywhere but the final pair of a block — hand-built
//!   programs only; the scheduler never emits such pairs) fall back to
//!   the emulator wholesale, as do entries into the middle of a block.

use crate::emu::{
    self, EffectKind, EffectSink, EmuError, Env, HandlerRun, OutMsg, Regs, RunStats, TimedEffect,
};
use crate::isa::{AluOp, BrCond, FieldOp, Instr, MemOpKind, MemSize, Reg, SendTarget, NUM_REGS};
use crate::prog::Program;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Where control goes when a translated block finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// Continue at this index into the translated block table.
    Goto(u32),
    /// The handler executed `switch`.
    Switch,
}

/// Sentinel block index meaning "control left the program" — a
/// fall-through off the last pair or a jump past the end. The runner
/// converts it into the emulator's `RanAway`/`BadPc` outcome.
const OFF_END: u32 = u32::MAX;

/// One straight-line micro-operation with everything static pre-resolved:
/// immediates extended, field masks materialized, register numbers
/// validated, and the effect offset (pairs completed before the owning
/// pair) baked in block-relative.
enum Step {
    Alu {
        op: AluOp,
        rd: u8,
        rs: u8,
        rt: u8,
    },
    AluImm {
        op: AluOp,
        rd: u8,
        rs: u8,
        imm: u64,
    },
    Lui {
        rd: u8,
        val: u64,
    },
    Field {
        op: FieldOp,
        rd: u8,
        rs: u8,
        mask: u64,
    },
    BfExt {
        rd: u8,
        rs: u8,
        pos: u8,
        mask: u64,
    },
    BfIns {
        rd: u8,
        rs: u8,
        pos: u8,
        mask: u64,
    },
    Ffs {
        rd: u8,
        rs: u8,
    },
    Load {
        rd: u8,
        rs: u8,
        off: u64,
        size: MemSize,
        offset: u64,
    },
    Store {
        rt: u8,
        rs: u8,
        off: u64,
        size: MemSize,
        offset: u64,
    },
    MfMsg {
        rd: u8,
        field: u8,
    },
    Send {
        target: SendTarget,
        with_data: bool,
        rtype: u8,
        rdest: u8,
        raddr: u8,
        raux: u8,
        offset: u64,
    },
    MemOp {
        kind: MemOpKind,
        raddr: u8,
        offset: u64,
    },
}

/// How a block transfers control, with branch targets pre-resolved to
/// block indices.
#[derive(Clone, Copy)]
enum Term {
    /// Fall through to the next leader.
    Next(u32),
    Jump(u32),
    Branch {
        cond: BrCond,
        rs: u8,
        rt: u8,
        taken: u32,
        next: u32,
    },
    BranchBit {
        set: bool,
        rs: u8,
        bit: u8,
        taken: u32,
        next: u32,
    },
    Switch,
}

struct Block {
    /// The block body, pre-lowered. Executed by [`exec_block`], which is
    /// monomorphized per [`Env`] so environment accesses inline into the
    /// block engine (a boxed per-block closure would force dynamic
    /// dispatch on every load, store, and message-field read).
    steps: Vec<Step>,
    term: Term,
    /// First pair of the block — the emulator re-entry point when the
    /// runner must fall back mid-run.
    start_pc: usize,
    /// Pairs in the block (static: control only ends a block).
    len: u64,
    /// Static [`RunStats`] contribution of executing the block once.
    instrs: u64,
    special: u64,
    alu_branch: u64,
    loads: u64,
    stores: u64,
}

/// A program lowered to native basic-block closures. Build once per
/// [`Program`] (see [`translate_shared`]) and reuse across invocations;
/// execution goes through [`Translated::run_into`].
pub struct Translated {
    program: Arc<Program>,
    blocks: Vec<Block>,
    /// Leader pair index → block index; `OFF_END` for non-leaders.
    block_of_pair: Vec<u32>,
    full: bool,
}

impl std::fmt::Debug for Translated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Translated")
            .field("pairs", &self.program.pairs.len())
            .field("blocks", &self.blocks.len())
            .field("full", &self.full)
            .finish()
    }
}

impl Translated {
    /// Lowers `program` into basic-block closures.
    pub fn new(program: Arc<Program>) -> Self {
        let len = program.pairs.len();
        // Leaders: pair 0, entry symbols, label targets, and the pair
        // after any control pair — the only places the emulator's pc can
        // arrive other than by falling through straight-line code.
        let mut is_leader = vec![false; len];
        if len > 0 {
            is_leader[0] = true;
        }
        for &pc in program.symbols.values() {
            if pc < len {
                is_leader[pc] = true;
            }
        }
        for &pc in &program.label_pc {
            if pc < len {
                is_leader[pc] = true;
            }
        }
        for (i, p) in program.pairs.iter().enumerate() {
            if (p.a.is_control() || p.b.is_control()) && i + 1 < len {
                is_leader[i + 1] = true;
            }
        }
        let leaders: Vec<usize> = (0..len).filter(|&i| is_leader[i]).collect();
        let mut block_of_pair = vec![OFF_END; len];
        for (bi, &pc) in leaders.iter().enumerate() {
            block_of_pair[pc] = bi as u32;
        }
        let mut blocks = Vec::with_capacity(leaders.len());
        let mut full = true;
        for (bi, &start) in leaders.iter().enumerate() {
            let end = leaders.get(bi + 1).copied().unwrap_or(len);
            match lower_block(&program, start, end, &block_of_pair) {
                Some(b) => blocks.push(b),
                None => {
                    full = false;
                    break;
                }
            }
        }
        if !full {
            blocks.clear();
        }
        Translated {
            program,
            blocks,
            block_of_pair,
            full,
        }
    }

    /// The program this translation was lowered from.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Whether every basic block was lowered to the native fast path.
    /// Scheduled programs always are; hand-built programs with control
    /// instructions away from the end of a pair run on the emulator.
    pub fn fully_translated(&self) -> bool {
        self.full
    }

    /// Number of lowered basic blocks (0 when not fully translated).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Executes the handler entered at pair index `entry`, bit-identical
    /// to [`emu::run_into`]: same result, statistics, effect timeline,
    /// and environment call sequence. `regs`/`sink` are reset on entry;
    /// on error the sink's contents are unspecified.
    ///
    /// # Errors
    ///
    /// As [`emu::run`].
    pub fn run_into(
        &self,
        entry: usize,
        env: &mut (impl Env + ?Sized),
        pair_budget: u64,
        regs: &mut Regs,
        sink: &mut EffectSink,
    ) -> Result<(u64, RunStats), EmuError> {
        let fast_entry = if self.full {
            self.block_of_pair
                .get(entry)
                .copied()
                .filter(|&b| b != OFF_END)
        } else {
            None
        };
        // Mid-block entries, past-end entries, and untranslatable
        // programs run on the reference emulator wholesale.
        let Some(b0) = fast_entry else {
            return emu::run_into(&self.program, entry, env, pair_budget, regs, sink);
        };
        regs.reset();
        sink.clear();
        let mut stats = RunStats {
            invocations: 1,
            ..RunStats::default()
        };
        let mut base = 0u64; // pairs completed before the current block
        let mut bi = b0;
        loop {
            let blk = &self.blocks[bi as usize];
            if base + blk.len > pair_budget {
                // The budget expires inside this block: replay its pairs
                // on the emulator loop so that a fault the emulator would
                // hit *before* the budget check keeps winning, and the
                // environment sees exactly the emulator's call sequence.
                stats.pairs = base;
                return emu::resume(
                    &self.program,
                    blk.start_pc,
                    env,
                    pair_budget,
                    regs,
                    sink,
                    &mut stats,
                )
                .map(|cycles| (cycles, stats));
            }
            let before = sink.len();
            let exit = exec_block(&blk.steps, blk.term, regs, env, sink)?;
            sink.rebase(before, base);
            base += blk.len;
            stats.instrs += blk.instrs;
            stats.special += blk.special;
            stats.alu_branch += blk.alu_branch;
            stats.loads += blk.loads;
            stats.stores += blk.stores;
            match exit {
                BlockExit::Switch => {
                    stats.pairs = base;
                    stats.mdc_misses = sink.mdc_misses();
                    return Ok((base, stats));
                }
                BlockExit::Goto(OFF_END) => {
                    // Control left the program. The emulator checks the
                    // budget before the failing fetch, so budget
                    // exhaustion at this exact point still wins.
                    return Err(if base >= pair_budget {
                        EmuError::RanAway {
                            budget: pair_budget,
                        }
                    } else {
                        EmuError::BadPc {
                            pc: self.program.pairs.len(),
                        }
                    });
                }
                BlockExit::Goto(b) => bi = b,
            }
        }
    }

    /// Allocating convenience wrapper mirroring [`emu::run`].
    ///
    /// # Errors
    ///
    /// As [`emu::run`].
    pub fn run(
        &self,
        entry: usize,
        env: &mut (impl Env + ?Sized),
        pair_budget: u64,
    ) -> Result<HandlerRun, EmuError> {
        let mut regs = Regs::new();
        let mut sink = EffectSink::new();
        let (exec_cycles, stats) = self.run_into(entry, env, pair_budget, &mut regs, &mut sink)?;
        Ok(HandlerRun {
            effects: sink.into_effects(),
            exec_cycles,
            stats,
        })
    }
}

/// Returns the shared translation of `program`, lowering it at most once
/// per program instance per process. The cache is keyed by `Arc` identity
/// and validated with a `Weak`, so a new `Arc` recycling a freed address
/// can never alias a stale entry; dead entries are purged on miss.
pub fn translate_shared(program: &Arc<Program>) -> Arc<Translated> {
    type Cache = Mutex<HashMap<usize, (Weak<Program>, Arc<Translated>)>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let key = Arc::as_ptr(program) as usize;
    let mut map = CACHE
        .get_or_init(Mutex::default)
        .lock()
        .expect("translation cache poisoned");
    if let Some((w, t)) = map.get(&key) {
        if w.upgrade().is_some_and(|p| Arc::ptr_eq(&p, program)) {
            return t.clone();
        }
    }
    map.retain(|_, (w, _)| w.strong_count() > 0);
    let t = Arc::new(Translated::new(program.clone()));
    map.insert(key, (Arc::downgrade(program), t.clone()));
    t
}

/// Validates a register operand for raw-index access.
fn reg(r: Reg) -> Option<u8> {
    (r.index() < NUM_REGS).then_some(r.0)
}

/// Lowers the pairs `start..end` into one block, or `None` when the
/// region is not canonical (control away from the final pair, an invalid
/// register number, or a label outside the program's table) — the whole
/// program then falls back to the emulator.
fn lower_block(
    program: &Program,
    start: usize,
    end: usize,
    block_of_pair: &[u32],
) -> Option<Block> {
    let prog_len = program.pairs.len();
    // Resolve a control-transfer target pair index to a block index.
    let dest = |pc: usize| -> Option<u32> {
        if pc >= prog_len {
            return Some(OFF_END);
        }
        let b = block_of_pair[pc];
        (b != OFF_END).then_some(b)
    };
    let label_dest = |label: crate::isa::Label| -> Option<u32> {
        dest(*program.label_pc.get(label.0 as usize)?)
    };
    let mut steps = Vec::new();
    let mut term = None;
    let (mut instrs, mut special, mut alu_branch) = (0u64, 0u64, 0u64);
    let (mut loads, mut stores) = (0u64, 0u64);
    for pc in start..end {
        let pair = program.pairs[pc];
        let last = pc + 1 == end;
        let meta = program.pair_meta(pc);
        instrs += meta.instrs as u64;
        special += meta.special as u64;
        alu_branch += meta.alu_branch as u64;
        let k = (pc - start) as u64; // block-relative effect offset
        if pair.a.is_control() || pair.b.is_control() {
            // Only the scheduler's canonical shapes are lowered: exactly
            // one control instruction, in slot b (slot a free for a real
            // op) or alone in slot a with a NOP pad, and only as the
            // final pair of the block.
            if !last {
                return None;
            }
            let (op, ctl) = if pair.b.is_control() {
                if pair.a.is_control() {
                    return None;
                }
                (pair.a, pair.b)
            } else {
                if pair.b != Instr::Nop {
                    return None;
                }
                (pair.b, pair.a)
            };
            if op != Instr::Nop {
                lower_step(&mut steps, op, k, &mut loads, &mut stores)?;
            }
            term = Some(match ctl {
                Instr::Switch => Term::Switch,
                Instr::Jump { target } => Term::Jump(label_dest(target)?),
                Instr::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => Term::Branch {
                    cond,
                    rs: reg(rs)?,
                    rt: reg(rt)?,
                    taken: label_dest(target)?,
                    next: dest(pc + 1)?,
                },
                Instr::BranchBit {
                    set,
                    rs,
                    bit,
                    target,
                } => Term::BranchBit {
                    set,
                    rs: reg(rs)?,
                    bit,
                    taken: label_dest(target)?,
                    next: dest(pc + 1)?,
                },
                _ => unreachable!("is_control covers exactly these variants"),
            });
        } else {
            for op in [pair.a, pair.b] {
                if op == Instr::Nop {
                    continue;
                }
                lower_step(&mut steps, op, k, &mut loads, &mut stores)?;
            }
            if last {
                term = Some(Term::Next(dest(pc + 1)?));
            }
        }
    }
    let term = term?;
    Some(Block {
        steps,
        term,
        start_pc: start,
        len: (end - start) as u64,
        instrs,
        special,
        alu_branch,
        loads,
        stores,
    })
}

/// Lowers one non-control instruction into `steps`, pre-resolving every
/// static quantity. Pure ALU writes to `r0` are dropped outright — the
/// emulator discards the write and nothing else observes the op. Loads
/// and stores are always kept (environment calls, alignment faults, and
/// MDC effects must match), as are `mfmsg`, `send`, and `memop`.
fn lower_step(
    steps: &mut Vec<Step>,
    op: Instr,
    k: u64,
    loads: &mut u64,
    stores: &mut u64,
) -> Option<()> {
    let dead = |rd: Reg| rd == Reg::ZERO;
    match op {
        Instr::Alu { op, rd, rs, rt } => {
            if !dead(rd) {
                steps.push(Step::Alu {
                    op,
                    rd: reg(rd)?,
                    rs: reg(rs)?,
                    rt: reg(rt)?,
                });
            }
        }
        Instr::AluImm { op, rd, rs, imm } => {
            if !dead(rd) {
                // Logical immediates zero-extend; arithmetic immediates
                // sign-extend (DLX convention) — resolved here, once.
                let imm = match op {
                    AluOp::And | AluOp::Or | AluOp::Xor => imm as u16 as u64,
                    _ => imm as i64 as u64,
                };
                steps.push(Step::AluImm {
                    op,
                    rd: reg(rd)?,
                    rs: reg(rs)?,
                    imm,
                });
            }
        }
        Instr::Lui { rd, imm } => {
            if !dead(rd) {
                steps.push(Step::Lui {
                    rd: reg(rd)?,
                    val: (imm as u64) << 16,
                });
            }
        }
        Instr::FieldImm {
            op,
            rd,
            rs,
            pos,
            width,
        } => {
            if !dead(rd) {
                steps.push(Step::Field {
                    op,
                    rd: reg(rd)?,
                    rs: reg(rs)?,
                    mask: crate::isa::field_mask(pos, width),
                });
            }
        }
        Instr::BfExt { rd, rs, pos, width } => {
            if !dead(rd) {
                steps.push(Step::BfExt {
                    rd: reg(rd)?,
                    rs: reg(rs)?,
                    pos,
                    mask: crate::isa::field_mask(0, width),
                });
            }
        }
        Instr::BfIns { rd, rs, pos, width } => {
            if !dead(rd) {
                steps.push(Step::BfIns {
                    rd: reg(rd)?,
                    rs: reg(rs)?,
                    pos,
                    mask: crate::isa::field_mask(pos, width),
                });
            }
        }
        Instr::Ffs { rd, rs } => {
            if !dead(rd) {
                steps.push(Step::Ffs {
                    rd: reg(rd)?,
                    rs: reg(rs)?,
                });
            }
        }
        Instr::Load { rd, rs, off, size } => {
            *loads += 1;
            steps.push(Step::Load {
                rd: reg(rd)?,
                rs: reg(rs)?,
                off: off as i64 as u64,
                size,
                offset: k,
            });
        }
        Instr::Store { rt, rs, off, size } => {
            *stores += 1;
            steps.push(Step::Store {
                rt: reg(rt)?,
                rs: reg(rs)?,
                off: off as i64 as u64,
                size,
                offset: k,
            });
        }
        Instr::MfMsg { rd, field } => {
            // Kept even for r0: the Env call is an observable.
            steps.push(Step::MfMsg {
                rd: reg(rd)?,
                field,
            });
        }
        Instr::Send {
            target,
            with_data,
            rtype,
            rdest,
            raddr,
            raux,
        } => {
            steps.push(Step::Send {
                target,
                with_data,
                rtype: reg(rtype)?,
                rdest: reg(rdest)?,
                raddr: reg(raddr)?,
                raux: reg(raux)?,
                offset: k,
            });
        }
        Instr::MemOp { kind, raddr } => {
            steps.push(Step::MemOp {
                kind,
                raddr: reg(raddr)?,
                offset: k,
            });
        }
        Instr::Nop
        | Instr::Branch { .. }
        | Instr::BranchBit { .. }
        | Instr::Jump { .. }
        | Instr::Switch => return None, // callers never pass these
    }
    Some(())
}

/// Executes one lowered block: the straight-line steps, then the
/// terminator. Effect offsets are block-relative; the runner rebases.
fn exec_block(
    steps: &[Step],
    term: Term,
    regs: &mut Regs,
    env: &mut (impl Env + ?Sized),
    sink: &mut EffectSink,
) -> Result<BlockExit, EmuError> {
    for s in steps {
        match *s {
            Step::Alu { op, rd, rs, rt } => {
                let v = op.apply(regs.get_i(rs), regs.get_i(rt));
                regs.set_i(rd, v);
            }
            Step::AluImm { op, rd, rs, imm } => {
                let v = op.apply(regs.get_i(rs), imm);
                regs.set_i(rd, v);
            }
            Step::Lui { rd, val } => regs.set_i(rd, val),
            Step::Field { op, rd, rs, mask } => {
                let a = regs.get_i(rs);
                let v = match op {
                    FieldOp::AndMask => a & mask,
                    FieldOp::AndNotMask => a & !mask,
                    FieldOp::OrMask => a | mask,
                    FieldOp::XorMask => a ^ mask,
                };
                regs.set_i(rd, v);
            }
            Step::BfExt { rd, rs, pos, mask } => {
                regs.set_i(rd, (regs.get_i(rs) >> pos) & mask);
            }
            Step::BfIns { rd, rs, pos, mask } => {
                let v = (regs.get_i(rd) & !mask) | ((regs.get_i(rs) << pos) & mask);
                regs.set_i(rd, v);
            }
            Step::Ffs { rd, rs } => {
                let v = regs.get_i(rs);
                regs.set_i(
                    rd,
                    if v == 0 {
                        64
                    } else {
                        v.trailing_zeros() as u64
                    },
                );
            }
            Step::Load {
                rd,
                rs,
                off,
                size,
                offset,
            } => {
                let addr = regs.get_i(rs).wrapping_add(off);
                if !addr.is_multiple_of(size.bytes()) {
                    return Err(EmuError::Unaligned { addr });
                }
                let (v, miss) = env.load(addr, size);
                if let Some(m) = miss {
                    sink.push(TimedEffect {
                        offset,
                        kind: EffectKind::Mdc(m),
                    });
                }
                regs.set_i(rd, v);
            }
            Step::Store {
                rt,
                rs,
                off,
                size,
                offset,
            } => {
                let addr = regs.get_i(rs).wrapping_add(off);
                if !addr.is_multiple_of(size.bytes()) {
                    return Err(EmuError::Unaligned { addr });
                }
                if let Some(m) = env.store(addr, regs.get_i(rt), size) {
                    sink.push(TimedEffect {
                        offset,
                        kind: EffectKind::Mdc(m),
                    });
                }
            }
            Step::MfMsg { rd, field } => {
                let v = env.msg_field(field);
                regs.set_i(rd, v);
            }
            Step::Send {
                target,
                with_data,
                rtype,
                rdest,
                raddr,
                raux,
                offset,
            } => {
                sink.push(TimedEffect {
                    offset,
                    kind: EffectKind::Send(OutMsg {
                        target,
                        with_data,
                        mtype: regs.get_i(rtype),
                        dest: regs.get_i(rdest),
                        addr: regs.get_i(raddr),
                        aux: regs.get_i(raux),
                    }),
                });
            }
            Step::MemOp {
                kind,
                raddr,
                offset,
            } => {
                sink.push(TimedEffect {
                    offset,
                    kind: EffectKind::MemOp {
                        kind,
                        addr: regs.get_i(raddr),
                    },
                });
            }
        }
    }
    Ok(match term {
        Term::Next(b) | Term::Jump(b) => BlockExit::Goto(b),
        Term::Branch {
            cond,
            rs,
            rt,
            taken,
            next,
        } => BlockExit::Goto(if cond.taken(regs.get_i(rs), regs.get_i(rt)) {
            taken
        } else {
            next
        }),
        Term::BranchBit {
            set,
            rs,
            bit,
            taken,
            next,
        } => {
            let bit_set = (regs.get_i(rs) >> bit) & 1 == 1;
            BlockExit::Goto(if bit_set == set { taken } else { next })
        }
        Term::Switch => BlockExit::Switch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::{FlatEnv, DEFAULT_PAIR_BUDGET};
    use crate::prog::Pair;
    use crate::{build, CodegenOptions};

    fn translated(src: &str) -> (Arc<Program>, Translated) {
        let p = Arc::new(build(src, CodegenOptions::magic()).unwrap());
        let t = Translated::new(p.clone());
        (p, t)
    }

    /// Both backends, same program, same env start state; exact compare.
    fn check_equiv(src: &str, entry: &str, budget: u64) {
        let (p, t) = translated(src);
        assert!(t.fully_translated(), "scheduler output must translate");
        let pc = p.entry(entry).unwrap();
        let mut env_e = FlatEnv::new(512);
        let mut env_t = env_e.clone();
        let re = emu::run(&p, pc, &mut env_e, budget);
        let rt = t.run(pc, &mut env_t, budget);
        match (re, rt) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.exec_cycles, b.exec_cycles);
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.effects, b.effects);
                assert_eq!(env_e.peek64(0), env_t.peek64(0));
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("backends disagree: emu {a:?} vs translated {b:?}"),
        }
    }

    #[test]
    fn straight_line_and_loop_equivalence() {
        let src = "h:
  addi r1, r0, 5
  addi r2, r0, 0
loop:
  add r2, r2, r1
  addi r1, r1, -1
  bgtz r1, loop
  addi r3, r0, 0
  sd r2, 0(r3)
  switch
";
        check_equiv(src, "h", DEFAULT_PAIR_BUDGET);
    }

    #[test]
    fn budget_equivalence_exact() {
        // An infinite loop must report RanAway at exactly the same budget
        // under both backends, for every budget.
        let src = "h:\n  addi r1, r1, 1\n  j h\n";
        for budget in 0..8 {
            check_equiv(src, "h", budget);
        }
    }

    #[test]
    fn unaligned_fault_beats_budget() {
        // The faulting load sits in a block whose pair span crosses the
        // budget: the emulator faults before the budget expires, and the
        // translated runner must agree (via the resume fallback).
        let src =
            "h:\n  addi r1, r0, 3\n  ld r2, 0(r1)\n  addi r3, r0, 1\n  addi r4, r0, 1\n  switch\n";
        for budget in 0..8 {
            check_equiv(src, "h", budget);
        }
    }

    #[test]
    fn effects_and_offsets_match() {
        let src = "h:
  addi r1, r0, 5
  addi r2, r0, 3
  li r3, 0x1000
  memrd r3
  sendnd r1, r2, r3, r0
  switch
";
        check_equiv(src, "h", DEFAULT_PAIR_BUDGET);
    }

    #[test]
    fn fallthrough_past_end_matches() {
        // A handler without switch falls off the end: BadPc under a
        // generous budget, RanAway when the budget expires first.
        let src = "h:\n  addi r1, r0, 1\n  addi r2, r0, 2\n";
        for budget in 0..4 {
            check_equiv(src, "h", budget);
        }
        check_equiv(src, "h", DEFAULT_PAIR_BUDGET);
    }

    #[test]
    fn non_canonical_program_falls_back() {
        // Hand-built: a control instruction in slot a with a real op in
        // slot b is legal for the emulator but not canonical.
        let jump = Instr::Jump {
            target: crate::isa::Label(0),
        };
        let add = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs: Reg(1),
            imm: 1,
        };
        let p = Arc::new(Program::new(
            vec![Pair { a: jump, b: add }],
            vec![0],
            std::collections::BTreeMap::new(),
        ));
        let t = Translated::new(p.clone());
        assert!(!t.fully_translated());
        let mut env_e = FlatEnv::new(0);
        let mut env_t = FlatEnv::new(0);
        assert_eq!(
            emu::run(&p, 0, &mut env_e, 10).unwrap_err(),
            t.run(0, &mut env_t, 10).unwrap_err()
        );
    }

    #[test]
    fn mid_block_entry_falls_back_to_emulator() {
        let src = "h:\n  addi r1, r0, 1\n  addi r2, r0, 2\n  addi r3, r0, 3\n  addi r4, r0, 4\n  addi r9, r0, 8\n  sd r2, 0(r9)\n  switch\n";
        let (p, t) = translated(src);
        // Pick a pair index that is inside a block (not a leader).
        let mid = (1..p.pairs.len())
            .find(|&pc| t.block_of_pair[pc] == OFF_END)
            .expect("program has a multi-pair block");
        let mut env_e = FlatEnv::new(64);
        let mut env_t = FlatEnv::new(64);
        let a = emu::run(&p, mid, &mut env_e, 100).unwrap();
        let b = t.run(mid, &mut env_t, 100).unwrap();
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.stats, b.stats);
        assert_eq!(env_e.peek64(8), env_t.peek64(8));
    }

    #[test]
    fn shared_translation_is_cached_per_program() {
        let p = Arc::new(build("h:\n  switch\n", CodegenOptions::magic()).unwrap());
        let t1 = translate_shared(&p);
        let t2 = translate_shared(&p);
        assert!(Arc::ptr_eq(&t1, &t2));
        let q = Arc::new(build("h:\n  switch\n", CodegenOptions::magic()).unwrap());
        let t3 = translate_shared(&q);
        assert!(!Arc::ptr_eq(&t1, &t3));
    }
}
