//! DLX substitution: rewriting special instructions into base-DLX
//! sequences.
//!
//! Paper §5.3 quantifies the value of the PP's ISA extensions by compiling
//! the protocol without them and scheduling it single-issue, observing a
//! 40% average (137% maximum) slowdown, and Table 5.3 lists the
//! substitution sequences. [`expand_specials`] performs the same rewrite on
//! an assembled [`Module`], using the reserved temporaries `r29`/`r30`
//! (which handler code may not touch, enforced by the assembler).
//!
//! The sequences used here match Table 5.3's flavour:
//!
//! * **branch on bit** → 2 instructions for low bits (`andi` + branch), 3
//!   for high bits (`srli` + `andi` + branch); the paper reports 2 or 4.
//! * **bitfield extract** → 1–2 shifts.
//! * **field immediate** → 1 instruction when the mask fits a 16-bit
//!   immediate, otherwise a 3-instruction mask build plus the ALU op
//!   (the paper reports 1–5).
//! * **field insert** → two field-immediate-equivalent sequences plus an
//!   `or` (≈9 instructions here).
//! * **find first set** → a compact test-and-shift loop, 2 + ~4 cycles per
//!   bit examined, exactly the paper's "optimized for code size" variant.

use crate::isa::{AluOp, BrCond, FieldOp, Instr, Reg, TEMP0, TEMP1};
use crate::prog::Module;

/// Rewrites every special instruction in `module` into base-DLX sequences,
/// preserving semantics. Labels (including branch targets inside the
/// module) are remapped to the new instruction positions.
pub fn expand_specials(module: &Module) -> Module {
    let original_labels = module.labels.len();
    let mut out = Module {
        instrs: Vec::with_capacity(module.instrs.len() * 2),
        labels: module.labels.clone(),
        symbols: module.symbols.clone(),
    };
    let mut map = vec![0usize; module.instrs.len() + 1];
    for (i, &ins) in module.instrs.iter().enumerate() {
        map[i] = out.instrs.len();
        expand_one(ins, &mut out);
    }
    map[module.instrs.len()] = out.instrs.len();
    for l in out.labels.iter_mut().take(original_labels) {
        *l = map[*l];
    }
    out
}

/// Number of base-DLX instructions [`expand_specials`] emits for `instr`
/// (1 for non-special instructions). Drives the Table 5.3 report.
pub fn expansion_len(instr: Instr) -> usize {
    let mut m = Module::default();
    expand_one(instr, &mut m);
    m.instrs.len()
}

fn expand_one(ins: Instr, out: &mut Module) {
    let emit = |out: &mut Module, i: Instr| out.instrs.push(i);
    match ins {
        Instr::BfExt { rd, rs, pos, width } => {
            // rd = (rs >> pos) & ones(width), via a shift-up/shift-down.
            let up = 64 - (pos as i16 + width as i16);
            if up == 0 {
                emit(out, alui(AluOp::Srl, rd, rs, pos as i16));
            } else {
                emit(out, alui(AluOp::Sll, rd, rs, up));
                emit(out, alui(AluOp::Srl, rd, rd, 64 - width as i16));
            }
        }
        Instr::BfIns { rd, rs, pos, width } => {
            // TEMP0 = (rs & ones(width)) << pos
            emit(out, alui(AluOp::Sll, TEMP0, rs, 64 - width as i16));
            emit(out, alui(AluOp::Srl, TEMP0, TEMP0, 64 - width as i16));
            if pos > 0 {
                emit(out, alui(AluOp::Sll, TEMP0, TEMP0, pos as i16));
            }
            // TEMP1 = ~mask(pos, width)
            emit(out, alui(AluOp::Add, TEMP1, Reg::ZERO, -1));
            emit(out, alui(AluOp::Srl, TEMP1, TEMP1, 64 - width as i16));
            if pos > 0 {
                emit(out, alui(AluOp::Sll, TEMP1, TEMP1, pos as i16));
            }
            // NOT via two's complement (~x = -x - 1): logical immediates
            // zero-extend, so `xori -1` would only flip the low 16 bits.
            emit(out, alu(AluOp::Sub, TEMP1, Reg::ZERO, TEMP1));
            emit(out, alui(AluOp::Add, TEMP1, TEMP1, -1));
            // rd = (rd & ~mask) | TEMP0
            emit(out, alu(AluOp::And, rd, rd, TEMP1));
            emit(out, alu(AluOp::Or, rd, rd, TEMP0));
        }
        Instr::FieldImm {
            op,
            rd,
            rs,
            pos,
            width,
        } => {
            let fits_imm = pos as u32 + width as u32 <= 15;
            match (op, fits_imm) {
                (FieldOp::AndMask, true) => emit(out, alui(AluOp::And, rd, rs, mask16(pos, width))),
                (FieldOp::OrMask, true) => emit(out, alui(AluOp::Or, rd, rs, mask16(pos, width))),
                (FieldOp::XorMask, true) => emit(out, alui(AluOp::Xor, rd, rs, mask16(pos, width))),
                (FieldOp::AndMask, false) => {
                    let up = 64 - (pos as i16 + width as i16);
                    if up > 0 {
                        emit(out, alui(AluOp::Sll, rd, rs, up));
                        emit(out, alui(AluOp::Srl, rd, rd, up));
                    } else if rd != rs {
                        emit(out, alu(AluOp::Add, rd, rs, Reg::ZERO));
                    }
                    if pos > 0 {
                        emit(out, alui(AluOp::Srl, rd, rd, pos as i16));
                        emit(out, alui(AluOp::Sll, rd, rd, pos as i16));
                    }
                }
                (other_op, _) => {
                    // Build the mask in TEMP0: all-ones, trim, position.
                    emit(out, alui(AluOp::Add, TEMP0, Reg::ZERO, -1));
                    emit(out, alui(AluOp::Srl, TEMP0, TEMP0, 64 - width as i16));
                    if pos > 0 {
                        emit(out, alui(AluOp::Sll, TEMP0, TEMP0, pos as i16));
                    }
                    match other_op {
                        FieldOp::OrMask => emit(out, alu(AluOp::Or, rd, rs, TEMP0)),
                        FieldOp::XorMask => emit(out, alu(AluOp::Xor, rd, rs, TEMP0)),
                        FieldOp::AndNotMask => {
                            // ~mask via two's complement (see BfIns note).
                            emit(out, alu(AluOp::Sub, TEMP0, Reg::ZERO, TEMP0));
                            emit(out, alui(AluOp::Add, TEMP0, TEMP0, -1));
                            emit(out, alu(AluOp::And, rd, rs, TEMP0));
                        }
                        FieldOp::AndMask => unreachable!("handled above"),
                    }
                }
            }
        }
        Instr::Ffs { rd, rs } => {
            // Compact loop, "optimized for code size" per Table 5.3.
            let l_loop = out.new_label(usize::MAX);
            let l_done = out.new_label(usize::MAX);
            emit(out, alu(AluOp::Add, TEMP0, rs, Reg::ZERO));
            emit(out, alui(AluOp::Add, rd, Reg::ZERO, 64));
            emit(
                out,
                Instr::Branch {
                    cond: BrCond::Eq,
                    rs: TEMP0,
                    rt: Reg::ZERO,
                    target: l_done,
                },
            );
            emit(out, alui(AluOp::Add, rd, Reg::ZERO, 0));
            let loop_at = out.instrs.len();
            out.labels[l_loop.0 as usize] = loop_at;
            emit(out, alui(AluOp::And, TEMP1, TEMP0, 1));
            emit(
                out,
                Instr::Branch {
                    cond: BrCond::Ne,
                    rs: TEMP1,
                    rt: Reg::ZERO,
                    target: l_done,
                },
            );
            emit(out, alui(AluOp::Srl, TEMP0, TEMP0, 1));
            emit(out, alui(AluOp::Add, rd, rd, 1));
            emit(out, Instr::Jump { target: l_loop });
            out.labels[l_done.0 as usize] = out.instrs.len();
        }
        Instr::BranchBit {
            set,
            rs,
            bit,
            target,
        } => {
            let cond = if set { BrCond::Ne } else { BrCond::Eq };
            if bit <= 14 {
                emit(out, alui(AluOp::And, TEMP0, rs, 1 << bit));
            } else {
                emit(out, alui(AluOp::Srl, TEMP0, rs, bit as i16));
                emit(out, alui(AluOp::And, TEMP0, TEMP0, 1));
            }
            emit(
                out,
                Instr::Branch {
                    cond,
                    rs: TEMP0,
                    rt: Reg::ZERO,
                    target,
                },
            );
        }
        other => out.instrs.push(other),
    }
}

fn alu(op: AluOp, rd: Reg, rs: Reg, rt: Reg) -> Instr {
    Instr::Alu { op, rd, rs, rt }
}

fn alui(op: AluOp, rd: Reg, rs: Reg, imm: i16) -> Instr {
    Instr::AluImm { op, rd, rs, imm }
}

fn mask16(pos: u8, width: u8) -> i16 {
    crate::isa::field_mask(pos, width) as i16
}

/// Trivially satisfied marker so downstream code can assert the expansion
/// left no special instructions behind.
pub fn has_specials(module: &Module) -> bool {
    module.instrs.iter().any(Instr::is_special)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::emu::{run, FlatEnv, DEFAULT_PAIR_BUDGET};
    use crate::sched::{schedule, SchedOptions};

    /// Runs `src` both natively and DLX-expanded and checks the first
    /// `words` 64-bit memory words agree.
    fn check_equiv(src: &str, words: usize) {
        let m = assemble(src).unwrap();
        let expanded = expand_specials(&m);
        assert!(!has_specials(&expanded), "expansion left specials behind");
        let p1 = schedule(&m, SchedOptions::default());
        let p2 = schedule(&expanded, SchedOptions::single_issue());
        let mut e1 = FlatEnv::new(words * 8 + 64);
        let mut e2 = FlatEnv::new(words * 8 + 64);
        let r1 = run(&p1, p1.entry("h").unwrap(), &mut e1, DEFAULT_PAIR_BUDGET).unwrap();
        let r2 = run(&p2, p2.entry("h").unwrap(), &mut e2, DEFAULT_PAIR_BUDGET).unwrap();
        for w in 0..words {
            assert_eq!(
                e1.peek64(w as u64 * 8),
                e2.peek64(w as u64 * 8),
                "word {w} differs"
            );
        }
        assert!(
            r2.exec_cycles >= r1.exec_cycles,
            "substituted code should not be faster"
        );
    }

    #[test]
    fn bfext_equivalence() {
        check_equiv(
            "h:\n  li r1, 0x7654\n  bfext r2, r1, 4, 8\n  sd r2, 0(r0)\n  bfext r3, r1, 0, 4\n  sd r3, 8(r0)\n  switch\n",
            2,
        );
    }

    #[test]
    fn bfext_high_field() {
        check_equiv(
            "h:\n  addi r1, r0, -1\n  bfext r2, r1, 60, 4\n  sd r2, 0(r0)\n  switch\n",
            1,
        );
    }

    #[test]
    fn bfins_equivalence() {
        check_equiv(
            "h:\n  li r1, 0x1234\n  li r2, 0xab\n  bfins r1, r2, 8, 4\n  sd r1, 0(r0)\n  bfins r1, r2, 0, 8\n  sd r1, 8(r0)\n  switch\n",
            2,
        );
    }

    #[test]
    fn field_imm_equivalence() {
        check_equiv(
            "h:
  li r1, 0xabcd
  andfi r2, r1, 4, 8
  sd r2, 0(r0)
  andcfi r3, r1, 4, 8
  sd r3, 8(r0)
  orfi r4, r1, 2, 3
  sd r4, 16(r0)
  xorfi r5, r1, 0, 16
  sd r5, 24(r0)
  andfi r6, r1, 8, 40
  sd r6, 32(r0)
  orfi r7, r1, 30, 20
  sd r7, 40(r0)
  switch
",
            6,
        );
    }

    #[test]
    fn ffs_equivalence() {
        check_equiv(
            "h:
  li r1, 0x80
  ffs r2, r1
  sd r2, 0(r0)
  addi r3, r0, 0
  ffs r4, r3
  sd r4, 8(r0)
  addi r5, r0, 1
  ffs r6, r5
  sd r6, 16(r0)
  switch
",
            3,
        );
    }

    #[test]
    fn branch_bit_equivalence() {
        check_equiv(
            "h:
  li r1, 0x8001
  addi r2, r0, 0
  bbs r1, 15, a
  addi r2, r0, 111
a:
  sd r2, 0(r0)
  addi r3, r0, 0
  bbc r1, 1, b
  addi r3, r0, 222
b:
  sd r3, 8(r0)
  switch
",
            2,
        );
    }

    #[test]
    fn expansion_lengths_match_table_5_3_ranges() {
        use crate::isa::Instr as I;
        let r = Reg(1);
        let s = Reg(2);
        // branch on bit: 2 (low bit) or 3 (high bit); paper says 2 or 4.
        let lo = expansion_len(I::BranchBit {
            set: true,
            rs: s,
            bit: 3,
            target: crate::isa::Label(0),
        });
        let hi = expansion_len(I::BranchBit {
            set: true,
            rs: s,
            bit: 40,
            target: crate::isa::Label(0),
        });
        assert_eq!(lo, 2);
        assert_eq!(hi, 3);
        // field immediates: 1..=5.
        for (pos, width) in [(0u8, 8u8), (4, 8), (8, 40), (30, 20)] {
            for op in [
                FieldOp::AndMask,
                FieldOp::OrMask,
                FieldOp::XorMask,
                FieldOp::AndNotMask,
            ] {
                let n = expansion_len(I::FieldImm {
                    op,
                    rd: r,
                    rs: s,
                    pos,
                    width,
                });
                assert!((1..=6).contains(&n), "{op:?} {pos}/{width} took {n}");
            }
        }
        // find first set: small static footprint (paper: 6 optimized for size).
        let f = expansion_len(I::Ffs { rd: r, rs: s });
        assert!((6..=9).contains(&f), "ffs expansion was {f}");
        // insert field: two field immediates + or territory.
        let b = expansion_len(I::BfIns {
            rd: r,
            rs: s,
            pos: 8,
            width: 4,
        });
        assert!((6..=10).contains(&b), "bfins expansion was {b}");
    }

    #[test]
    fn high_bit_fields_survive_substitution() {
        // Regression: the NOT idiom must flip all 64 bits, or field
        // operations destroy the unrelated high fields of a word (the
        // directory-header corruption bug).
        check_equiv(
            "h:
  addi r1, r0, -1
  bfins r1, r0, 8, 4
  sd r1, 0(r0)
  addi r2, r0, -1
  andcfi r3, r2, 1, 1
  sd r3, 8(r0)
  addi r4, r0, -1
  bfins r4, r0, 48, 16
  sd r4, 16(r0)
  switch
",
            3,
        );
    }

    #[test]
    fn non_special_instructions_pass_through() {
        let m = assemble("h:\n  addi r1, r0, 1\n  beq r1, r0, h\n  switch\n").unwrap();
        let e = expand_specials(&m);
        assert_eq!(e.instrs.len(), m.instrs.len());
    }

    #[test]
    fn labels_remap_across_expansion() {
        let src = "h:
  li r1, 0x10
  bbs r1, 4, hit
  addi r2, r0, 1
  sd r2, 0(r0)
  switch
hit:
  addi r2, r0, 2
  sd r2, 0(r0)
  switch
";
        check_equiv(src, 1);
    }
}
