//! Program representations before and after static scheduling.

use crate::isa::{Instr, Label, INSTR_BYTES};
use std::collections::BTreeMap;

/// An assembled but not yet scheduled code module: a flat instruction list
/// with a label table and named entry points.
///
/// Modules are produced by [`crate::asm::assemble`], optionally transformed
/// by [`crate::dlx::expand_specials`], and turned into an executable
/// [`Program`] by [`crate::sched::schedule`].
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Instruction stream in program order.
    pub instrs: Vec<Instr>,
    /// `labels[label.0]` is the instruction index the label refers to.
    pub labels: Vec<usize>,
    /// Named entry points (every assembly label name).
    pub symbols: BTreeMap<String, Label>,
}

impl Module {
    /// Allocates a fresh label pointing at instruction index `at`.
    pub fn new_label(&mut self, at: usize) -> Label {
        self.labels.push(at);
        Label(self.labels.len() as u32 - 1)
    }

    /// Instruction index of `label`.
    ///
    /// # Panics
    ///
    /// Panics if the label was not allocated by this module.
    pub fn label_target(&self, label: Label) -> usize {
        self.labels[label.0 as usize]
    }

    /// Static code size in bytes (each instruction is 4 bytes).
    pub fn static_bytes(&self) -> u64 {
        self.instrs.len() as u64 * INSTR_BYTES
    }
}

/// One dual-issue instruction pair (the PP "executes a pair of
/// instructions every cycle", paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// First issue slot.
    pub a: Instr,
    /// Second issue slot.
    pub b: Instr,
}

impl Pair {
    /// Number of non-NOP instructions in the pair.
    pub fn useful(&self) -> u32 {
        (self.a != Instr::Nop) as u32 + (self.b != Instr::Nop) as u32
    }
}

/// Pre-decoded per-pair statistics, computed once at schedule time so the
/// emulator's hot loop does not re-classify instruction words on every
/// executed pair. The counts are exact because both issue slots of a pair
/// always execute (control transfers apply *after* the pair completes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairMeta {
    /// Non-NOP instructions in the pair.
    pub instrs: u8,
    /// Special (MAGIC-extension) instructions in the pair.
    pub special: u8,
    /// ALU + branch instructions in the pair.
    pub alu_branch: u8,
}

impl PairMeta {
    /// Classifies one pair.
    pub fn of(pair: &Pair) -> Self {
        let mut m = PairMeta::default();
        for i in [pair.a, pair.b] {
            if i == Instr::Nop {
                continue;
            }
            m.instrs += 1;
            if i.is_special() {
                m.special += 1;
            }
            if i.is_alu_or_branch() {
                m.alu_branch += 1;
            }
        }
        m
    }
}

/// A scheduled, executable PP program: a sequence of issue pairs with
/// labels resolved to pair indices.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Issue pairs; the PP program counter indexes this vector.
    pub pairs: Vec<Pair>,
    /// `label_pc[label.0]` is the pair index the label starts at.
    pub label_pc: Vec<usize>,
    /// Entry-point name → pair index.
    pub symbols: BTreeMap<String, usize>,
    /// Pre-decoded statistics, index-parallel with `pairs`. Private so
    /// construction through [`Program::new`] keeps it consistent.
    meta: Vec<PairMeta>,
}

impl Program {
    /// Builds an executable program, pre-decoding per-pair statistics.
    pub fn new(pairs: Vec<Pair>, label_pc: Vec<usize>, symbols: BTreeMap<String, usize>) -> Self {
        let meta = pairs.iter().map(PairMeta::of).collect();
        Program {
            pairs,
            label_pc,
            symbols,
            meta,
        }
    }

    /// Pre-decoded statistics for the pair at `pc`. Falls back to on-line
    /// classification for programs assembled without [`Program::new`]
    /// (e.g. `Default`-built test fixtures).
    #[inline]
    pub fn pair_meta(&self, pc: usize) -> PairMeta {
        match self.meta.get(pc) {
            Some(m) => *m,
            None => self.pairs.get(pc).map(PairMeta::of).unwrap_or_default(),
        }
    }
    /// Pair index of a named entry point.
    pub fn entry(&self, name: &str) -> Option<usize> {
        self.symbols.get(name).copied()
    }

    /// Pair index of `label`.
    ///
    /// # Panics
    ///
    /// Panics if the label does not belong to this program.
    pub fn label_pc(&self, label: Label) -> usize {
        self.label_pc[label.0 as usize]
    }

    /// Static code size in bytes, counting both slots of every pair
    /// ("static code size of fully-scheduled handlers (with NOPs)",
    /// paper Table 5.2).
    pub fn static_bytes(&self) -> u64 {
        self.pairs.len() as u64 * 2 * INSTR_BYTES
    }

    /// Total issue slots that hold real instructions.
    pub fn static_useful_instrs(&self) -> u64 {
        self.pairs.iter().map(|p| p.useful() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Reg};

    #[test]
    fn module_labels() {
        let mut m = Module::default();
        m.instrs.push(Instr::Nop);
        let l = m.new_label(1);
        assert_eq!(m.label_target(l), 1);
        assert_eq!(m.static_bytes(), 4);
    }

    #[test]
    fn pair_usefulness() {
        let add = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs: Reg(0),
            imm: 1,
        };
        assert_eq!(Pair { a: add, b: add }.useful(), 2);
        assert_eq!(
            Pair {
                a: add,
                b: Instr::Nop
            }
            .useful(),
            1
        );
        assert_eq!(
            Pair {
                a: Instr::Nop,
                b: Instr::Nop
            }
            .useful(),
            0
        );
    }

    #[test]
    fn program_static_size_counts_nops() {
        let add = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs: Reg(0),
            imm: 1,
        };
        let p = Program::new(
            vec![Pair {
                a: add,
                b: Instr::Nop,
            }],
            vec![],
            BTreeMap::new(),
        );
        assert_eq!(p.static_bytes(), 8);
        assert_eq!(p.static_useful_instrs(), 1);
        let m = p.pair_meta(0);
        assert_eq!((m.instrs, m.special, m.alu_branch), (1, 0, 1));
        // Out-of-range pcs fall back to the zero meta.
        assert_eq!(p.pair_meta(99), PairMeta::default());
    }
}
