//! A two-pass assembler for PP assembly source.
//!
//! The FLASH project wrote its protocol handlers in C, compiled them with a
//! gcc port and scheduled them with PPtwine (paper §3.3). This repository
//! writes the handlers directly in PP assembly; the assembler produces an
//! unscheduled [`Module`] which [`crate::sched::schedule`] then statically
//! pairs for the dual-issue PP.
//!
//! # Syntax
//!
//! ```text
//! ; comment               # also a comment
//! .equ NAME, 42           ; named constant
//! handler_entry:          ; label (all labels are exported symbols)
//!     mfmsg  r10, F_ADDR
//!     ld     r11, 0(r10)
//!     bbs    r11, 3, .done
//!     addi   r11, r11, 1
//!     sd     r11, 0(r10)
//! .done:
//!     switch
//! ```
//!
//! Mnemonics: `add sub and or xor sll srl sra slt sltu` (+`i` immediate
//! forms), `lui`, field immediates `andfi andcfi orfi xorfi rd, rs, pos,
//! width`, `bfext bfins rd, rs, pos, width`, `ffs rd, rs`, loads/stores
//! `ld lw rd, off(rs)` / `sd sw rt, off(rs)`, branches `beq bne rs, rt,
//! label`, `bltz bgez blez bgtz rs, label`, `bbs bbc rs, bit, label`,
//! `j label`, MAGIC interface `mfmsg rd, field`, `sendp/sendpd rtype,
//! raddr, raux`, `sendn/sendnd rtype, rdest, raddr, raux`, `memrd rs`,
//! `memwr rs`, `switch`, `nop`, and pseudo-instructions `li rd, imm`,
//! `move rd, rs`, `b label`.

use crate::isa::{
    AluOp, BrCond, FieldOp, Instr, Label, MemOpKind, MemSize, Reg, SendTarget, TEMP0, TEMP1,
};
use crate::prog::Module;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// An assembly failure, carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

/// Assembles PP source text into an unscheduled [`Module`].
///
/// # Errors
///
/// Returns an [`AsmError`] for unknown mnemonics, malformed operands,
/// out-of-range immediates, undefined labels, or use of the reserved
/// assembler temporaries `r29`/`r30`.
///
/// # Examples
///
/// ```
/// let m = flash_pp::asm::assemble("entry:\n  addi r1, r0, 5\n  switch\n")?;
/// assert_eq!(m.instrs.len(), 2);
/// assert!(m.symbols.contains_key("entry"));
/// # Ok::<(), flash_pp::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Module> {
    let mut asm = Assembler::default();
    // Pass 1: collect labels and constants so forward references resolve.
    asm.scan(source)?;
    // Pass 2: emit instructions.
    asm.emit(source)?;
    asm.finish()
}

#[derive(Default)]
struct Assembler {
    module: Module,
    equs: BTreeMap<String, i64>,
    /// name → label id
    label_ids: BTreeMap<String, Label>,
    /// label ids that were defined (got a position) during emit
    defined: Vec<bool>,
}

impl Assembler {
    fn scan(&mut self, source: &str) -> Result<()> {
        for (ln, raw) in source.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(".equ") {
                let (name, val) = parse_equ(rest, ln + 1, &self.equs)?;
                self.equs.insert(name, val);
            } else if let Some(name) = line.strip_suffix(':') {
                let name = name.trim();
                if !is_ident(name) {
                    return Err(err(ln + 1, format!("invalid label name `{name}`")));
                }
                if self.label_ids.contains_key(name) {
                    return Err(err(ln + 1, format!("duplicate label `{name}`")));
                }
                let label = self.module.new_label(usize::MAX);
                self.label_ids.insert(name.to_string(), label);
                self.defined.push(false);
            }
        }
        Ok(())
    }

    fn emit(&mut self, source: &str) -> Result<()> {
        for (ln, raw) in source.lines().enumerate() {
            let ln = ln + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() || line.starts_with(".equ") {
                continue;
            }
            if let Some(name) = line.strip_suffix(':') {
                let label = self.label_ids[name.trim()];
                self.module.labels[label.0 as usize] = self.module.instrs.len();
                self.defined[label.0 as usize] = true;
                continue;
            }
            self.emit_instr(line, ln)?;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Module> {
        for (name, label) in &self.label_ids {
            if !self.defined[label.0 as usize] {
                return Err(err(0, format!("label `{name}` was never defined")));
            }
        }
        // Labels at end-of-code point one past the last instruction; that is
        // only legal if nothing jumps there, which the scheduler checks.
        self.module.symbols = self.label_ids;
        Ok(self.module)
    }

    fn emit_instr(&mut self, line: &str, ln: usize) -> Result<()> {
        let (mn, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (line, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let instrs = self.translate(mn, &ops, ln)?;
        for i in &instrs {
            check_reserved(i, ln)?;
        }
        self.module.instrs.extend(instrs);
        Ok(())
    }

    fn translate(&mut self, mn: &str, ops: &[&str], ln: usize) -> Result<Vec<Instr>> {
        let alu3 = |op: AluOp, s: &Self| -> Result<Vec<Instr>> {
            expect(ops.len() == 3, ln, "expected `rd, rs, rt`")?;
            Ok(vec![Instr::Alu {
                op,
                rd: s.reg(ops[0], ln)?,
                rs: s.reg(ops[1], ln)?,
                rt: s.reg(ops[2], ln)?,
            }])
        };
        let alui = |op: AluOp, s: &Self| -> Result<Vec<Instr>> {
            expect(ops.len() == 3, ln, "expected `rd, rs, imm`")?;
            Ok(vec![Instr::AluImm {
                op,
                rd: s.reg(ops[0], ln)?,
                rs: s.reg(ops[1], ln)?,
                imm: s.imm16(ops[2], ln)?,
            }])
        };
        let fieldi = |op: FieldOp, s: &Self| -> Result<Vec<Instr>> {
            expect(ops.len() == 4, ln, "expected `rd, rs, pos, width`")?;
            Ok(vec![Instr::FieldImm {
                op,
                rd: s.reg(ops[0], ln)?,
                rs: s.reg(ops[1], ln)?,
                pos: s.bitpos(ops[2], ln)?,
                width: s.bitwidth(ops[3], ln)?,
            }])
        };
        let brz = |cond: BrCond, s: &mut Self| -> Result<Vec<Instr>> {
            expect(ops.len() == 2, ln, "expected `rs, label`")?;
            Ok(vec![Instr::Branch {
                cond,
                rs: s.reg(ops[0], ln)?,
                rt: Reg::ZERO,
                target: s.label(ops[1], ln)?,
            }])
        };
        let br2 = |cond: BrCond, s: &mut Self| -> Result<Vec<Instr>> {
            expect(ops.len() == 3, ln, "expected `rs, rt, label`")?;
            Ok(vec![Instr::Branch {
                cond,
                rs: s.reg(ops[0], ln)?,
                rt: s.reg(ops[1], ln)?,
                target: s.label(ops[2], ln)?,
            }])
        };
        let ldst = |size: MemSize, load: bool, s: &Self| -> Result<Vec<Instr>> {
            expect(ops.len() == 2, ln, "expected `r, off(rs)`")?;
            let r = s.reg(ops[0], ln)?;
            let (off, base) = s.mem_operand(ops[1], ln)?;
            Ok(vec![if load {
                Instr::Load {
                    rd: r,
                    rs: base,
                    off,
                    size,
                }
            } else {
                Instr::Store {
                    rt: r,
                    rs: base,
                    off,
                    size,
                }
            }])
        };
        let send = |target: SendTarget, with_data: bool, s: &Self| -> Result<Vec<Instr>> {
            let (n, what) = match target {
                SendTarget::Processor => (3, "expected `rtype, raddr, raux`"),
                SendTarget::Network => (4, "expected `rtype, rdest, raddr, raux`"),
            };
            expect(ops.len() == n, ln, what)?;
            let rtype = s.reg(ops[0], ln)?;
            let (rdest, rest) = match target {
                SendTarget::Processor => (Reg::ZERO, &ops[1..]),
                SendTarget::Network => (s.reg(ops[1], ln)?, &ops[2..]),
            };
            Ok(vec![Instr::Send {
                target,
                with_data,
                rtype,
                rdest,
                raddr: s.reg(rest[0], ln)?,
                raux: s.reg(rest[1], ln)?,
            }])
        };

        match mn {
            "nop" => Ok(vec![Instr::Nop]),
            "add" => alu3(AluOp::Add, self),
            "sub" => alu3(AluOp::Sub, self),
            "and" => alu3(AluOp::And, self),
            "or" => alu3(AluOp::Or, self),
            "xor" => alu3(AluOp::Xor, self),
            "sll" => alu3(AluOp::Sll, self),
            "srl" => alu3(AluOp::Srl, self),
            "sra" => alu3(AluOp::Sra, self),
            "slt" => alu3(AluOp::Slt, self),
            "sltu" => alu3(AluOp::Sltu, self),
            "addi" => alui(AluOp::Add, self),
            "andi" => alui(AluOp::And, self),
            "ori" => alui(AluOp::Or, self),
            "xori" => alui(AluOp::Xor, self),
            "slli" => alui(AluOp::Sll, self),
            "srli" => alui(AluOp::Srl, self),
            "srai" => alui(AluOp::Sra, self),
            "slti" => alui(AluOp::Slt, self),
            "lui" => {
                expect(ops.len() == 2, ln, "expected `rd, imm`")?;
                let v = self.value(ops[1], ln)?;
                let imm = u16::try_from(v)
                    .map_err(|_| err(ln, format!("lui immediate {v} out of range")))?;
                Ok(vec![Instr::Lui {
                    rd: self.reg(ops[0], ln)?,
                    imm,
                }])
            }
            "andfi" => fieldi(FieldOp::AndMask, self),
            "andcfi" => fieldi(FieldOp::AndNotMask, self),
            "orfi" => fieldi(FieldOp::OrMask, self),
            "xorfi" => fieldi(FieldOp::XorMask, self),
            "bfext" | "bfins" => {
                expect(ops.len() == 4, ln, "expected `rd, rs, pos, width`")?;
                let rd = self.reg(ops[0], ln)?;
                let rs = self.reg(ops[1], ln)?;
                let pos = self.bitpos(ops[2], ln)?;
                let width = self.bitwidth(ops[3], ln)?;
                expect(pos as u32 + width as u32 <= 64, ln, "field exceeds 64 bits")?;
                Ok(vec![if mn == "bfext" {
                    Instr::BfExt { rd, rs, pos, width }
                } else {
                    Instr::BfIns { rd, rs, pos, width }
                }])
            }
            "ffs" => {
                expect(ops.len() == 2, ln, "expected `rd, rs`")?;
                Ok(vec![Instr::Ffs {
                    rd: self.reg(ops[0], ln)?,
                    rs: self.reg(ops[1], ln)?,
                }])
            }
            "ld" => ldst(MemSize::Double, true, self),
            "lw" => ldst(MemSize::Word, true, self),
            "sd" => ldst(MemSize::Double, false, self),
            "sw" => ldst(MemSize::Word, false, self),
            "beq" => br2(BrCond::Eq, self),
            "bne" => br2(BrCond::Ne, self),
            "bltz" => brz(BrCond::Ltz, self),
            "bgez" => brz(BrCond::Gez, self),
            "blez" => brz(BrCond::Lez, self),
            "bgtz" => brz(BrCond::Gtz, self),
            "bbs" | "bbc" => {
                expect(ops.len() == 3, ln, "expected `rs, bit, label`")?;
                Ok(vec![Instr::BranchBit {
                    set: mn == "bbs",
                    rs: self.reg(ops[0], ln)?,
                    bit: self.bitpos(ops[1], ln)?,
                    target: self.label(ops[2], ln)?,
                }])
            }
            "j" | "b" => {
                expect(ops.len() == 1, ln, "expected `label`")?;
                Ok(vec![Instr::Jump {
                    target: self.label(ops[0], ln)?,
                }])
            }
            "mfmsg" => {
                expect(ops.len() == 2, ln, "expected `rd, field`")?;
                let f = self.value(ops[1], ln)?;
                expect((0..=15).contains(&f), ln, "message field must be 0..=15")?;
                Ok(vec![Instr::MfMsg {
                    rd: self.reg(ops[0], ln)?,
                    field: f as u8,
                }])
            }
            "sendp" => send(SendTarget::Processor, false, self),
            "sendpd" => send(SendTarget::Processor, true, self),
            "sendn" => send(SendTarget::Network, false, self),
            "sendnd" => send(SendTarget::Network, true, self),
            "memrd" | "memwr" => {
                expect(ops.len() == 1, ln, "expected `raddr`")?;
                Ok(vec![Instr::MemOp {
                    kind: if mn == "memrd" {
                        MemOpKind::ReadLine
                    } else {
                        MemOpKind::WriteLine
                    },
                    raddr: self.reg(ops[0], ln)?,
                }])
            }
            "switch" => {
                expect(ops.is_empty(), ln, "switch takes no operands")?;
                Ok(vec![Instr::Switch])
            }
            "move" => {
                expect(ops.len() == 2, ln, "expected `rd, rs`")?;
                Ok(vec![Instr::Alu {
                    op: AluOp::Add,
                    rd: self.reg(ops[0], ln)?,
                    rs: self.reg(ops[1], ln)?,
                    rt: Reg::ZERO,
                }])
            }
            "li" => {
                expect(ops.len() == 2, ln, "expected `rd, imm`")?;
                let rd = self.reg(ops[0], ln)?;
                let v = self.value(ops[1], ln)?;
                expand_li(rd, v, ln)
            }
            _ => Err(err(ln, format!("unknown mnemonic `{mn}`"))),
        }
    }

    fn reg(&self, tok: &str, ln: usize) -> Result<Reg> {
        if tok == "zero" {
            return Ok(Reg::ZERO);
        }
        let n = tok
            .strip_prefix('r')
            .and_then(|s| s.parse::<u8>().ok())
            .filter(|&n| n < 32)
            .ok_or_else(|| err(ln, format!("invalid register `{tok}`")))?;
        Ok(Reg(n))
    }

    fn value(&self, tok: &str, ln: usize) -> Result<i64> {
        parse_value(tok, ln, &self.equs)
    }

    fn imm16(&self, tok: &str, ln: usize) -> Result<i16> {
        let v = self.value(tok, ln)?;
        i16::try_from(v)
            .or_else(|_| {
                // Allow unsigned 16-bit constants for logical immediates.
                u16::try_from(v).map(|u| u as i16)
            })
            .map_err(|_| err(ln, format!("immediate {v} does not fit in 16 bits")))
    }

    fn bitpos(&self, tok: &str, ln: usize) -> Result<u8> {
        let v = self.value(tok, ln)?;
        if (0..64).contains(&v) {
            Ok(v as u8)
        } else {
            Err(err(ln, format!("bit position {v} out of range 0..64")))
        }
    }

    fn bitwidth(&self, tok: &str, ln: usize) -> Result<u8> {
        let v = self.value(tok, ln)?;
        if (1..=64).contains(&v) {
            Ok(v as u8)
        } else {
            Err(err(ln, format!("field width {v} out of range 1..=64")))
        }
    }

    fn label(&mut self, tok: &str, ln: usize) -> Result<Label> {
        self.label_ids
            .get(tok)
            .copied()
            .ok_or_else(|| err(ln, format!("undefined label `{tok}`")))
    }

    fn mem_operand(&self, tok: &str, ln: usize) -> Result<(i16, Reg)> {
        let open = tok
            .find('(')
            .ok_or_else(|| err(ln, format!("expected `off(reg)`, got `{tok}`")))?;
        let close = tok
            .rfind(')')
            .filter(|&c| c > open)
            .ok_or_else(|| err(ln, format!("unbalanced parens in `{tok}`")))?;
        let off_str = tok[..open].trim();
        let off = if off_str.is_empty() {
            0
        } else {
            self.imm16(off_str, ln)?
        };
        let base = self.reg(tok[open + 1..close].trim(), ln)?;
        Ok((off, base))
    }
}

fn expand_li(rd: Reg, v: i64, ln: usize) -> Result<Vec<Instr>> {
    if let Ok(imm) = i16::try_from(v) {
        return Ok(vec![Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs: Reg::ZERO,
            imm,
        }]);
    }
    if let Ok(u) = u32::try_from(v) {
        let hi = (u >> 16) as u16;
        let lo = (u & 0xffff) as u16;
        let mut out = vec![Instr::Lui { rd, imm: hi }];
        if lo != 0 {
            out.push(Instr::AluImm {
                op: AluOp::Or,
                rd,
                rs: rd,
                imm: lo as i16,
            });
        }
        return Ok(out);
    }
    Err(err(ln, format!("li immediate {v} wider than 32 bits")))
}

fn check_reserved(i: &Instr, ln: usize) -> Result<()> {
    let uses_temp = |r: Reg| r == TEMP0 || r == TEMP1;
    if i.dest().is_some_and(uses_temp) {
        return Err(err(ln, "r29/r30 are reserved assembler temporaries"));
    }
    let (srcs, n) = i.sources();
    if srcs[..n].iter().flatten().any(|&r| uses_temp(r)) {
        return Err(err(ln, "r29/r30 are reserved assembler temporaries"));
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find([';', '#']).unwrap_or(line.len());
    &line[..cut]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_equ(rest: &str, ln: usize, equs: &BTreeMap<String, i64>) -> Result<(String, i64)> {
    let (name, val) = rest
        .split_once(',')
        .ok_or_else(|| err(ln, "expected `.equ NAME, value`"))?;
    let name = name.trim();
    if !is_ident(name) {
        return Err(err(ln, format!("invalid constant name `{name}`")));
    }
    Ok((name.to_string(), parse_value(val.trim(), ln, equs)?))
}

fn parse_value(tok: &str, ln: usize, equs: &BTreeMap<String, i64>) -> Result<i64> {
    if let Some(v) = equs.get(tok) {
        return Ok(*v);
    }
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let parsed = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2).ok()
    } else {
        body.parse::<i64>().ok()
    };
    match parsed {
        Some(v) => Ok(if neg { -v } else { v }),
        None => Err(err(ln, format!("cannot parse value `{tok}`"))),
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn expect(cond: bool, line: usize, msg: &str) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(err(line, msg.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Module {
        assemble(src).expect("assembly failed")
    }

    #[test]
    fn basic_program() {
        let m = asm("start:\n  addi r1, r0, 5\n  add r2, r1, r1\n  switch\n");
        assert_eq!(m.instrs.len(), 3);
        assert_eq!(m.label_target(m.symbols["start"]), 0);
    }

    #[test]
    fn comments_and_blank_lines() {
        let m = asm("; header\nstart: # trailing\n\n  nop ; mid\n  switch\n");
        assert_eq!(m.instrs.len(), 2);
    }

    #[test]
    fn equ_constants() {
        let m = asm(".equ FIVE, 5\n.equ ALSO, FIVE\ns:\n  addi r1, r0, ALSO\n  switch\n");
        assert_eq!(
            m.instrs[0],
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs: Reg(0),
                imm: 5
            }
        );
    }

    #[test]
    fn forward_and_backward_labels() {
        let m = asm("s:\n  j end\nmid:\n  bbs r1, 3, s\nend:\n  switch\n");
        assert_eq!(m.label_target(m.symbols["end"]), 2);
        match m.instrs[0] {
            Instr::Jump { target } => assert_eq!(m.label_target(target), 2),
            ref other => panic!("expected jump, got {other:?}"),
        }
    }

    #[test]
    fn memory_operands() {
        let m = asm("s:\n  ld r4, 8(r2)\n  sd r4, (r2)\n  lw r5, -4(r3)\n  switch\n");
        assert_eq!(
            m.instrs[0],
            Instr::Load {
                rd: Reg(4),
                rs: Reg(2),
                off: 8,
                size: MemSize::Double
            }
        );
        assert_eq!(
            m.instrs[1],
            Instr::Store {
                rt: Reg(4),
                rs: Reg(2),
                off: 0,
                size: MemSize::Double
            }
        );
        assert_eq!(
            m.instrs[2],
            Instr::Load {
                rd: Reg(5),
                rs: Reg(3),
                off: -4,
                size: MemSize::Word
            }
        );
    }

    #[test]
    fn li_expansion() {
        let m = asm("s:\n  li r1, 100\n  li r2, 0x12345\n  li r3, 0x10000\n  switch\n");
        assert_eq!(
            m.instrs[0],
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs: Reg(0),
                imm: 100
            }
        );
        assert_eq!(m.instrs[1], Instr::Lui { rd: Reg(2), imm: 1 });
        assert_eq!(
            m.instrs[2],
            Instr::AluImm {
                op: AluOp::Or,
                rd: Reg(2),
                rs: Reg(2),
                imm: 0x2345
            }
        );
        // 0x10000 needs no trailing ori.
        assert_eq!(m.instrs[3], Instr::Lui { rd: Reg(3), imm: 1 });
        assert_eq!(m.instrs[4], Instr::Switch);
    }

    #[test]
    fn sends_and_memops() {
        let m = asm("s:\n  sendp r1, r2, r3\n  sendnd r1, r4, r2, r3\n  memrd r2\n  switch\n");
        assert_eq!(
            m.instrs[0],
            Instr::Send {
                target: SendTarget::Processor,
                with_data: false,
                rtype: Reg(1),
                rdest: Reg::ZERO,
                raddr: Reg(2),
                raux: Reg(3)
            }
        );
        assert_eq!(
            m.instrs[1],
            Instr::Send {
                target: SendTarget::Network,
                with_data: true,
                rtype: Reg(1),
                rdest: Reg(4),
                raddr: Reg(2),
                raux: Reg(3)
            }
        );
        assert_eq!(
            m.instrs[2],
            Instr::MemOp {
                kind: MemOpKind::ReadLine,
                raddr: Reg(2)
            }
        );
    }

    #[test]
    fn specials_parse() {
        let m = asm("s:\n  bfext r1, r2, 4, 8\n  bfins r1, r2, 4, 8\n  ffs r1, r2\n  andfi r1, r2, 0, 12\n  bbs r1, 63, s\n  switch\n");
        assert!(m.instrs[0].is_special());
        assert!(m.instrs[1].is_special());
        assert!(m.instrs[2].is_special());
        assert!(m.instrs[3].is_special());
        assert!(m.instrs[4].is_special());
    }

    #[test]
    fn error_cases() {
        assert!(assemble("s:\n  frobnicate r1\n").is_err());
        assert!(assemble("s:\n  addi r1, r0, 99999\n").is_err());
        assert!(assemble("s:\n  j nowhere\n").is_err());
        assert!(assemble("s:\n  addi r40, r0, 1\n").is_err());
        assert!(assemble("s:\ns:\n  nop\n").is_err());
        assert!(assemble("dangling:\n").is_ok()); // label at end is fine
        let e = assemble("s:\n  addi r29, r0, 1\n").unwrap_err();
        assert!(e.message.contains("reserved"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unsigned_16bit_logical_immediates() {
        let m = asm("s:\n  andi r1, r2, 0xffff\n  switch\n");
        match m.instrs[0] {
            Instr::AluImm { imm, .. } => assert_eq!(imm as u16, 0xffff),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_display_includes_line() {
        let e = assemble("s:\n  bogus\n").unwrap_err();
        assert_eq!(e.to_string(), "line 2: unknown mnemonic `bogus`");
    }
}
