//! Property test: static dual-issue scheduling preserves program
//! semantics. For random (terminating) PP programs, the dual-issue
//! schedule must leave memory, effects, and message output identical to
//! the single-issue schedule — the PP has no interlocks, so any pairing
//! the scheduler emits must already be hazard-free.

use flash_pp::asm::assemble;
use flash_pp::emu::{run, FlatEnv, DEFAULT_PAIR_BUDGET};
use flash_pp::sched::{schedule, SchedOptions};
use proptest::prelude::*;

/// One random instruction in a forward-branching (always terminating)
/// program.
#[derive(Debug, Clone)]
enum RandInstr {
    AluImm {
        op: &'static str,
        rd: u8,
        rs: u8,
        imm: i16,
    },
    Alu {
        op: &'static str,
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Field {
        op: &'static str,
        rd: u8,
        rs: u8,
        pos: u8,
        width: u8,
    },
    Ffs {
        rd: u8,
        rs: u8,
    },
    Load {
        rd: u8,
        base_slot: u8,
    },
    Store {
        rt: u8,
        base_slot: u8,
    },
    BranchFwd {
        rs: u8,
        rt: u8,
        eq: bool,
    },
    BranchBitFwd {
        rs: u8,
        bit: u8,
        set: bool,
    },
    MfMsg {
        rd: u8,
        field: u8,
    },
    Send {
        rtype: u8,
        raddr: u8,
        raux: u8,
    },
}

fn reg_strategy() -> impl Strategy<Value = u8> {
    // r0..r27 (r29/r30 reserved; leave r28 for the base pointer).
    0u8..27
}

fn instr_strategy() -> impl Strategy<Value = RandInstr> {
    prop_oneof![
        4 => ("add|and|or|xor|slt", reg_strategy(), reg_strategy(), -200i16..200)
            .prop_map(|(op, rd, rs, imm)| RandInstr::AluImm { op: leak(op), rd, rs, imm }),
        3 => ("add|sub|and|or|xor|sll|srl", reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs, rt)| RandInstr::Alu { op: leak(op), rd, rs, rt }),
        2 => ("andfi|andcfi|orfi|xorfi|bfext|bfins", reg_strategy(), reg_strategy(), 0u8..50, 1u8..14)
            .prop_map(|(op, rd, rs, pos, width)| RandInstr::Field { op: leak(op), rd, rs, pos, width }),
        1 => (reg_strategy(), reg_strategy()).prop_map(|(rd, rs)| RandInstr::Ffs { rd, rs }),
        2 => (reg_strategy(), 0u8..8).prop_map(|(rd, base_slot)| RandInstr::Load { rd, base_slot }),
        2 => (reg_strategy(), 0u8..8).prop_map(|(rt, base_slot)| RandInstr::Store { rt, base_slot }),
        1 => (reg_strategy(), reg_strategy(), any::<bool>())
            .prop_map(|(rs, rt, eq)| RandInstr::BranchFwd { rs, rt, eq }),
        1 => (reg_strategy(), 0u8..63, any::<bool>())
            .prop_map(|(rs, bit, set)| RandInstr::BranchBitFwd { rs, bit, set }),
        1 => (reg_strategy(), 0u8..8).prop_map(|(rd, field)| RandInstr::MfMsg { rd, field }),
        1 => (reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(rtype, raddr, raux)| RandInstr::Send { rtype, raddr, raux }),
    ]
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// Renders the random program as assembly. Branches always jump to the
/// next numbered label (strictly forward), so the program terminates.
fn render(prog: &[RandInstr]) -> String {
    let mut s = String::from("entry:\n");
    // r28 = aligned base pointer for loads/stores (slots 0..8 at 8-byte
    // alignment inside a 128-byte scratch area).
    s.push_str("  addi r28, r0, 256\n");
    for (i, ins) in prog.iter().enumerate() {
        use std::fmt::Write;
        match ins {
            RandInstr::AluImm { op, rd, rs, imm } => {
                let _ = writeln!(s, "  {op}i r{rd}, r{rs}, {imm}");
            }
            RandInstr::Alu { op, rd, rs, rt } => {
                let _ = writeln!(s, "  {op} r{rd}, r{rs}, r{rt}");
            }
            RandInstr::Field {
                op,
                rd,
                rs,
                pos,
                width,
            } => {
                let _ = writeln!(s, "  {op} r{rd}, r{rs}, {pos}, {width}");
            }
            RandInstr::Ffs { rd, rs } => {
                let _ = writeln!(s, "  ffs r{rd}, r{rs}");
            }
            RandInstr::Load { rd, base_slot } => {
                let _ = writeln!(s, "  ld r{rd}, {}(r28)", base_slot * 8);
            }
            RandInstr::Store { rt, base_slot } => {
                let _ = writeln!(s, "  sd r{rt}, {}(r28)", base_slot * 8);
            }
            RandInstr::BranchFwd { rs, rt, eq } => {
                let m = if *eq { "beq" } else { "bne" };
                let _ = writeln!(s, "  {m} r{rs}, r{rt}, l{i}");
                let _ = writeln!(s, "l{i}:");
            }
            RandInstr::BranchBitFwd { rs, bit, set } => {
                let m = if *set { "bbs" } else { "bbc" };
                let _ = writeln!(s, "  {m} r{rs}, {bit}, l{i}");
                let _ = writeln!(s, "l{i}:");
            }
            RandInstr::MfMsg { rd, field } => {
                let _ = writeln!(s, "  mfmsg r{rd}, {field}");
            }
            RandInstr::Send { rtype, raddr, raux } => {
                let _ = writeln!(s, "  sendp r{rtype}, r{raddr}, r{raux}");
            }
        }
    }
    // Dump every register to memory so the comparison sees all state.
    for r in 0..27 {
        use std::fmt::Write;
        let _ = writeln!(s, "  sd r{r}, {}(r28)", 64 + r * 8);
    }
    s.push_str("  switch\n");
    s
}

fn run_schedule(src: &str, opts: SchedOptions) -> (Vec<u8>, Vec<String>, u64) {
    let module = assemble(src).expect("random program assembles");
    let program = schedule(&module, opts);
    let mut env = FlatEnv::new(1024);
    for f in 0..16 {
        env.fields[f] = (f as u64) * 0x1111;
    }
    let out = run(
        &program,
        program.entry("entry").unwrap(),
        &mut env,
        DEFAULT_PAIR_BUDGET,
    )
    .expect("random program runs");
    let mem: Vec<u8> = (0..1024 / 8).map(|i| env.peek64(i * 8) as u8).collect();
    let effects: Vec<String> = out
        .effects
        .iter()
        .map(|e| format!("{:?}", e.kind))
        .collect();
    (mem, effects, out.exec_cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dual_issue_schedule_preserves_semantics(
        prog in proptest::collection::vec(instr_strategy(), 1..40),
    ) {
        let src = render(&prog);
        let (mem_s, eff_s, cyc_s) = run_schedule(&src, SchedOptions::single_issue());
        let (mem_d, eff_d, cyc_d) = run_schedule(&src, SchedOptions::magic());
        prop_assert_eq!(mem_s, mem_d, "memory state diverged\n{}", src);
        prop_assert_eq!(eff_s, eff_d, "effect stream diverged\n{}", src);
        prop_assert!(cyc_d <= cyc_s, "dual-issue slower than single-issue");
    }

    #[test]
    fn dlx_expansion_preserves_semantics_on_random_programs(
        prog in proptest::collection::vec(instr_strategy(), 1..30),
    ) {
        let src = render(&prog);
        let module = assemble(&src).unwrap();
        let expanded = flash_pp::dlx::expand_specials(&module);
        prop_assert!(!flash_pp::dlx::has_specials(&expanded));
        let p1 = schedule(&module, SchedOptions::magic());
        let p2 = schedule(&expanded, SchedOptions::single_issue());
        let run_one = |p: &flash_pp::Program| {
            let mut env = FlatEnv::new(1024);
            for f in 0..16 {
                env.fields[f] = (f as u64) * 0x2222;
            }
            let out = run(p, p.entry("entry").unwrap(), &mut env, DEFAULT_PAIR_BUDGET).unwrap();
            let mem: Vec<u64> = (0..1024 / 8).map(|i| env.peek64(i * 8)).collect();
            let eff: Vec<String> = out.effects.iter().map(|e| format!("{:?}", e.kind)).collect();
            (mem, eff)
        };
        let (m1, e1) = run_one(&p1);
        let (m2, e2) = run_one(&p2);
        prop_assert_eq!(m1, m2, "expansion changed memory state\n{}", src);
        prop_assert_eq!(e1, e2, "expansion changed effects\n{}", src);
    }
}
