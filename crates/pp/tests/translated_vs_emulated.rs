//! Property test: the translated fast path is bit-identical to the
//! reference emulator. For random PP programs — terminating and
//! diverging, under generous and starved pair budgets, on both schedule
//! flavours — the translated backend must reproduce the emulator's
//! `Result` exactly (including error values), the same `RunStats`, the
//! same `TimedEffect` timeline with the same cycle offsets, the same
//! final memory image, and the same sequence of environment calls.

use flash_pp::emu::{self, EffectSink, Env, FlatEnv, MdcMiss, Regs, DEFAULT_PAIR_BUDGET};
use flash_pp::isa::MemSize;
use flash_pp::sched::{schedule, SchedOptions};
use flash_pp::translate::Translated;
use flash_pp::{assemble, Program};
use proptest::prelude::*;
use std::sync::Arc;

/// Wraps an [`Env`] and records every call, so the comparison pins the
/// environment-visible behaviour (ordering and arguments), not just the
/// final state.
struct LogEnv<E> {
    inner: E,
    log: Vec<String>,
}

impl<E> LogEnv<E> {
    fn new(inner: E) -> Self {
        LogEnv {
            inner,
            log: Vec::new(),
        }
    }
}

impl<E: Env> Env for LogEnv<E> {
    fn load(&mut self, addr: u64, size: MemSize) -> (u64, Option<MdcMiss>) {
        let r = self.inner.load(addr, size);
        self.log.push(format!("load {addr} {size:?} -> {r:?}"));
        r
    }

    fn store(&mut self, addr: u64, val: u64, size: MemSize) -> Option<MdcMiss> {
        let r = self.inner.store(addr, val, size);
        self.log
            .push(format!("store {addr} {val} {size:?} -> {r:?}"));
        r
    }

    fn msg_field(&mut self, field: u8) -> u64 {
        let v = self.inner.msg_field(field);
        self.log.push(format!("mfmsg {field} -> {v}"));
        v
    }
}

/// One random instruction in a forward-branching program (same shape as
/// the scheduler-equivalence suite).
#[derive(Debug, Clone)]
enum RandInstr {
    AluImm {
        op: &'static str,
        rd: u8,
        rs: u8,
        imm: i16,
    },
    Alu {
        op: &'static str,
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Field {
        op: &'static str,
        rd: u8,
        rs: u8,
        pos: u8,
        width: u8,
    },
    Ffs {
        rd: u8,
        rs: u8,
    },
    Load {
        rd: u8,
        base_slot: u8,
    },
    Store {
        rt: u8,
        base_slot: u8,
    },
    BranchFwd {
        rs: u8,
        rt: u8,
        eq: bool,
    },
    BranchBitFwd {
        rs: u8,
        bit: u8,
        set: bool,
    },
    MfMsg {
        rd: u8,
        field: u8,
    },
    Send {
        rtype: u8,
        raddr: u8,
        raux: u8,
    },
    MemRd {
        raddr: u8,
    },
}

fn reg_strategy() -> impl Strategy<Value = u8> {
    0u8..27
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

fn instr_strategy() -> impl Strategy<Value = RandInstr> {
    prop_oneof![
        4 => ("add|and|or|xor|slt", reg_strategy(), reg_strategy(), -200i16..200)
            .prop_map(|(op, rd, rs, imm)| RandInstr::AluImm { op: leak(op), rd, rs, imm }),
        3 => ("add|sub|and|or|xor|sll|srl", reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs, rt)| RandInstr::Alu { op: leak(op), rd, rs, rt }),
        2 => ("andfi|andcfi|orfi|xorfi|bfext|bfins", reg_strategy(), reg_strategy(), 0u8..50, 1u8..14)
            .prop_map(|(op, rd, rs, pos, width)| RandInstr::Field { op: leak(op), rd, rs, pos, width }),
        1 => (reg_strategy(), reg_strategy()).prop_map(|(rd, rs)| RandInstr::Ffs { rd, rs }),
        2 => (reg_strategy(), 0u8..8).prop_map(|(rd, base_slot)| RandInstr::Load { rd, base_slot }),
        2 => (reg_strategy(), 0u8..8).prop_map(|(rt, base_slot)| RandInstr::Store { rt, base_slot }),
        1 => (reg_strategy(), reg_strategy(), any::<bool>())
            .prop_map(|(rs, rt, eq)| RandInstr::BranchFwd { rs, rt, eq }),
        1 => (reg_strategy(), 0u8..63, any::<bool>())
            .prop_map(|(rs, bit, set)| RandInstr::BranchBitFwd { rs, bit, set }),
        1 => (reg_strategy(), 0u8..8).prop_map(|(rd, field)| RandInstr::MfMsg { rd, field }),
        1 => (reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(rtype, raddr, raux)| RandInstr::Send { rtype, raddr, raux }),
        1 => reg_strategy().prop_map(|raddr| RandInstr::MemRd { raddr }),
    ]
}

/// Renders assembly. `diverge` replaces the final `switch` with a jump
/// back to entry, turning the program into a budget-exhaustion probe.
fn render(prog: &[RandInstr], diverge: bool) -> String {
    use std::fmt::Write;
    let mut s = String::from("entry:\n  addi r28, r0, 256\n");
    for (i, ins) in prog.iter().enumerate() {
        match ins {
            RandInstr::AluImm { op, rd, rs, imm } => {
                let _ = writeln!(s, "  {op}i r{rd}, r{rs}, {imm}");
            }
            RandInstr::Alu { op, rd, rs, rt } => {
                let _ = writeln!(s, "  {op} r{rd}, r{rs}, r{rt}");
            }
            RandInstr::Field {
                op,
                rd,
                rs,
                pos,
                width,
            } => {
                let _ = writeln!(s, "  {op} r{rd}, r{rs}, {pos}, {width}");
            }
            RandInstr::Ffs { rd, rs } => {
                let _ = writeln!(s, "  ffs r{rd}, r{rs}");
            }
            RandInstr::Load { rd, base_slot } => {
                let _ = writeln!(s, "  ld r{rd}, {}(r28)", base_slot * 8);
            }
            RandInstr::Store { rt, base_slot } => {
                let _ = writeln!(s, "  sd r{rt}, {}(r28)", base_slot * 8);
            }
            RandInstr::BranchFwd { rs, rt, eq } => {
                let m = if *eq { "beq" } else { "bne" };
                let _ = writeln!(s, "  {m} r{rs}, r{rt}, l{i}");
                let _ = writeln!(s, "l{i}:");
            }
            RandInstr::BranchBitFwd { rs, bit, set } => {
                let m = if *set { "bbs" } else { "bbc" };
                let _ = writeln!(s, "  {m} r{rs}, {bit}, l{i}");
                let _ = writeln!(s, "l{i}:");
            }
            RandInstr::MfMsg { rd, field } => {
                let _ = writeln!(s, "  mfmsg r{rd}, {field}");
            }
            RandInstr::Send { rtype, raddr, raux } => {
                let _ = writeln!(s, "  sendp r{rtype}, r{raddr}, r{raux}");
            }
            RandInstr::MemRd { raddr } => {
                let _ = writeln!(s, "  memrd r{raddr}");
            }
        }
    }
    if diverge {
        s.push_str("  j entry\n");
    } else {
        s.push_str("  switch\n");
    }
    s
}

fn fresh_env() -> LogEnv<FlatEnv> {
    let mut inner = FlatEnv::new(1024);
    for f in 0..16 {
        inner.fields[f] = (f as u64).wrapping_mul(0x1111) ^ 0xbeef;
    }
    LogEnv::new(inner)
}

/// Runs one program under both backends and asserts total agreement.
fn assert_backends_agree(program: &Arc<Program>, entry: usize, budget: u64, src: &str) {
    let translated = Translated::new(program.clone());
    assert!(
        translated.fully_translated(),
        "scheduler output must fully translate\n{src}"
    );

    let mut env_e = fresh_env();
    let mut regs_e = Regs::new();
    let mut sink_e = EffectSink::new();
    let res_e = emu::run_into(program, entry, &mut env_e, budget, &mut regs_e, &mut sink_e);

    let mut env_t = fresh_env();
    let mut regs_t = Regs::new();
    let mut sink_t = EffectSink::new();
    let res_t = translated.run_into(entry, &mut env_t, budget, &mut regs_t, &mut sink_t);

    assert_eq!(res_e, res_t, "result diverged (budget {budget})\n{src}");
    assert_eq!(
        env_e.log, env_t.log,
        "environment call sequence diverged (budget {budget})\n{src}"
    );
    if res_e.is_ok() {
        assert_eq!(
            sink_e.effects(),
            sink_t.effects(),
            "effect timeline diverged\n{src}"
        );
        for slot in 0..128 {
            assert_eq!(
                env_e.inner.peek64(slot * 8),
                env_t.inner.peek64(slot * 8),
                "memory diverged at slot {slot}\n{src}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Terminating programs under a generous budget, both schedules.
    #[test]
    fn random_programs_agree(
        prog in proptest::collection::vec(instr_strategy(), 1..40),
        dual in any::<bool>(),
    ) {
        let src = render(&prog, false);
        let module = assemble(&src).unwrap();
        let opts = if dual { SchedOptions::magic() } else { SchedOptions::single_issue() };
        let program = Arc::new(schedule(&module, opts));
        let entry = program.entry("entry").unwrap();
        assert_backends_agree(&program, entry, DEFAULT_PAIR_BUDGET, &src);
    }

    /// Starved budgets over both terminating and diverging programs: the
    /// exact `RanAway`/`BadPc`/success boundary must match pair-for-pair.
    #[test]
    fn random_budgets_agree(
        prog in proptest::collection::vec(instr_strategy(), 1..20),
        diverge in any::<bool>(),
        budget in 0u64..64,
    ) {
        let src = render(&prog, diverge);
        let module = assemble(&src).unwrap();
        let program = Arc::new(schedule(&module, SchedOptions::magic()));
        let entry = program.entry("entry").unwrap();
        assert_backends_agree(&program, entry, budget, &src);
    }
}

/// Every pair budget across a whole small program: sweeps the budget
/// boundary over every block of a loop, catching off-by-one drift in the
/// fast path's block-level budget guard.
#[test]
fn budget_sweep_over_loop() {
    let src = "entry:
  addi r1, r0, 4
  addi r28, r0, 256
loop:
  sd r1, 0(r28)
  addi r1, r1, -1
  bgtz r1, loop
  mfmsg r2, 3
  sendp r2, r1, r2
  switch
";
    let module = assemble(src).unwrap();
    let program = Arc::new(schedule(&module, SchedOptions::magic()));
    let entry = program.entry("entry").unwrap();
    let max = 4 * program.pairs.len() as u64 + 4;
    for budget in 0..max {
        assert_backends_agree(&program, entry, budget, src);
    }
}
