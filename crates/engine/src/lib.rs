//! Deterministic discrete-event simulation substrate for the FLASH
//! reproduction.
//!
//! This crate provides the building blocks shared by every other crate in
//! the workspace:
//!
//! * [`Cycle`] — simulation time measured in 10 ns system clock cycles,
//!   the unit used throughout the paper.
//! * [`EventQueue`] — a deterministic time-ordered event queue (FIFO among
//!   events scheduled for the same cycle).
//! * [`BoundedQueue`] — a queue with an optional capacity limit that tracks
//!   backpressure, modelling the MAGIC resource limits of paper Table 3.1.
//! * [`OccupancyTracker`] — accumulates busy time for a serially reusable
//!   resource (the PP, the memory controller) so that occupancy percentages
//!   like those of paper Tables 4.1/4.2 can be reported.
//! * [`DetRng`] — seeded, stream-split random numbers so simulations are
//!   reproducible bit-for-bit.
//! * [`Addr`] / [`NodeId`] / [`ProcId`] — newtypes for physical addresses
//!   and node identifiers.
//!
//! # Examples
//!
//! ```
//! use flash_engine::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle::new(5), "later");
//! q.push(Cycle::new(2), "sooner");
//! assert_eq!(q.pop(), Some((Cycle::new(2), "sooner")));
//! assert_eq!(q.pop(), Some((Cycle::new(5), "later")));
//! ```

#![deny(missing_docs)]

pub mod addr;
pub mod event;
pub mod fasthash;
pub mod json;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use addr::{Addr, LINE_BYTES, LINE_SHIFT};
pub use event::EventQueue;
pub use fasthash::{FastBuild, FastHasher, FastMap, FastSet};
pub use queue::BoundedQueue;
pub use rng::DetRng;
pub use stats::{
    Counter, Histogram, LatencySplit, LogHist, OccupancyTracker, Segment, LOG_HIST_BUCKETS,
    LOG_HIST_SUB, LOG_HIST_SUB_BITS, SEGMENT_COUNT,
};
pub use time::Cycle;

/// Identifier of a FLASH node (one MAGIC chip, one processor, one memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a compute processor. FLASH has one processor per node, so
/// this is numerically identical to [`NodeId`], but the distinction keeps
/// workload code (which thinks in processors) separate from machine code
/// (which thinks in nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub u16);

impl ProcId {
    /// Index into per-processor arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The node hosting this processor (1:1 in FLASH).
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<NodeId> for ProcId {
    fn from(n: NodeId) -> Self {
        ProcId(n.0)
    }
}
