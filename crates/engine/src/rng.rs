//! Deterministic random-number streams.
//!
//! Every stochastic element of the simulation (workload generators, the OS
//! model) draws from a [`DetRng`] derived from the run seed plus a stream
//! identifier, so that a given configuration reproduces bit-identical
//! results regardless of the order in which components are constructed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded deterministic random-number generator.
///
/// # Examples
///
/// ```
/// use flash_engine::DetRng;
///
/// let mut a = DetRng::for_stream(42, 7);
/// let mut b = DetRng::for_stream(42, 7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = DetRng::for_stream(42, 8);
/// // Different streams diverge (overwhelmingly likely).
/// assert_ne!(a.next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator for (run seed, stream id).
    ///
    /// Streams with the same seed but different ids are statistically
    /// independent (the pair is mixed through SplitMix64 before seeding).
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        let mixed = splitmix64(splitmix64(seed) ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        DetRng {
            inner: SmallRng::seed_from_u64(mixed),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.random_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.random()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Geometric-ish positive integer with the given mean (at least 1).
    ///
    /// Used to model variable "busy" gaps between memory references.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let u = self.unit().max(1e-12);
        let v = (-u.ln() * (mean - 1.0)).round() as u64;
        1 + v
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_stream() {
        let seq =
            |seed, stream| -> Vec<u64> { (0..8).map(|_| DetRng::for_stream(seed, stream).next_u64()).collect() };
        assert_eq!(seq(1, 0), seq(1, 0));
        assert_ne!(seq(1, 0), seq(1, 1));
        assert_ne!(seq(1, 0), seq(2, 0));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::for_stream(3, 3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::for_stream(9, 0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }

    #[test]
    fn geometric_mean_roughly_matches() {
        let mut r = DetRng::for_stream(5, 5);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(8.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut r = DetRng::for_stream(5, 6);
        for _ in 0..100 {
            assert!(r.geometric(0.5) >= 1);
        }
    }
}
