//! Deterministic random-number streams.
//!
//! Every stochastic element of the simulation (workload generators, the OS
//! model) draws from a [`DetRng`] derived from the run seed plus a stream
//! identifier, so that a given configuration reproduces bit-identical
//! results regardless of the order in which components are constructed.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 — no external dependency, identical output
//! on every platform, and fast enough to disappear from the simulator's
//! profile.

/// A seeded deterministic random-number generator (xoshiro256++).
///
/// # Examples
///
/// ```
/// use flash_engine::DetRng;
///
/// let mut a = DetRng::for_stream(42, 7);
/// let mut b = DetRng::for_stream(42, 7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = DetRng::for_stream(42, 8);
/// // Different streams diverge (overwhelmingly likely).
/// assert_ne!(a.next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator for (run seed, stream id).
    ///
    /// Streams with the same seed but different ids are statistically
    /// independent (the pair is mixed through SplitMix64 before the
    /// state expansion, and the state words come from successive
    /// SplitMix64 outputs as the xoshiro authors recommend).
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        let mut mix = splitmix64(splitmix64(seed) ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut s = [0u64; 4];
        for w in &mut s {
            mix = splitmix64(mix);
            *w = mix;
        }
        // xoshiro256++ must not start from the all-zero state; SplitMix64
        // makes that astronomically unlikely, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Lemire-style widening multiply with a single rejection loop, so
    /// the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` (53 high bits of the raw output).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Geometric-ish positive integer with the given mean (at least 1).
    ///
    /// Used to model variable "busy" gaps between memory references.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let u = self.unit().max(1e-12);
        let v = (-u.ln() * (mean - 1.0)).round() as u64;
        1 + v
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_stream() {
        let seq = |seed, stream| -> Vec<u64> {
            let mut r = DetRng::for_stream(seed, stream);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(seq(1, 0), seq(1, 0));
        assert_ne!(seq(1, 0), seq(1, 1));
        assert_ne!(seq(1, 0), seq(2, 0));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::for_stream(3, 3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = DetRng::for_stream(11, 0);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some residues never drawn: {seen:?}"
        );
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut r = DetRng::for_stream(4, 4);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::for_stream(9, 0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }

    #[test]
    fn geometric_mean_roughly_matches() {
        let mut r = DetRng::for_stream(5, 5);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(8.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut r = DetRng::for_stream(5, 6);
        for _ in 0..100 {
            assert!(r.geometric(0.5) >= 1);
        }
    }

    #[test]
    fn known_xoshiro_vector() {
        // Reference: xoshiro256++ from state [1, 2, 3, 4] produces
        // 0x180EC6D33CFD0ABA... per the public test vectors' generator
        // definition. Computed here from the recurrence directly.
        let mut r = DetRng { s: [1, 2, 3, 4] };
        let first = r.next_u64();
        // result = rotl(s0 + s3, 23) + s0 = rotl(5, 23) + 1
        assert_eq!(first, (5u64 << 23) + 1);
    }
}
