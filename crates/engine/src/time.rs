//! Simulation time.
//!
//! All latencies in the paper are expressed in 10 ns system clock cycles
//! (MAGIC runs at 100 MHz). [`Cycle`] is an absolute point on that clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulation time in 10 ns system clock cycles.
///
/// `Cycle` is a newtype over `u64` so that absolute times cannot be
/// accidentally confused with durations (plain `u64`s).
///
/// # Examples
///
/// ```
/// use flash_engine::Cycle;
///
/// let t = Cycle::new(10) + 4;
/// assert_eq!(t, Cycle::new(14));
/// assert_eq!(t - Cycle::new(10), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero, the start of simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of an absolute time, yielding a duration.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Nanoseconds represented by this time (10 ns per cycle).
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0 * 10
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, d: u64) -> Cycle {
        Cycle(self.0 + d)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, d: u64) {
        self.0 += d;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Duration between two absolute times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let a = Cycle::new(5);
        let b = a + 7;
        assert_eq!(b.raw(), 12);
        assert_eq!(b - a, 7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle::new(3).saturating_since(Cycle::new(10)), 0);
        assert_eq!(Cycle::new(10).saturating_since(Cycle::new(3)), 7);
    }

    #[test]
    fn nanos_per_cycle() {
        assert_eq!(Cycle::new(22).as_nanos(), 220);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cycle::new(14).to_string(), "14c");
    }
}
