//! Deterministic fast hashing for per-event map lookups.
//!
//! `std::collections::HashMap`'s default SipHash-1-3 is DoS-resistant but
//! costs tens of nanoseconds per lookup — real money on maps consulted
//! once per simulated event (chip handler entry points, checker exemption
//! sets, fault-injector draw streams). [`FastHasher`] is the multiply-fold
//! mixer already proven in the protocol crate's paged memory
//! (`PageHasher`), generalized to a byte-stream [`std::hash::Hasher`] so
//! it can back any key type.
//!
//! Determinism contract: the hash of a key is a pure function of its
//! bytes — no per-process random seed — so map *placement* is identical
//! across runs, processes, and hosts. Iteration order of a [`FastMap`] is
//! still unspecified (it depends on insertion history); callers that
//! surface map contents must sort first, exactly as they must with the
//! std default. Shard-determinism relies on this: every `FastMap` on a
//! hot path is consulted by key or drained through a sort, never iterated
//! into an observable artifact directly.

use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci multiplier (2^64 / golden ratio), the same constant the
/// protocol memory's page index uses.
const FIB: u64 = 0x9e37_79b9_7f4a_7c15;

/// A deterministic, seedless, multiply-fold streaming hasher.
///
/// Quality is ample for the small integer and `&'static str` keys used on
/// simulator hot paths; it makes no DoS-resistance claims (keys here are
/// simulator-internal, never attacker-controlled).
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: high bits already well mixed by the last fold.
        let x = self.state;
        let x = (x ^ (x >> 32)).wrapping_mul(FIB);
        x ^ (x >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // 8-byte chunks, then a length-tagged tail so "ab" | "c" and
        // "a" | "bc" differ.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.state = (self.state ^ v).wrapping_mul(FIB);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut v = 0u64;
            for (i, &b) in rem.iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            v |= (rem.len() as u64) << 56;
            self.state = (self.state ^ v).wrapping_mul(FIB);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state ^ v).wrapping_mul(FIB);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (zero-sized, seedless).
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` with deterministic fast hashing — the drop-in replacement
/// for SipHash maps on per-event paths. See the module docs for the
/// iteration-order caveat.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

/// A `HashSet` with deterministic fast hashing.
pub type FastSet<K> = std::collections::HashSet<K, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuild::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // No per-instance seed: two independently built maps place keys
        // identically (unlike RandomState).
        assert_eq!(hash_of(&(3u16, 77u64)), hash_of(&(3u16, 77u64)));
        assert_eq!(hash_of(&"ni_get"), hash_of(&"ni_get"));
    }

    #[test]
    fn stream_boundaries_matter() {
        let mut a = FastHasher::default();
        a.write(b"ab");
        a.write(b"c");
        let mut b = FastHasher::default();
        b.write(b"a");
        b.write(b"bc");
        // Same concatenation hashed in different chunkings is allowed to
        // collide or not; what must differ is distinct *content*.
        let mut c = FastHasher::default();
        c.write(b"abd");
        assert_ne!(a.finish(), c.finish());
        assert_ne!(b.finish(), c.finish());
    }

    #[test]
    fn nearby_integer_keys_spread() {
        // The checker/injector keys are dense small integers; the hash
        // must not map them to consecutive buckets of a tiny table.
        let h: Vec<u64> = (0u64..16).map(|i| hash_of(&i) % 16).collect();
        let distinct: std::collections::BTreeSet<_> = h.iter().collect();
        assert!(distinct.len() > 8, "low-bit clustering: {h:?}");
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FastMap<(u16, u64), u32> = FastMap::default();
        for i in 0..100u64 {
            *m.entry((i as u16 % 7, i)).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(3, 3)), Some(&1));
        m.remove(&(3, 3));
        assert!(!m.contains_key(&(3, 3)));
    }
}
