//! Bounded queues modelling the MAGIC resource limits of paper Table 3.1.

use std::collections::VecDeque;

/// A FIFO queue with an optional capacity limit and backpressure accounting.
///
/// The MAGIC chip has several queues whose exhaustion stalls an upstream
/// unit (paper Table 3.1): e.g. the memory controller queue holds a single
/// request, and the PP stalls if an outgoing network queue is full. The
/// ideal machine instead assumes "an infinite depth for all network and
/// memory system queues" (§3.1), which is modelled by `capacity = None`.
///
/// # Examples
///
/// ```
/// use flash_engine::BoundedQueue;
///
/// let mut q = BoundedQueue::bounded(1);
/// assert!(q.try_push(10).is_ok());
/// assert_eq!(q.try_push(11), Err(11)); // full: upstream must stall
/// assert_eq!(q.pop(), Some(10));
/// assert!(q.try_push(11).is_ok());
/// assert_eq!(q.rejected(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    rejected: u64,
    peak: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn bounded(capacity: usize) -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            capacity: Some(capacity),
            rejected: 0,
            peak: 0,
        }
    }

    /// Creates a queue with no capacity limit (the ideal machine).
    pub fn unbounded() -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            capacity: None,
            rejected: 0,
            peak: 0,
        }
    }

    /// Attempts to enqueue `item`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (handing the item back) if the queue is full, and
    /// counts the rejection; the caller models the resulting stall.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// A reference to the oldest item without dequeuing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Whether the queue has reached its capacity.
    pub fn is_full(&self) -> bool {
        match self.capacity {
            Some(cap) => self.items.len() >= cap,
            None => false,
        }
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Free slots remaining (`usize::MAX` when unbounded).
    pub fn free_slots(&self) -> usize {
        match self.capacity {
            Some(cap) => cap.saturating_sub(self.items.len()),
            None => usize::MAX,
        }
    }

    /// Number of pushes rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Maximum occupancy ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Iterates over queued items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_rejects_when_full() {
        let mut q = BoundedQueue::bounded(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.free_slots(), 0);
        q.pop();
        assert_eq!(q.free_slots(), 1);
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn unbounded_never_rejects() {
        let mut q = BoundedQueue::unbounded();
        for i in 0..10_000 {
            assert!(q.try_push(i).is_ok());
        }
        assert!(!q.is_full());
        assert_eq!(q.rejected(), 0);
        assert_eq!(q.peak(), 10_000);
    }

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::bounded(16);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.front(), Some(&0));
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut q = BoundedQueue::bounded(0);
        assert_eq!(q.try_push('x'), Err('x'));
        assert!(q.is_empty() && q.is_full());
    }
}
