//! Statistics primitives: counters, occupancy trackers, histograms.

use crate::time::Cycle;

/// A named event counter.
///
/// # Examples
///
/// ```
/// use flash_engine::Counter;
///
/// let mut misses = Counter::default();
/// misses.add(3);
/// misses.incr();
/// assert_eq!(misses.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// This count as a fraction of `total` (0.0 if `total` is zero).
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

/// Tracks the busy time of a serially reusable resource.
///
/// The paper reports "Avg. PP Occupancy" and "Avg. Mem Occupancy" (Tables
/// 4.1/4.2) as the fraction of total execution time the resource spent
/// busy. A resource is used by calling [`OccupancyTracker::acquire`], which
/// returns when the resource is next free and books the busy interval.
///
/// # Examples
///
/// ```
/// use flash_engine::{Cycle, OccupancyTracker};
///
/// let mut pp = OccupancyTracker::new();
/// // A handler arriving at cycle 10 that needs 11 cycles:
/// let start = pp.acquire(Cycle::new(10), 11);
/// assert_eq!(start, Cycle::new(10));
/// // A second handler arriving at cycle 15 queues behind it:
/// let start = pp.acquire(Cycle::new(15), 5);
/// assert_eq!(start, Cycle::new(21));
/// assert_eq!(pp.busy_cycles(), 16);
/// assert_eq!(pp.occupancy(Cycle::new(32)), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OccupancyTracker {
    free_at: Cycle,
    busy: u64,
    uses: u64,
    queue_delay: u64,
}

impl OccupancyTracker {
    /// Creates a tracker with the resource free at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the resource at time `at` for `duration` cycles.
    ///
    /// Returns the time service actually starts (≥ `at`; later if the
    /// resource is still busy with earlier work).
    pub fn acquire(&mut self, at: Cycle, duration: u64) -> Cycle {
        let start = at.max(self.free_at);
        self.queue_delay += start - at;
        self.free_at = start + duration;
        self.busy += duration;
        self.uses += 1;
        start
    }

    /// Books a busy interval without queueing semantics (used when the
    /// caller has already serialized access, e.g. the emulated PP).
    pub fn record_busy(&mut self, duration: u64) {
        self.busy += duration;
        self.uses += 1;
    }

    /// Next time the resource is free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total busy cycles accumulated.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Number of acquisitions.
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Total cycles requests spent waiting for the resource.
    pub fn queue_delay_cycles(&self) -> u64 {
        self.queue_delay
    }

    /// Busy fraction over a run that ended at `end` (0.0 for an empty run).
    pub fn occupancy(&self, end: Cycle) -> f64 {
        if end.raw() == 0 {
            0.0
        } else {
            self.busy as f64 / end.raw() as f64
        }
    }
}

/// A fixed-bucket histogram of `u64` samples (power-of-two buckets).
///
/// Used for latency distributions in the experiment reports.
///
/// # Examples
///
/// ```
/// use flash_engine::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(24);
/// h.record(143);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean(), (24.0 + 143.0) / 2.0);
/// assert_eq!(h.max(), 143);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let b = 64 - sample.leading_zeros() as usize; // 0 for sample==0
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Iterates over the non-empty buckets as `(floor, count)` pairs.
    ///
    /// Bucket `b` holds samples in `[2^(b-1), 2^b)` (bucket 0 holds only
    /// the sample 0), so `floor` is the smallest sample the bucket can
    /// contain: 0 for bucket 0, otherwise `1 << (b - 1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use flash_engine::Histogram;
    ///
    /// let mut h = Histogram::new();
    /// h.record(0);
    /// h.record(5); // bucket floor 4
    /// let buckets: Vec<_> = h.buckets().collect();
    /// assert_eq!(buckets, vec![(0, 1), (4, 1)]);
    /// ```
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, c))
    }
}

/// Sub-bucket resolution of a [`LogHist`]: each power-of-two octave is
/// split into `2^LOG_HIST_SUB_BITS` linear sub-buckets, bounding the
/// relative quantization error of any reported quantile to `1/8 = 12.5%`.
pub const LOG_HIST_SUB_BITS: u32 = 3;
/// Sub-buckets per octave (`8`).
pub const LOG_HIST_SUB: u64 = 1 << LOG_HIST_SUB_BITS;
/// Total bucket count of a [`LogHist`]: values below 8 get exact unit
/// buckets, and every octave `[2^e, 2^(e+1))` for `e in 3..64` contributes
/// 8 sub-buckets: `8 + 61 * 8 = 496` (the last index is `(63-2)*8 + 7`).
pub const LOG_HIST_BUCKETS: usize = (62 * LOG_HIST_SUB) as usize;

/// A fixed log-linear-bucket histogram with deterministic percentile
/// estimation — the latency-distribution primitive behind the
/// `flash-latency-v1` export (METRICS.md).
///
/// The bucket layout is fixed at compile time (HDR-histogram style):
/// values `0..8` land in exact unit buckets; a value in octave
/// `[2^e, 2^(e+1))` lands in one of 8 linear sub-buckets of width
/// `2^(e-3)`. Every operation is integer-only, and
/// [`LogHist::percentile`] reports the *floor* of the bucket holding the
/// requested rank — a pure function of the bucket counts. Merging is
/// therefore exact: bucket counts add, so percentiles computed from a
/// merged histogram equal those of a histogram fed every sample directly.
/// That is the shard-invariance contract: per-shard histograms merged in
/// canonical order are indistinguishable from a single-shard run.
///
/// # Examples
///
/// ```
/// use flash_engine::LogHist;
///
/// let mut a = LogHist::new();
/// let mut b = LogHist::new();
/// let mut whole = LogHist::new();
/// for v in 0..1000u64 {
///     if v % 2 == 0 { a.record(v) } else { b.record(v) }
///     whole.record(v);
/// }
/// let mut merged = a.clone();
/// merged.merge(&b);
/// assert_eq!(merged, whole);                      // exact, not approximate
/// assert_eq!(merged.percentile(500), whole.percentile(500));
/// assert_eq!(merged.max(), 999);
/// assert!(merged.percentile(990) >= merged.percentile(500));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    buckets: [u64; LOG_HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist {
            buckets: [0; LOG_HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample (total order, contiguous from 0).
    #[inline]
    fn index(sample: u64) -> usize {
        if sample < LOG_HIST_SUB {
            sample as usize
        } else {
            let e = 63 - sample.leading_zeros() as u64;
            let sub = (sample >> (e - LOG_HIST_SUB_BITS as u64)) & (LOG_HIST_SUB - 1);
            ((e - 2) * LOG_HIST_SUB + sub) as usize
        }
    }

    /// Smallest sample a bucket can hold (the value
    /// [`LogHist::percentile`] reports).
    #[inline]
    pub fn bucket_floor(index: usize) -> u64 {
        let i = index as u64;
        if i < LOG_HIST_SUB {
            i
        } else {
            let e = i / LOG_HIST_SUB + 2;
            let sub = i % LOG_HIST_SUB;
            (LOG_HIST_SUB + sub) << (e - LOG_HIST_SUB_BITS as u64)
        }
    }

    /// Records one sample. The running sum saturates instead of
    /// overflowing (saturating unsigned addition stays associative and
    /// commutative, so [`LogHist::merge`]'s exactness contract survives
    /// even at the numeric ceiling).
    pub fn record(&mut self, sample: u64) {
        self.buckets[Self::index(sample)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample — exact, not bucket-quantized (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Merges another histogram into this one. Bucket counts add, so the
    /// result is exactly the histogram that would have seen every sample:
    /// merge is associative and commutative, and percentiles of the merge
    /// equal percentiles of the combined stream.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The `permille/1000` quantile as a bucket floor (integer-exact and
    /// merge-invariant): the floor of the bucket holding the sample of
    /// rank `ceil(count * permille / 1000)` (clamped to at least 1).
    /// `percentile(500)` is the median estimate, `percentile(990)` p99,
    /// `percentile(999)` p999. Returns 0 on an empty histogram.
    pub fn percentile(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let need = ((self.count * permille).div_ceil(1000)).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= need {
                return Self::bucket_floor(i);
            }
        }
        Self::bucket_floor(LOG_HIST_BUCKETS - 1)
    }

    /// Iterates over the non-empty buckets as `(floor, count)` pairs in
    /// ascending floor order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
    }
}

/// One attributable component of an end-to-end miss latency.
///
/// Every completed request in an observed run (see the `flash` crate's
/// `MachineConfig::with_observe`) decomposes its latency into exactly
/// these six buckets, in pipeline order. The decomposition is exhaustive:
/// the per-request segment values always sum to the request's total
/// issue-to-completion latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Segment {
    /// Processor-interface cycles: bus, PI in/out, arbitration, and the
    /// cache-miss detection path on both the outbound and reply legs.
    Pi = 0,
    /// Cycles the request's message sat in a MAGIC inbox waiting for the
    /// protocol processor (plus the fixed inbox arbitration + jump-table
    /// dispatch stages).
    InboxWait = 1,
    /// Protocol-processor occupancy: cycles the handler itself executed
    /// (zero on the ideal machine).
    Handler = 2,
    /// Memory-system cycles: DRAM access, MAGIC data/instruction cache
    /// penalties, and waiting for data that the handler's reply depends on.
    Mem = 3,
    /// Outbox and network-interface cycles on the sending side.
    NiWait = 4,
    /// 2-D mesh transit cycles plus the receiving NI input stage.
    Mesh = 5,
}

/// Number of [`Segment`] variants; the length of a per-request split.
pub const SEGMENT_COUNT: usize = 6;

impl Segment {
    /// All segments in pipeline order.
    pub const ALL: [Segment; SEGMENT_COUNT] = [
        Segment::Pi,
        Segment::InboxWait,
        Segment::Handler,
        Segment::Mem,
        Segment::NiWait,
        Segment::Mesh,
    ];

    /// Stable machine-readable name used in exports (`METRICS.md` schema).
    pub fn name(self) -> &'static str {
        match self {
            Segment::Pi => "pi",
            Segment::InboxWait => "inbox_wait",
            Segment::Handler => "handler",
            Segment::Mem => "mem",
            Segment::NiWait => "ni_wait",
            Segment::Mesh => "mesh",
        }
    }

    /// Index of this segment in a `[u64; SEGMENT_COUNT]` split.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Accumulates per-segment latency attributions for a class of requests.
///
/// Each call to [`LatencySplit::record`] adds one completed request's
/// six-way decomposition (see [`Segment`]). Totals, means, and fractions
/// are all zero-guarded: an empty split reports 0.0 everywhere rather
/// than NaN.
///
/// # Examples
///
/// ```
/// use flash_engine::{LatencySplit, Segment};
///
/// let mut s = LatencySplit::new();
/// s.record([5, 3, 11, 14, 5, 12]);
/// assert_eq!(s.count(), 1);
/// assert_eq!(s.total(), 50);
/// assert_eq!(s.mean(), 50.0);
/// assert_eq!(s.fraction(Segment::Handler), 0.22);
/// assert_eq!(LatencySplit::new().mean(), 0.0); // zero-guarded
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySplit {
    count: u64,
    segs: [u64; SEGMENT_COUNT],
}

impl LatencySplit {
    /// Creates an empty split.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one request's segment decomposition.
    pub fn record(&mut self, segs: [u64; SEGMENT_COUNT]) {
        self.count += 1;
        for (a, b) in self.segs.iter_mut().zip(segs.iter()) {
            *a += b;
        }
    }

    /// Number of requests recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Accumulated cycles in one segment.
    pub fn seg(&self, s: Segment) -> u64 {
        self.segs[s.index()]
    }

    /// Accumulated cycles per segment, in [`Segment::ALL`] order.
    pub fn segs(&self) -> [u64; SEGMENT_COUNT] {
        self.segs
    }

    /// Total cycles across all segments and requests.
    pub fn total(&self) -> u64 {
        self.segs.iter().sum()
    }

    /// Mean end-to-end latency per request (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total() as f64 / self.count as f64
        }
    }

    /// Mean cycles per request spent in one segment (0.0 when empty).
    pub fn mean_seg(&self, s: Segment) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.seg(s) as f64 / self.count as f64
        }
    }

    /// Fraction of total latency attributed to one segment (0.0 when the
    /// total is zero).
    pub fn fraction(&self, s: Segment) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.seg(s) as f64 / total as f64
        }
    }

    /// Merges another split into this one.
    pub fn merge(&mut self, other: &LatencySplit) {
        self.count += other.count;
        for (a, b) in self.segs.iter_mut().zip(other.segs.iter()) {
            *a += b;
        }
    }

    /// Per-segment difference `self − other` (saturating at zero), with
    /// the count also differenced. Used to isolate the contribution of a
    /// single measured request between two accumulated snapshots.
    pub fn minus(&self, other: &LatencySplit) -> LatencySplit {
        let mut segs = [0u64; SEGMENT_COUNT];
        for (i, s) in segs.iter_mut().enumerate() {
            *s = self.segs[i].saturating_sub(other.segs[i]);
        }
        LatencySplit {
            count: self.count.saturating_sub(other.count),
            segs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_fraction() {
        let mut c = Counter::default();
        c.add(25);
        assert_eq!(c.fraction_of(100), 0.25);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn occupancy_serializes_back_to_back() {
        let mut t = OccupancyTracker::new();
        assert_eq!(t.acquire(Cycle::new(0), 10), Cycle::new(0));
        // Arrives while busy: queues.
        assert_eq!(t.acquire(Cycle::new(4), 10), Cycle::new(10));
        assert_eq!(t.queue_delay_cycles(), 6);
        // Arrives after idle gap: no queueing.
        assert_eq!(t.acquire(Cycle::new(100), 1), Cycle::new(100));
        assert_eq!(t.busy_cycles(), 21);
        assert_eq!(t.uses(), 3);
    }

    #[test]
    fn occupancy_fraction() {
        let mut t = OccupancyTracker::new();
        t.acquire(Cycle::new(0), 25);
        assert_eq!(t.occupancy(Cycle::new(100)), 0.25);
        assert_eq!(OccupancyTracker::new().occupancy(Cycle::ZERO), 0.0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for s in [1u64, 2, 3, 4] {
            h.record(s);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 4);
        let mut h2 = Histogram::new();
        h2.record(100);
        h.merge(&h2);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_bucket_floors() {
        let mut h = Histogram::new();
        for s in [0u64, 1, 2, 3, 4, 7, 8, 100] {
            h.record(s);
        }
        let buckets: Vec<_> = h.buckets().collect();
        // 0 → b0; 1 → b1; 2,3 → b2; 4..8 → b3; 8 → b4; 100 → b7 (floor 64).
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (64, 1)]
        );
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.count());
    }

    /// NaN-guard pins for the zero-length-run paths (Issue 5 satellite):
    /// `Counter::fraction_of(0)` and `OccupancyTracker::occupancy(ZERO)`
    /// must return exactly 0.0 (not NaN) even after activity.
    #[test]
    fn zero_length_run_reports_zero_not_nan() {
        let mut c = Counter::default();
        c.add(17);
        let f = c.fraction_of(0);
        assert_eq!(f, 0.0);
        assert!(!f.is_nan());

        let mut t = OccupancyTracker::new();
        t.record_busy(123); // busy > 0 but run length 0
        let occ = t.occupancy(Cycle::ZERO);
        assert_eq!(occ, 0.0);
        assert!(!occ.is_nan());
    }

    #[test]
    fn latency_split_accumulates_and_guards_zero() {
        let mut s = LatencySplit::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.fraction(Segment::Pi), 0.0);
        assert_eq!(s.mean_seg(Segment::Mesh), 0.0);
        s.record([5, 3, 11, 14, 5, 12]);
        s.record([5, 1, 11, 14, 5, 12]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total(), 98);
        assert_eq!(s.mean(), 49.0);
        assert_eq!(s.seg(Segment::InboxWait), 4);
        assert_eq!(s.mean_seg(Segment::Handler), 11.0);
        assert!((s.fraction(Segment::Mem) - 28.0 / 98.0).abs() < 1e-12);

        let mut other = LatencySplit::new();
        other.record([1, 1, 1, 1, 1, 1]);
        let mut merged = s;
        merged.merge(&other);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.total(), 104);

        let diff = merged.minus(&s);
        assert_eq!(diff.count(), 1);
        assert_eq!(diff.segs(), [1, 1, 1, 1, 1, 1]);
        // Saturating: subtracting the larger from the smaller pins at 0.
        let sat = other.minus(&s);
        assert_eq!(sat.count(), 0);
        assert_eq!(sat.total(), 0);
    }

    #[test]
    fn log_hist_buckets_are_contiguous_and_monotone() {
        // Every sample maps to exactly one bucket, indices are monotone in
        // the sample, and the floor of a sample's bucket never exceeds the
        // sample (the floor is what percentile() reports).
        let mut last = 0usize;
        for v in 0..4096u64 {
            let i = LogHist::index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(i < LOG_HIST_BUCKETS);
            assert!(LogHist::bucket_floor(i) <= v, "floor above sample at {v}");
            // The sample sits strictly below the next bucket's floor.
            if i + 1 < LOG_HIST_BUCKETS {
                assert!(
                    v < LogHist::bucket_floor(i + 1),
                    "sample past bucket at {v}"
                );
            }
            last = i;
        }
        // Extremes hit the first and last buckets without panicking.
        assert_eq!(LogHist::index(0), 0);
        assert_eq!(LogHist::index(u64::MAX), LOG_HIST_BUCKETS - 1);
        for i in 0..LOG_HIST_BUCKETS {
            assert_eq!(LogHist::index(LogHist::bucket_floor(i)), i);
        }
    }

    #[test]
    fn log_hist_percentiles_are_deterministic_bucket_floors() {
        let mut h = LogHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
        // The rank-500 sample is 500; its bucket is [480, 512) → floor 480.
        assert_eq!(h.percentile(500), 480);
        // p99 → rank 990 → bucket [960, 1024) → floor 960.
        assert_eq!(h.percentile(990), 960);
        assert_eq!(h.percentile(999), 960);
        assert_eq!(h.percentile(1000), 960);
        assert_eq!(LogHist::new().percentile(500), 0);
        // Quantization error is bounded: floor ≥ sample * 8/9 for v ≥ 8.
        assert!(h.percentile(500) as f64 >= 500.0 * 8.0 / 9.0);
    }

    #[test]
    fn log_hist_merge_is_exact() {
        let mut parts: Vec<LogHist> = (0..4).map(|_| LogHist::new()).collect();
        let mut whole = LogHist::new();
        let mut r = crate::DetRng::for_stream(7, 7);
        for i in 0..10_000u64 {
            let v = r.next_u64() >> (r.below(40) + 10);
            parts[(i % 4) as usize].record(v);
            whole.record(v);
        }
        let mut merged = LogHist::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole);
        let total: u64 = merged.buckets().map(|(_, c)| c).sum();
        assert_eq!(total, merged.count());
        let floors: Vec<u64> = merged.buckets().map(|(f, _)| f).collect();
        assert!(floors.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn segment_names_and_order_are_stable() {
        let names: Vec<_> = Segment::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["pi", "inbox_wait", "handler", "mem", "ni_wait", "mesh"]
        );
        for (i, s) in Segment::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Segment::ALL.len(), SEGMENT_COUNT);
    }
}
