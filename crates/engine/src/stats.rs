//! Statistics primitives: counters, occupancy trackers, histograms.

use crate::time::Cycle;

/// A named event counter.
///
/// # Examples
///
/// ```
/// use flash_engine::Counter;
///
/// let mut misses = Counter::default();
/// misses.add(3);
/// misses.incr();
/// assert_eq!(misses.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// This count as a fraction of `total` (0.0 if `total` is zero).
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

/// Tracks the busy time of a serially reusable resource.
///
/// The paper reports "Avg. PP Occupancy" and "Avg. Mem Occupancy" (Tables
/// 4.1/4.2) as the fraction of total execution time the resource spent
/// busy. A resource is used by calling [`OccupancyTracker::acquire`], which
/// returns when the resource is next free and books the busy interval.
///
/// # Examples
///
/// ```
/// use flash_engine::{Cycle, OccupancyTracker};
///
/// let mut pp = OccupancyTracker::new();
/// // A handler arriving at cycle 10 that needs 11 cycles:
/// let start = pp.acquire(Cycle::new(10), 11);
/// assert_eq!(start, Cycle::new(10));
/// // A second handler arriving at cycle 15 queues behind it:
/// let start = pp.acquire(Cycle::new(15), 5);
/// assert_eq!(start, Cycle::new(21));
/// assert_eq!(pp.busy_cycles(), 16);
/// assert_eq!(pp.occupancy(Cycle::new(32)), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OccupancyTracker {
    free_at: Cycle,
    busy: u64,
    uses: u64,
    queue_delay: u64,
}

impl OccupancyTracker {
    /// Creates a tracker with the resource free at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the resource at time `at` for `duration` cycles.
    ///
    /// Returns the time service actually starts (≥ `at`; later if the
    /// resource is still busy with earlier work).
    pub fn acquire(&mut self, at: Cycle, duration: u64) -> Cycle {
        let start = at.max(self.free_at);
        self.queue_delay += start - at;
        self.free_at = start + duration;
        self.busy += duration;
        self.uses += 1;
        start
    }

    /// Books a busy interval without queueing semantics (used when the
    /// caller has already serialized access, e.g. the emulated PP).
    pub fn record_busy(&mut self, duration: u64) {
        self.busy += duration;
        self.uses += 1;
    }

    /// Next time the resource is free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total busy cycles accumulated.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Number of acquisitions.
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Total cycles requests spent waiting for the resource.
    pub fn queue_delay_cycles(&self) -> u64 {
        self.queue_delay
    }

    /// Busy fraction over a run that ended at `end` (0.0 for an empty run).
    pub fn occupancy(&self, end: Cycle) -> f64 {
        if end.raw() == 0 {
            0.0
        } else {
            self.busy as f64 / end.raw() as f64
        }
    }
}

/// A fixed-bucket histogram of `u64` samples (power-of-two buckets).
///
/// Used for latency distributions in the experiment reports.
///
/// # Examples
///
/// ```
/// use flash_engine::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(24);
/// h.record(143);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean(), (24.0 + 143.0) / 2.0);
/// assert_eq!(h.max(), 143);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let b = 64 - sample.leading_zeros() as usize; // 0 for sample==0
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_fraction() {
        let mut c = Counter::default();
        c.add(25);
        assert_eq!(c.fraction_of(100), 0.25);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn occupancy_serializes_back_to_back() {
        let mut t = OccupancyTracker::new();
        assert_eq!(t.acquire(Cycle::new(0), 10), Cycle::new(0));
        // Arrives while busy: queues.
        assert_eq!(t.acquire(Cycle::new(4), 10), Cycle::new(10));
        assert_eq!(t.queue_delay_cycles(), 6);
        // Arrives after idle gap: no queueing.
        assert_eq!(t.acquire(Cycle::new(100), 1), Cycle::new(100));
        assert_eq!(t.busy_cycles(), 21);
        assert_eq!(t.uses(), 3);
    }

    #[test]
    fn occupancy_fraction() {
        let mut t = OccupancyTracker::new();
        t.acquire(Cycle::new(0), 25);
        assert_eq!(t.occupancy(Cycle::new(100)), 0.25);
        assert_eq!(OccupancyTracker::new().occupancy(Cycle::ZERO), 0.0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for s in [1u64, 2, 3, 4] {
            h.record(s);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 4);
        let mut h2 = Histogram::new();
        h2.record(100);
        h.merge(&h2);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
    }
}
