//! Minimal JSON value model, parser, and writer.
//!
//! The workspace builds offline (no registry access), so the artifact
//! formats that need to round-trip through files — `flash-repro-v1`
//! reproducers, serialized [`WedgeReport`]s and checker violations — are
//! carried by this hand-rolled module instead of `serde`. It is
//! deliberately small: one [`Json`] value enum, a recursive-descent
//! parser, and a deterministic writer.
//!
//! Determinism contract: objects preserve insertion order, `u64` integers
//! round-trip exactly (no `f64` truncation — addresses use the high bits),
//! and floats render with Rust's shortest round-trip formatting (`{:?}`),
//! so `parse(render(v)) == v` and `render(parse(s))` is a canonical form
//! that is byte-identical across runs and hosts.
//!
//! [`WedgeReport`]: ../../flash_fault/struct.WedgeReport.html
//!
//! # Examples
//!
//! ```
//! use flash_engine::json::Json;
//!
//! let v = Json::parse(r#"{"schema": "flash-repro-v1", "nodes": 8}"#).unwrap();
//! assert_eq!(v.get("nodes").and_then(Json::as_u64), Some(8));
//! let round = Json::parse(&v.render()).unwrap();
//! assert_eq!(v, round);
//! ```

use std::fmt::Write as _;

/// One JSON value. Integers that fit a `u64`/`i64` are kept exact;
/// everything else numeric is a float.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (exact; this is what addresses use).
    UInt(u64),
    /// A negative integer (exact).
    Int(i64),
    /// Any other number (fractions, exponents).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (and significant for the
    /// byte-identity contracts of the repro artifacts).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks a key up in an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(f) => Some(f),
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace). Deterministic:
    /// object order is insertion order, floats use shortest round-trip
    /// formatting.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest representation that parses
                    // back to the same bits (always includes `.` or `e`).
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no Inf/NaN; null is the least-bad encoding.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Exactly one top-level value is allowed;
    /// trailing whitespace is ignored. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 up to the next escape/quote.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The slice boundaries sit on ASCII bytes, so this is
                // valid UTF-8 whenever the input is.
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any writer
                            // in this workspace; map lone surrogates to
                            // the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(mag) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(mag) {
                        return Ok(Json::Int(-i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::UInt(0)),
            ("18446744073709551615", Json::UInt(u64::MAX)),
            ("-42", Json::Int(-42)),
            ("0.08", Json::Float(0.08)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v, "{text}");
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        // Addresses carry the home node above bit 32; f64 would truncate
        // past 2^53.
        let addr = (1u64 << 63) | 0x8841;
        let v = Json::UInt(addr);
        assert_eq!(Json::parse(&v.render()).unwrap().as_u64(), Some(addr));
    }

    #[test]
    fn float_shortest_form_round_trips() {
        for f in [0.08, 0.005, 1e-9, 123.456, f64::MIN_POSITIVE] {
            let v = Json::Float(f);
            let parsed = Json::parse(&v.render()).unwrap();
            assert_eq!(parsed.as_f64(), Some(f), "{f}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj(vec![
            ("schema", Json::str("flash-repro-v1")),
            (
                "streams",
                Json::Arr(vec![Json::Arr(vec![
                    Json::Arr(vec![Json::str("r"), Json::UInt(0x1_0000_4000)]),
                    Json::Arr(vec![Json::str("bar")]),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("none", Json::Null),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Canonical: render(parse(render(v))) is byte-identical.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn string_escapes() {
        let s = "line\nbreak \"quote\" back\\slash \t tab \u{1} ctrl";
        let v = Json::Str(s.into());
        assert_eq!(Json::parse(&v.render()).unwrap().as_str(), Some(s));
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn object_accessors() {
        let v = Json::parse(r#"{"a": 1, "b": [2, 3], "c": "x", "d": true}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::UInt(5).get("a"), None);
    }

    #[test]
    fn parse_errors_are_located() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "\"unterminated", "tru", "1 2"] {
            let e = Json::parse(bad).unwrap_err();
            assert!(!e.message.is_empty(), "{bad}: {e}");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.at, 4);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" {\n \"a\" :\t[ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }
}
