//! The time-ordered event queue at the heart of the simulator.

use crate::time::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A deterministic discrete-event queue.
///
/// Events are delivered in nondecreasing time order; events scheduled for
/// the same cycle are delivered in the order they were pushed (FIFO), which
/// makes simulations reproducible regardless of heap internals.
///
/// # Examples
///
/// ```
/// use flash_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(3), 'b');
/// q.push(Cycle::new(3), 'c'); // same time: FIFO after 'b'
/// q.push(Cycle::new(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    pushed: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            pushed: 0,
        }
    }

    /// Schedules `ev` to fire at absolute time `at`.
    pub fn push(&mut self, at: Cycle, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.ev))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (for throughput statistics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(5), 2);
        q.push(Cycle::new(7), 3);
        assert_eq!(q.pop(), Some((Cycle::new(5), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(7), 3)));
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(3), ());
        q.push(Cycle::new(1), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(1), 'a');
        q.push(Cycle::new(4), 'd');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(Cycle::new(2), 'b');
        q.push(Cycle::new(3), 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'd');
    }
}
