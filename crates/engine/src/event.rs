//! The time-ordered event queue at the heart of the simulator.
//!
//! Layout: a 128-slot timing wheel absorbs the near future — in this
//! simulator almost every event schedules a handful of cycles out (DRAM
//! access 14, PP handler occupancies, per-hop mesh latencies) — and a
//! binary heap catches the overflow (far-future events such as watchdog
//! budgets and DMA arrivals, plus any event scheduled behind the wheel's
//! window base). Delivery order is identical to a plain heap keyed by
//! `(time, push sequence)`: nondecreasing time, FIFO within a cycle.

use crate::time::Cycle;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Default number of slots in the near-future wheel. Power of two so the
/// slot-index math stays branch-free. Sized for small meshes; callers
/// whose steady-state scheduling distances exceed it (large-mesh transit
/// latencies) should size the wheel with [`EventQueue::with_horizon`] so
/// routine traffic does not degrade to the overflow heap.
const WHEEL_SLOTS: usize = 128;

/// A deterministic discrete-event queue.
///
/// Events are delivered in nondecreasing time order; events scheduled for
/// the same cycle are delivered in the order they were pushed (FIFO), which
/// makes simulations reproducible regardless of container internals.
///
/// # Examples
///
/// ```
/// use flash_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(3), 'b');
/// q.push(Cycle::new(3), 'c'); // same time: FIFO after 'b'
/// q.push(Cycle::new(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Near-future buckets. Slot `t & mask` holds the events for
    /// absolute time `t` while `t` lies in `[cursor, cursor + slots.len())`;
    /// within the window each slot maps to exactly one absolute time, so
    /// entries store only their FIFO sequence number.
    slots: Vec<VecDeque<(u64, E)>>,
    /// Slot-index mask: `slots.len() - 1` (the length is a power of two).
    mask: u64,
    /// Occupancy bitmap, one bit per slot: bit `i` of word `i / 64` is
    /// set iff `slots[i]` is non-empty.
    occupied: Vec<u64>,
    /// Number of events currently resident in the wheel.
    wheel_len: usize,
    /// Base of the wheel window: the time of the most recently delivered
    /// event. Monotonically nondecreasing, so no resident wheel event is
    /// ever behind it.
    cursor: u64,
    /// Far-future (and, defensively, behind-the-window) overflow.
    heap: BinaryHeap<Entry<E>>,
    /// Total pushes ever; doubles as the next FIFO sequence number.
    seq: u64,
    /// Pushes routed to the wheel (health statistic: a healthy steady
    /// state keeps almost every push out of the overflow heap).
    wheel_pushes: u64,
    /// Pushes routed to the overflow heap.
    heap_pushes: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default 128-slot wheel.
    pub fn new() -> Self {
        Self::with_horizon(WHEEL_SLOTS as u64)
    }

    /// Creates an empty queue whose wheel spans at least `horizon` cycles
    /// ahead of the cursor (rounded up to a power of two, minimum 128).
    /// Size the horizon to the workload's longest *routine* scheduling
    /// distance — e.g. the worst-case mesh transit latency — so only the
    /// rare genuinely far-future event (watchdog budgets, DMA arrivals)
    /// pays for the overflow heap.
    pub fn with_horizon(horizon: u64) -> Self {
        let n = horizon.max(WHEEL_SLOTS as u64).next_power_of_two() as usize;
        EventQueue {
            slots: (0..n).map(|_| VecDeque::new()).collect(),
            mask: n as u64 - 1,
            occupied: vec![0u64; n / 64],
            wheel_len: 0,
            cursor: 0,
            heap: BinaryHeap::new(),
            seq: 0,
            wheel_pushes: 0,
            heap_pushes: 0,
        }
    }

    /// Schedules `ev` to fire at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: Cycle, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(at, seq, ev);
    }

    /// Schedules `ev` at `at` under an explicit within-cycle ordering key
    /// `sub` instead of the internal FIFO sequence number. Delivery order
    /// is `(time, sub)` ascending; `sub` values sharing a cycle must be
    /// distinct for the order to be total. The sharded engine derives
    /// `sub` from `(origin node, per-origin sequence)` so the schedule is
    /// identical no matter which shard pushed the event.
    #[inline]
    pub fn push_sub(&mut self, at: Cycle, sub: u64, ev: E) {
        self.seq += 1;
        self.insert(at, sub, ev);
    }

    #[inline]
    fn insert(&mut self, at: Cycle, sub: u64, ev: E) {
        let t = at.raw();
        if t >= self.cursor && t - self.cursor < self.slots.len() as u64 {
            let slot = (t & self.mask) as usize;
            let q = &mut self.slots[slot];
            // Keep each slot sorted by `sub`. Plain pushes use the
            // monotone sequence counter, so this lands at the back in
            // O(log n); explicit subs may interleave arbitrarily.
            let i = q.partition_point(|&(s, _)| s <= sub);
            q.insert(i, (sub, ev));
            self.occupied[slot / 64] |= 1u64 << (slot % 64);
            self.wheel_len += 1;
            self.wheel_pushes += 1;
        } else {
            self.heap.push(Entry { at, seq: sub, ev });
            self.heap_pushes += 1;
        }
    }

    /// `(time, seq)` of the earliest wheel-resident event, if any.
    /// Scans the occupancy bitmap circularly from the cursor's slot:
    /// O(slots / 64) words in the worst case, one `trailing_zeros` per
    /// word — for the default 128-slot wheel that is two words.
    #[inline]
    fn wheel_front(&self) -> Option<(u64, u64)> {
        if self.wheel_len == 0 {
            return None;
        }
        let words = self.occupied.len();
        let start = (self.cursor & self.mask) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let mut found = None;
        // Word `sw` is visited twice: first masked to bits `sb..`, then
        // (after wrapping) masked to bits `..sb`.
        for i in 0..=words {
            let wi = (sw + i) % words;
            let mut w = self.occupied[wi];
            if i == 0 {
                w &= !0u64 << sb;
            } else if i == words {
                w &= (1u64 << sb) - 1;
            }
            if w != 0 {
                found = Some(wi * 64 + w.trailing_zeros() as usize);
                break;
            }
        }
        let slot = found.expect("wheel_len > 0 with an empty occupancy bitmap");
        let offset = (slot as u64).wrapping_sub(start as u64) & self.mask;
        let t = self.cursor + offset;
        let seq = self.slots[slot]
            .front()
            .expect("occupancy bit set on empty slot")
            .0;
        Some((t, seq))
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.pop_keyed().map(|(t, _, ev)| (t, ev))
    }

    /// Removes and returns the earliest event along with its within-cycle
    /// ordering key (the FIFO sequence for [`EventQueue::push`], the
    /// explicit `sub` for [`EventQueue::push_sub`]). The sharded engine
    /// uses the key to re-push a budget-deferred event unchanged and to
    /// tag journal entries with a shard-invariant identity.
    pub fn pop_keyed(&mut self) -> Option<(Cycle, u64, E)> {
        self.pop_keyed_if(|_, _| true)
    }

    /// Removes and returns the earliest event only when its `(time, key)`
    /// satisfies `pred`; otherwise leaves the queue untouched and returns
    /// `None`. One front scan serves both the bound check and the pop —
    /// the hot loop's replacement for a `peek_key` followed by
    /// `pop_keyed`.
    pub fn pop_keyed_if(
        &mut self,
        pred: impl FnOnce(Cycle, u64) -> bool,
    ) -> Option<(Cycle, u64, E)> {
        let wheel = self.wheel_front();
        let heap = self.heap.peek().map(|e| (e.at.raw(), e.seq));
        let take_wheel = match (wheel, heap) {
            (Some(w), Some(h)) => w <= h,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        {
            let (t, s) = if take_wheel {
                wheel.expect("chosen wheel front")
            } else {
                heap.expect("chosen heap front")
            };
            if !pred(Cycle::new(t), s) {
                return None;
            }
        }
        if take_wheel {
            let (t, _) = wheel.unwrap();
            let slot = (t & self.mask) as usize;
            let (sub, ev) = self.slots[slot].pop_front().expect("wheel front vanished");
            if self.slots[slot].is_empty() {
                self.occupied[slot / 64] &= !(1u64 << (slot % 64));
            }
            self.wheel_len -= 1;
            self.cursor = self.cursor.max(t);
            Some((Cycle::new(t), sub, ev))
        } else {
            let e = self.heap.pop().expect("heap peeked non-empty");
            self.cursor = self.cursor.max(e.at.raw());
            Some((e.at, e.seq, e.ev))
        }
    }

    /// Advances the wheel's window base to `at` without delivering
    /// anything, clamped so it never passes the earliest wheel-resident
    /// event. The sharded engine calls this on every shard queue at each
    /// window boundary: an idle shard's cursor otherwise freezes at its
    /// last pop, and staged cross-shard deliveries — near-future in
    /// *global* time — would look far-future to the stale window and
    /// degrade to the overflow heap.
    pub fn advance_to(&mut self, at: Cycle) {
        let mut t = at.raw();
        if let Some((front, _)) = self.wheel_front() {
            t = t.min(front);
        }
        self.cursor = self.cursor.max(t);
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        let wheel = self.wheel_front();
        let heap = self.heap.peek().map(|e| (e.at.raw(), e.seq));
        match (wheel, heap) {
            (Some(w), Some(h)) => Some(Cycle::new(w.min(h).0)),
            (Some((t, _)), None) | (None, Some((t, _))) => Some(Cycle::new(t)),
            (None, None) => None,
        }
    }

    /// `(time, key)` of the earliest pending event — the full ordering
    /// key [`EventQueue::pop_keyed`] would return. The sharded engine
    /// compares these across shard queues to find the canonical global
    /// minimum without popping.
    pub fn peek_key(&self) -> Option<(Cycle, u64)> {
        let wheel = self.wheel_front();
        let heap = self.heap.peek().map(|e| (e.at.raw(), e.seq));
        match (wheel, heap) {
            (Some(w), Some(h)) => {
                let (t, s) = w.min(h);
                Some((Cycle::new(t), s))
            }
            (Some((t, s)), None) | (None, Some((t, s))) => Some((Cycle::new(t), s)),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (for throughput statistics).
    pub fn total_pushed(&self) -> u64 {
        self.seq
    }

    /// Pushes that landed in the near-future wheel vs. the overflow heap,
    /// ever. A healthy steady state routes almost everything through the
    /// wheel; a large heap share means the 128-slot window is too small
    /// for the workload's scheduling distances.
    pub fn push_routing(&self) -> (u64, u64) {
        (self.wheel_pushes, self.heap_pushes)
    }

    /// Visits every pending event as `(time, &event)` in unspecified
    /// order (wedge diagnostics: per-node occupancy counts, suspect-line
    /// harvesting). O(pending); never perturbs delivery order.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &E)> {
        let cursor = self.cursor;
        let mask = self.mask;
        let wheel = self.slots.iter().enumerate().flat_map(move |(s, q)| {
            // The absolute time of slot `s` within the current window
            // `[cursor, cursor + slots.len())`.
            let offset = (s as u64).wrapping_sub(cursor) & mask;
            let t = Cycle::new(cursor + offset);
            q.iter().map(move |(_, e)| (t, e))
        });
        wheel.chain(self.heap.iter().map(|e| (e.at, &e.ev)))
    }

    /// Drops every pending event, resetting the wheel window to time
    /// zero. `total_pushed()` is preserved.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
        self.occupied.fill(0);
        self.wheel_len = 0;
        self.cursor = 0;
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(Cycle, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (Cycle, E)>>(&mut self, iter: I) {
        for (at, ev) in iter {
            self.push(at, ev);
        }
    }
}

impl<E> FromIterator<(Cycle, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (Cycle, E)>>(iter: I) -> Self {
        let mut q = Self::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(5), 2);
        q.push(Cycle::new(7), 3);
        assert_eq!(q.pop(), Some((Cycle::new(5), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(7), 3)));
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(3), ());
        q.push(Cycle::new(1), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(1), 'a');
        q.push(Cycle::new(4), 'd');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(Cycle::new(2), 'b');
        q.push(Cycle::new(3), 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'd');
    }

    #[test]
    fn wheel_and_heap_interleave_at_the_same_cycle() {
        // Far-future pushes land in the heap; once the cursor catches up,
        // same-cycle pushes land in the wheel with later sequence
        // numbers. FIFO order across the two containers must hold.
        let mut q = EventQueue::new();
        q.push(Cycle::new(1_000), "heap-first"); // > 128 out: heap
        q.push(Cycle::new(1), "warm");
        assert_eq!(q.pop().unwrap().1, "warm"); // cursor -> 1
        q.push(Cycle::new(999), "heap-too"); // still > cursor+128
        assert_eq!(q.pop().unwrap().1, "heap-too"); // cursor -> 999
        q.push(Cycle::new(1_000), "wheel-second"); // in window now
        assert_eq!(q.pop().unwrap().1, "heap-first");
        assert_eq!(q.pop().unwrap().1, "wheel-second");
        assert!(q.is_empty());
    }

    #[test]
    fn window_boundary_routing() {
        let mut q = EventQueue::new();
        // Exactly the last wheel slot vs first heap time.
        q.push(Cycle::new(127), 'w');
        q.push(Cycle::new(128), 'h');
        assert_eq!(q.wheel_len, 1);
        assert_eq!(q.heap.len(), 1);
        assert_eq!(q.pop(), Some((Cycle::new(127), 'w')));
        assert_eq!(q.pop(), Some((Cycle::new(128), 'h')));
    }

    #[test]
    fn push_behind_cursor_still_delivers() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(50), 'a');
        assert_eq!(q.pop().unwrap().1, 'a'); // cursor -> 50
                                             // Behind the window base: routed to the heap, still delivered
                                             // before later events.
        q.push(Cycle::new(10), 'b');
        q.push(Cycle::new(51), 'c');
        assert_eq!(q.pop(), Some((Cycle::new(10), 'b')));
        assert_eq!(q.pop(), Some((Cycle::new(51), 'c')));
    }

    #[test]
    fn clear_and_extend() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), 1);
        q.push(Cycle::new(500), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2, "clear keeps the push statistic");
        q.extend([
            (Cycle::new(3), 30),
            (Cycle::new(2), 20),
            (Cycle::new(2), 21),
        ]);
        assert_eq!(q.total_pushed(), 5);
        assert_eq!(q.pop(), Some((Cycle::new(2), 20)));
        assert_eq!(q.pop(), Some((Cycle::new(2), 21)));
        assert_eq!(q.pop(), Some((Cycle::new(3), 30)));
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u32> = [(Cycle::new(9), 9), (Cycle::new(4), 4)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
    }

    #[test]
    fn push_at_exactly_now_lands_in_wheel() {
        // `t == cursor` is the first slot of the window, not "behind" it:
        // a handler scheduling a zero-latency follow-up at the current
        // cycle must ride the wheel and fire before anything later.
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 'a');
        assert_eq!(q.pop().unwrap().1, 'a'); // cursor -> 30
        q.push(Cycle::new(31), 'c');
        q.push(Cycle::new(30), 'b'); // exactly at the cursor
        assert_eq!(q.heap.len(), 0, "t == cursor belongs to the wheel");
        assert_eq!(q.pop(), Some((Cycle::new(30), 'b')));
        assert_eq!(q.pop(), Some((Cycle::new(31), 'c')));
    }

    #[test]
    fn horizon_tracks_the_cursor() {
        // The 128-slot window is relative to the *cursor*, not to time
        // zero: after delivery advances the base, `cursor + 127` is the
        // last wheel-resident time and `cursor + 128` overflows.
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), 'a');
        assert_eq!(q.pop().unwrap().1, 'a'); // cursor -> 5
        q.push(Cycle::new(5 + 127), 'w');
        q.push(Cycle::new(5 + 128), 'h');
        assert_eq!(q.wheel_len, 1);
        assert_eq!(q.heap.len(), 1);
        assert_eq!(q.pop(), Some((Cycle::new(132), 'w')));
        assert_eq!(q.pop(), Some((Cycle::new(133), 'h')));
        assert!(q.is_empty());
    }

    #[test]
    fn heap_reentry_preserves_fifo_seq() {
        // Events for one cycle split across the heap (pushed while the
        // cycle was beyond the horizon: early sequence numbers) and the
        // wheel (pushed after the window caught up: later ones). Global
        // delivery must still follow push order within the cycle.
        let mut q = EventQueue::new();
        q.push(Cycle::new(200), 0); // heap, seq 0
        q.push(Cycle::new(200), 1); // heap, seq 1
        q.push(Cycle::new(90), 9);
        assert_eq!(q.pop().unwrap().1, 9); // cursor -> 90; 200 now in window
        q.push(Cycle::new(200), 2); // wheel, seq 3
        q.push(Cycle::new(200), 3); // wheel, seq 4
        assert_eq!(q.heap.len(), 2);
        assert_eq!(q.wheel_len, 2);
        for want in 0..4 {
            assert_eq!(q.pop(), Some((Cycle::new(200), want)));
        }
    }

    #[test]
    fn randomized_differential_against_sorted_reference() {
        // Drive the wheel+heap queue and a naive (time, seq)-sorted list
        // with an identical mixed workload — pushes at exactly `now`,
        // behind the cursor, at both sides of the 128-cycle horizon, and
        // far future — and demand identical delivery.
        use crate::DetRng;
        for stream in 0..4u64 {
            let mut rng = DetRng::for_stream(0xE7E77, stream);
            let mut q = EventQueue::new();
            let mut reference: Vec<(u64, u64)> = Vec::new(); // (t, seq)
            let mut seq = 0u64;
            let mut now = 0u64;
            let pop_both =
                |q: &mut EventQueue<u64>, reference: &mut Vec<(u64, u64)>, now: &mut u64| {
                    let (t, id) = q.pop().expect("queue non-empty");
                    *now = t.raw();
                    let i = reference
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &e)| e)
                        .expect("reference non-empty")
                        .0;
                    let (rt, rid) = reference.remove(i);
                    assert_eq!((t.raw(), id), (rt, rid), "stream {stream}");
                };
            for _ in 0..2000 {
                if !q.is_empty() && rng.chance(0.45) {
                    pop_both(&mut q, &mut reference, &mut now);
                } else {
                    let t = match rng.below(6) {
                        0 => now,
                        1 => now.saturating_sub(rng.below(20)),
                        2 => now + 127,
                        3 => now + 128,
                        4 => now + rng.below(127),
                        _ => now + 128 + rng.below(1000),
                    };
                    q.push(Cycle::new(t), seq);
                    reference.push((t, seq));
                    seq += 1;
                }
            }
            while !q.is_empty() {
                pop_both(&mut q, &mut reference, &mut now);
            }
            assert!(reference.is_empty(), "stream {stream}");
        }
    }

    #[test]
    fn iter_visits_wheel_and_heap_with_correct_times() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(40), 'a');
        assert_eq!(q.pop().unwrap().1, 'a'); // cursor -> 40
        q.push(Cycle::new(41), 'w'); // wheel
        q.push(Cycle::new(40 + 127), 'x'); // wheel, last slot
        q.push(Cycle::new(40 + 500), 'h'); // heap
        let mut seen: Vec<(u64, char)> = q.iter().map(|(t, &e)| (t.raw(), e)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(41, 'w'), (167, 'x'), (540, 'h')]);
        // Iteration never disturbs delivery.
        assert_eq!(q.pop(), Some((Cycle::new(41), 'w')));
        assert_eq!(q.pop(), Some((Cycle::new(167), 'x')));
        assert_eq!(q.pop(), Some((Cycle::new(540), 'h')));
        assert!(q.iter().next().is_none());
    }

    #[test]
    fn push_sub_orders_within_a_cycle_regardless_of_push_order() {
        let mut q = EventQueue::new();
        q.push_sub(Cycle::new(10), 30, 'c');
        q.push_sub(Cycle::new(10), 10, 'a');
        q.push_sub(Cycle::new(10), 20, 'b');
        q.push_sub(Cycle::new(5), 99, 'z');
        assert_eq!(q.pop_keyed(), Some((Cycle::new(5), 99, 'z')));
        assert_eq!(q.pop_keyed(), Some((Cycle::new(10), 10, 'a')));
        assert_eq!(q.pop_keyed(), Some((Cycle::new(10), 20, 'b')));
        assert_eq!(q.pop_keyed(), Some((Cycle::new(10), 30, 'c')));
        assert_eq!(q.pop_keyed(), None);
        assert_eq!(q.total_pushed(), 4);
    }

    #[test]
    fn push_sub_orders_across_wheel_and_heap() {
        // Subs must order a cycle's events even when some entered via the
        // far-future heap and others via the wheel after the window
        // caught up.
        let mut q = EventQueue::new();
        q.push_sub(Cycle::new(500), 7, "late-sub"); // heap
        q.push_sub(Cycle::new(400), 1, "warm"); // heap
        assert_eq!(q.pop().unwrap().1, "warm"); // cursor -> 400
        q.push_sub(Cycle::new(500), 3, "early-sub"); // wheel now
        assert_eq!(q.pop_keyed(), Some((Cycle::new(500), 3, "early-sub")));
        assert_eq!(q.pop_keyed(), Some((Cycle::new(500), 7, "late-sub")));
    }

    #[test]
    fn push_routing_counts_wheel_and_heap() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(3), ());
        q.push(Cycle::new(100), ());
        q.push(Cycle::new(1_000), ());
        assert_eq!(q.push_routing(), (2, 1));
    }

    #[test]
    fn with_horizon_rounds_up_and_widens_the_window() {
        // 300-cycle horizon -> 512 slots: a push 300 cycles out rides the
        // wheel; the default 128-slot queue would have sent it to the heap.
        let mut q = EventQueue::with_horizon(300);
        assert_eq!(q.slots.len(), 512);
        assert_eq!(q.occupied.len(), 8);
        q.push(Cycle::new(300), 'w');
        q.push(Cycle::new(512), 'h'); // first time past the widened window
        assert_eq!(q.push_routing(), (1, 1));
        assert_eq!(q.pop(), Some((Cycle::new(300), 'w')));
        assert_eq!(q.pop(), Some((Cycle::new(512), 'h')));
    }

    #[test]
    fn sized_wheel_matches_default_delivery_order() {
        // Differential: identical mixed pushes through the 128-slot and a
        // 1024-slot queue must deliver identically — the wheel size is a
        // routing detail, never an ordering one.
        use crate::DetRng;
        let mut rng = DetRng::for_stream(0x5CA1E, 0);
        let mut small = EventQueue::new();
        let mut big = EventQueue::with_horizon(1024);
        let mut now = 0u64;
        for seq in 0..3000u64 {
            if rng.chance(0.4) && !small.is_empty() {
                let a = small.pop().unwrap();
                let b = big.pop().unwrap();
                assert_eq!(a, b);
                now = a.0.raw();
            } else {
                let t = now + rng.below(2000);
                small.push(Cycle::new(t), seq);
                big.push(Cycle::new(t), seq);
            }
        }
        while let Some(a) = small.pop() {
            assert_eq!(Some(a), big.pop());
        }
        assert!(big.is_empty());
    }

    #[test]
    fn long_monotone_stream_stays_in_wheel() {
        // The steady-state pattern of the simulator: pop at t, push a few
        // events a handful of cycles out. Everything should ride the
        // wheel (the heap stays empty).
        let mut q = EventQueue::new();
        q.push(Cycle::new(0), 0u64);
        let mut delivered = Vec::new();
        while let Some((t, v)) = q.pop() {
            delivered.push((t.raw(), v));
            if v < 300 {
                q.push(t + 14, v + 1); // DRAM-ish
                assert_eq!(q.heap.len(), 0, "near-future push leaked to heap");
            }
        }
        assert_eq!(delivered.len(), 301);
        assert!(delivered.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
