//! The time-ordered event queue at the heart of the simulator.
//!
//! Layout: a 128-slot timing wheel absorbs the near future — in this
//! simulator almost every event schedules a handful of cycles out (DRAM
//! access 14, PP handler occupancies, per-hop mesh latencies) — and a
//! binary heap catches the overflow (far-future events such as watchdog
//! budgets and DMA arrivals, plus any event scheduled behind the wheel's
//! window base). Delivery order is identical to a plain heap keyed by
//! `(time, push sequence)`: nondecreasing time, FIFO within a cycle.

use crate::time::Cycle;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Number of slots in the near-future wheel. Power of two so the
/// slot-index and occupancy-rotation math stays branch-free.
const WHEEL_SLOTS: usize = 128;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;

/// A deterministic discrete-event queue.
///
/// Events are delivered in nondecreasing time order; events scheduled for
/// the same cycle are delivered in the order they were pushed (FIFO), which
/// makes simulations reproducible regardless of container internals.
///
/// # Examples
///
/// ```
/// use flash_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(3), 'b');
/// q.push(Cycle::new(3), 'c'); // same time: FIFO after 'b'
/// q.push(Cycle::new(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Near-future buckets. Slot `t & WHEEL_MASK` holds the events for
    /// absolute time `t` while `t` lies in `[cursor, cursor + 128)`;
    /// within the window each slot maps to exactly one absolute time, so
    /// entries store only their FIFO sequence number.
    slots: Vec<VecDeque<(u64, E)>>,
    /// Bit `i` set iff `slots[i]` is non-empty.
    occupied: u128,
    /// Number of events currently resident in the wheel.
    wheel_len: usize,
    /// Base of the wheel window: the time of the most recently delivered
    /// event. Monotonically nondecreasing, so no resident wheel event is
    /// ever behind it.
    cursor: u64,
    /// Far-future (and, defensively, behind-the-window) overflow.
    heap: BinaryHeap<Entry<E>>,
    /// Total pushes ever; doubles as the next FIFO sequence number.
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: 0,
            wheel_len: 0,
            cursor: 0,
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `ev` to fire at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: Cycle, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        let t = at.raw();
        if t >= self.cursor && t - self.cursor < WHEEL_SLOTS as u64 {
            let slot = (t & WHEEL_MASK) as usize;
            self.slots[slot].push_back((seq, ev));
            self.occupied |= 1u128 << slot;
            self.wheel_len += 1;
        } else {
            self.heap.push(Entry { at, seq, ev });
        }
    }

    /// `(time, seq)` of the earliest wheel-resident event, if any. O(1):
    /// rotate the occupancy bitmap so the window base lands on bit 0,
    /// then count trailing zeros.
    #[inline]
    fn wheel_front(&self) -> Option<(u64, u64)> {
        if self.wheel_len == 0 {
            return None;
        }
        let rot = self
            .occupied
            .rotate_right((self.cursor & WHEEL_MASK) as u32);
        let offset = rot.trailing_zeros() as u64;
        debug_assert!(offset < WHEEL_SLOTS as u64);
        let t = self.cursor + offset;
        let slot = (t & WHEEL_MASK) as usize;
        let seq = self.slots[slot]
            .front()
            .expect("occupancy bit set on empty slot")
            .0;
        Some((t, seq))
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let wheel = self.wheel_front();
        let heap = self.heap.peek().map(|e| (e.at.raw(), e.seq));
        let take_wheel = match (wheel, heap) {
            (Some(w), Some(h)) => w <= h,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_wheel {
            let (t, _) = wheel.unwrap();
            let slot = (t & WHEEL_MASK) as usize;
            let (_, ev) = self.slots[slot].pop_front().expect("wheel front vanished");
            if self.slots[slot].is_empty() {
                self.occupied &= !(1u128 << slot);
            }
            self.wheel_len -= 1;
            self.cursor = self.cursor.max(t);
            Some((Cycle::new(t), ev))
        } else {
            let e = self.heap.pop().expect("heap peeked non-empty");
            self.cursor = self.cursor.max(e.at.raw());
            Some((e.at, e.ev))
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        let wheel = self.wheel_front();
        let heap = self.heap.peek().map(|e| (e.at.raw(), e.seq));
        match (wheel, heap) {
            (Some(w), Some(h)) => Some(Cycle::new(w.min(h).0)),
            (Some((t, _)), None) | (None, Some((t, _))) => Some(Cycle::new(t)),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (for throughput statistics).
    pub fn total_pushed(&self) -> u64 {
        self.seq
    }

    /// Visits every pending event as `(time, &event)` in unspecified
    /// order (wedge diagnostics: per-node occupancy counts, suspect-line
    /// harvesting). O(pending); never perturbs delivery order.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &E)> {
        let cursor = self.cursor;
        let wheel = self.slots.iter().enumerate().flat_map(move |(s, q)| {
            // The absolute time of slot `s` within the current window
            // `[cursor, cursor + 128)`.
            let offset = (s as u64).wrapping_sub(cursor) & WHEEL_MASK;
            let t = Cycle::new(cursor + offset);
            q.iter().map(move |(_, e)| (t, e))
        });
        wheel.chain(self.heap.iter().map(|e| (e.at, &e.ev)))
    }

    /// Drops every pending event, resetting the wheel window to time
    /// zero. `total_pushed()` is preserved.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
        self.occupied = 0;
        self.wheel_len = 0;
        self.cursor = 0;
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(Cycle, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (Cycle, E)>>(&mut self, iter: I) {
        for (at, ev) in iter {
            self.push(at, ev);
        }
    }
}

impl<E> FromIterator<(Cycle, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (Cycle, E)>>(iter: I) -> Self {
        let mut q = Self::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(5), 2);
        q.push(Cycle::new(7), 3);
        assert_eq!(q.pop(), Some((Cycle::new(5), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(7), 3)));
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(3), ());
        q.push(Cycle::new(1), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(1), 'a');
        q.push(Cycle::new(4), 'd');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(Cycle::new(2), 'b');
        q.push(Cycle::new(3), 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'd');
    }

    #[test]
    fn wheel_and_heap_interleave_at_the_same_cycle() {
        // Far-future pushes land in the heap; once the cursor catches up,
        // same-cycle pushes land in the wheel with later sequence
        // numbers. FIFO order across the two containers must hold.
        let mut q = EventQueue::new();
        q.push(Cycle::new(1_000), "heap-first"); // > 128 out: heap
        q.push(Cycle::new(1), "warm");
        assert_eq!(q.pop().unwrap().1, "warm"); // cursor -> 1
        q.push(Cycle::new(999), "heap-too"); // still > cursor+128
        assert_eq!(q.pop().unwrap().1, "heap-too"); // cursor -> 999
        q.push(Cycle::new(1_000), "wheel-second"); // in window now
        assert_eq!(q.pop().unwrap().1, "heap-first");
        assert_eq!(q.pop().unwrap().1, "wheel-second");
        assert!(q.is_empty());
    }

    #[test]
    fn window_boundary_routing() {
        let mut q = EventQueue::new();
        // Exactly the last wheel slot vs first heap time.
        q.push(Cycle::new(127), 'w');
        q.push(Cycle::new(128), 'h');
        assert_eq!(q.wheel_len, 1);
        assert_eq!(q.heap.len(), 1);
        assert_eq!(q.pop(), Some((Cycle::new(127), 'w')));
        assert_eq!(q.pop(), Some((Cycle::new(128), 'h')));
    }

    #[test]
    fn push_behind_cursor_still_delivers() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(50), 'a');
        assert_eq!(q.pop().unwrap().1, 'a'); // cursor -> 50
                                             // Behind the window base: routed to the heap, still delivered
                                             // before later events.
        q.push(Cycle::new(10), 'b');
        q.push(Cycle::new(51), 'c');
        assert_eq!(q.pop(), Some((Cycle::new(10), 'b')));
        assert_eq!(q.pop(), Some((Cycle::new(51), 'c')));
    }

    #[test]
    fn clear_and_extend() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), 1);
        q.push(Cycle::new(500), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2, "clear keeps the push statistic");
        q.extend([
            (Cycle::new(3), 30),
            (Cycle::new(2), 20),
            (Cycle::new(2), 21),
        ]);
        assert_eq!(q.total_pushed(), 5);
        assert_eq!(q.pop(), Some((Cycle::new(2), 20)));
        assert_eq!(q.pop(), Some((Cycle::new(2), 21)));
        assert_eq!(q.pop(), Some((Cycle::new(3), 30)));
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u32> = [(Cycle::new(9), 9), (Cycle::new(4), 4)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
    }

    #[test]
    fn push_at_exactly_now_lands_in_wheel() {
        // `t == cursor` is the first slot of the window, not "behind" it:
        // a handler scheduling a zero-latency follow-up at the current
        // cycle must ride the wheel and fire before anything later.
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 'a');
        assert_eq!(q.pop().unwrap().1, 'a'); // cursor -> 30
        q.push(Cycle::new(31), 'c');
        q.push(Cycle::new(30), 'b'); // exactly at the cursor
        assert_eq!(q.heap.len(), 0, "t == cursor belongs to the wheel");
        assert_eq!(q.pop(), Some((Cycle::new(30), 'b')));
        assert_eq!(q.pop(), Some((Cycle::new(31), 'c')));
    }

    #[test]
    fn horizon_tracks_the_cursor() {
        // The 128-slot window is relative to the *cursor*, not to time
        // zero: after delivery advances the base, `cursor + 127` is the
        // last wheel-resident time and `cursor + 128` overflows.
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), 'a');
        assert_eq!(q.pop().unwrap().1, 'a'); // cursor -> 5
        q.push(Cycle::new(5 + 127), 'w');
        q.push(Cycle::new(5 + 128), 'h');
        assert_eq!(q.wheel_len, 1);
        assert_eq!(q.heap.len(), 1);
        assert_eq!(q.pop(), Some((Cycle::new(132), 'w')));
        assert_eq!(q.pop(), Some((Cycle::new(133), 'h')));
        assert!(q.is_empty());
    }

    #[test]
    fn heap_reentry_preserves_fifo_seq() {
        // Events for one cycle split across the heap (pushed while the
        // cycle was beyond the horizon: early sequence numbers) and the
        // wheel (pushed after the window caught up: later ones). Global
        // delivery must still follow push order within the cycle.
        let mut q = EventQueue::new();
        q.push(Cycle::new(200), 0); // heap, seq 0
        q.push(Cycle::new(200), 1); // heap, seq 1
        q.push(Cycle::new(90), 9);
        assert_eq!(q.pop().unwrap().1, 9); // cursor -> 90; 200 now in window
        q.push(Cycle::new(200), 2); // wheel, seq 3
        q.push(Cycle::new(200), 3); // wheel, seq 4
        assert_eq!(q.heap.len(), 2);
        assert_eq!(q.wheel_len, 2);
        for want in 0..4 {
            assert_eq!(q.pop(), Some((Cycle::new(200), want)));
        }
    }

    #[test]
    fn randomized_differential_against_sorted_reference() {
        // Drive the wheel+heap queue and a naive (time, seq)-sorted list
        // with an identical mixed workload — pushes at exactly `now`,
        // behind the cursor, at both sides of the 128-cycle horizon, and
        // far future — and demand identical delivery.
        use crate::DetRng;
        for stream in 0..4u64 {
            let mut rng = DetRng::for_stream(0xE7E77, stream);
            let mut q = EventQueue::new();
            let mut reference: Vec<(u64, u64)> = Vec::new(); // (t, seq)
            let mut seq = 0u64;
            let mut now = 0u64;
            let pop_both =
                |q: &mut EventQueue<u64>, reference: &mut Vec<(u64, u64)>, now: &mut u64| {
                    let (t, id) = q.pop().expect("queue non-empty");
                    *now = t.raw();
                    let i = reference
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &e)| e)
                        .expect("reference non-empty")
                        .0;
                    let (rt, rid) = reference.remove(i);
                    assert_eq!((t.raw(), id), (rt, rid), "stream {stream}");
                };
            for _ in 0..2000 {
                if !q.is_empty() && rng.chance(0.45) {
                    pop_both(&mut q, &mut reference, &mut now);
                } else {
                    let t = match rng.below(6) {
                        0 => now,
                        1 => now.saturating_sub(rng.below(20)),
                        2 => now + 127,
                        3 => now + 128,
                        4 => now + rng.below(127),
                        _ => now + 128 + rng.below(1000),
                    };
                    q.push(Cycle::new(t), seq);
                    reference.push((t, seq));
                    seq += 1;
                }
            }
            while !q.is_empty() {
                pop_both(&mut q, &mut reference, &mut now);
            }
            assert!(reference.is_empty(), "stream {stream}");
        }
    }

    #[test]
    fn iter_visits_wheel_and_heap_with_correct_times() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(40), 'a');
        assert_eq!(q.pop().unwrap().1, 'a'); // cursor -> 40
        q.push(Cycle::new(41), 'w'); // wheel
        q.push(Cycle::new(40 + 127), 'x'); // wheel, last slot
        q.push(Cycle::new(40 + 500), 'h'); // heap
        let mut seen: Vec<(u64, char)> = q.iter().map(|(t, &e)| (t.raw(), e)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(41, 'w'), (167, 'x'), (540, 'h')]);
        // Iteration never disturbs delivery.
        assert_eq!(q.pop(), Some((Cycle::new(41), 'w')));
        assert_eq!(q.pop(), Some((Cycle::new(167), 'x')));
        assert_eq!(q.pop(), Some((Cycle::new(540), 'h')));
        assert!(q.iter().next().is_none());
    }

    #[test]
    fn long_monotone_stream_stays_in_wheel() {
        // The steady-state pattern of the simulator: pop at t, push a few
        // events a handful of cycles out. Everything should ride the
        // wheel (the heap stays empty).
        let mut q = EventQueue::new();
        q.push(Cycle::new(0), 0u64);
        let mut delivered = Vec::new();
        while let Some((t, v)) = q.pop() {
            delivered.push((t.raw(), v));
            if v < 300 {
                q.push(t + 14, v + 1); // DRAM-ish
                assert_eq!(q.heap.len(), 0, "near-future push leaked to heap");
            }
        }
        assert_eq!(delivered.len(), 301);
        assert!(delivered.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
