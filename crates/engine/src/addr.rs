//! Physical addresses.
//!
//! FLASH uses 128-byte cache lines everywhere: the processor cache, the
//! coherence unit, and the MAGIC caches all operate on 128-byte lines.

use std::fmt;

/// Bytes per cache line (both machines, per paper §3.2).
pub const LINE_BYTES: u64 = 128;

/// `log2(LINE_BYTES)`.
pub const LINE_SHIFT: u32 = 7;

/// A physical byte address in the machine's shared address space.
///
/// # Examples
///
/// ```
/// use flash_engine::Addr;
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line().raw(), 0x1200);
/// assert_eq!(a.line_index(), 0x1234 >> 7);
/// assert_eq!(a.offset_in_line(), 0x34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Creates the address of the line with the given line index.
    #[inline]
    pub const fn from_line_index(idx: u64) -> Self {
        Addr(idx << LINE_SHIFT)
    }

    /// The raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The address rounded down to its 128-byte line.
    #[inline]
    pub const fn line(self) -> Addr {
        Addr(self.0 & !(LINE_BYTES - 1))
    }

    /// Global index of the 128-byte line containing this address.
    #[inline]
    pub const fn line_index(self) -> u64 {
        self.0 >> LINE_SHIFT
    }

    /// Byte offset of this address within its line.
    #[inline]
    pub const fn offset_in_line(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// Whether two addresses fall in the same 128-byte line.
    #[inline]
    pub const fn same_line(self, other: Addr) -> bool {
        self.line_index() == other.line_index()
    }

    /// This address displaced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        let a = Addr::new(0x0123_4567);
        assert_eq!(a.line().raw() % LINE_BYTES, 0);
        assert_eq!(a.line_index(), a.raw() / LINE_BYTES);
        assert_eq!(a.line().offset(a.offset_in_line()), a);
    }

    #[test]
    fn same_line_detection() {
        let a = Addr::new(0x1000);
        assert!(a.same_line(Addr::new(0x107f)));
        assert!(!a.same_line(Addr::new(0x1080)));
    }

    #[test]
    fn from_line_index_round_trips() {
        for idx in [0u64, 1, 977, 1 << 30] {
            assert_eq!(Addr::from_line_index(idx).line_index(), idx);
        }
    }
}
