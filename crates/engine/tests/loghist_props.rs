//! Property tests for [`LogHist`]'s merge algebra — the contract behind
//! the `flash-latency-v1` export's shard invariance.
//!
//! The observer's per-class latency histograms are built per shard and
//! combined by [`LogHist::merge`]; the report promises the combined
//! percentiles are *exactly* those of a single-shard run. That holds iff
//! merge is plain bucket addition: commutative, associative, with the
//! empty histogram as identity, and "record everything in one histogram"
//! indistinguishable from "record anywhere, merge later" for any
//! partition of the samples.

use flash_engine::LogHist;
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> LogHist {
    let mut h = LogHist::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Samples spanning the interesting octaves: exact unit buckets (0..8),
/// mid-range latencies, and the far tail.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..512,
        3 => 512u64..1_000_000,
        1 => any::<u64>(),
    ]
}

proptest! {
    #[test]
    fn merge_is_commutative(a in proptest::collection::vec(sample(), 0..200),
                            b in proptest::collection::vec(sample(), 0..200)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in proptest::collection::vec(sample(), 0..150),
                            b in proptest::collection::vec(sample(), 0..150),
                            c in proptest::collection::vec(sample(), 0..150)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone(); // (a + b) + c
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone(); // a + (b + c)
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn empty_is_the_merge_identity(a in proptest::collection::vec(sample(), 0..200)) {
        let h = hist_of(&a);
        let mut merged = h.clone();
        merged.merge(&LogHist::new());
        prop_assert_eq!(&merged, &h);
        let mut from_empty = LogHist::new();
        from_empty.merge(&h);
        prop_assert_eq!(&from_empty, &h);
    }

    /// The shard-invariance contract itself: split one sample stream
    /// across `k` "shards" by an arbitrary assignment, merge the shard
    /// histograms, and every observable — the whole histogram, and
    /// explicitly each exported percentile (p50/p99/p999), count, sum,
    /// min, max — equals the single-shard run's.
    #[test]
    fn sharded_merge_equals_single_shard(samples in proptest::collection::vec(sample(), 1..400),
                                         assign in proptest::collection::vec(0usize..4, 1..400),
                                         k in 1usize..=4) {
        let single = hist_of(&samples);
        let mut shards = vec![LogHist::new(); k];
        for (i, &s) in samples.iter().enumerate() {
            shards[assign[i % assign.len()] % k].record(s);
        }
        let mut merged = LogHist::new();
        for sh in &shards {
            merged.merge(sh);
        }
        prop_assert_eq!(&merged, &single);
        for permille in [500u64, 990, 999] {
            prop_assert_eq!(merged.percentile(permille), single.percentile(permille));
        }
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.sum(), single.sum());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
    }

    /// Percentile is monotone in the requested rank and brackets to
    /// [min-bucket-floor, max]: what makes p50 <= p99 <= p999 <= max a
    /// structural guarantee of the latency report, not a property of
    /// the data.
    #[test]
    fn percentiles_are_monotone(samples in proptest::collection::vec(sample(), 1..300)) {
        let h = hist_of(&samples);
        let mut last = 0;
        for permille in [0u64, 100, 250, 500, 900, 990, 999, 1000] {
            let p = h.percentile(permille);
            prop_assert!(p >= last, "percentile must be monotone in rank");
            last = p;
        }
        prop_assert!(last <= h.max(), "no percentile exceeds the true max");
    }
}
