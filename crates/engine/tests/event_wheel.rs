//! Property test: the wheel-backed `EventQueue` delivers the exact
//! `(time, FIFO)` order of a reference binary heap on random push/pop
//! traces.
//!
//! The reference is the pre-wheel implementation: a `BinaryHeap` keyed by
//! `(time, push sequence)` with inverted ordering. Any divergence in the
//! delivered `(time, payload)` stream, in `peek_time`, or in `len` after
//! every operation is a bug in the wheel's window routing.

use flash_engine::{Cycle, EventQueue};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-wheel queue: plain heap on (time, seq).
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, u32)>>,
    seq: u64,
}

impl RefQueue {
    fn push(&mut self, at: Cycle, ev: u32) {
        self.heap.push(Reverse((at, self.seq, ev)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Cycle, u32)> {
        self.heap.pop().map(|Reverse((at, _, ev))| (at, ev))
    }

    fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[derive(Debug, Clone)]
enum TraceOp {
    /// Push at `now + delta` where `now` is the time of the last popped
    /// event (the simulator's invariant: schedules are relative to the
    /// current cycle). Small deltas exercise the wheel, large ones the
    /// heap overflow, and `SameSlot` aliasing (delta = 128/256) the
    /// window-boundary routing.
    PushNear(u8),
    PushFar(u16),
    PushAliased(bool), // false: +128, true: +256 (same slot, out of window)
    Pop,
    PopMany(u8),
}

fn op_strategy() -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        6 => (0u8..=130).prop_map(TraceOp::PushNear),
        2 => (120u16..2000).prop_map(TraceOp::PushFar),
        1 => any::<bool>().prop_map(TraceOp::PushAliased),
        4 => Just(TraceOp::Pop),
        1 => (1u8..8).prop_map(TraceOp::PopMany),
    ]
}

fn run_trace(ops: &[TraceOp]) {
    let mut real: EventQueue<u32> = EventQueue::new();
    let mut reference = RefQueue::default();
    let mut now = 0u64;
    let mut payload = 0u32;
    let do_pop = |real: &mut EventQueue<u32>, reference: &mut RefQueue, now: &mut u64| {
        let a = real.pop();
        let b = reference.pop();
        assert_eq!(a, b, "pop diverged at now={now}");
        if let Some((t, _)) = a {
            *now = t.raw();
        }
    };
    for op in ops {
        match *op {
            TraceOp::PushNear(d) => {
                let at = Cycle::new(now + d as u64);
                real.push(at, payload);
                reference.push(at, payload);
                payload += 1;
            }
            TraceOp::PushFar(d) => {
                let at = Cycle::new(now + d as u64);
                real.push(at, payload);
                reference.push(at, payload);
                payload += 1;
            }
            TraceOp::PushAliased(far) => {
                let at = Cycle::new(now + if far { 256 } else { 128 });
                real.push(at, payload);
                reference.push(at, payload);
                payload += 1;
            }
            TraceOp::Pop => do_pop(&mut real, &mut reference, &mut now),
            TraceOp::PopMany(n) => {
                for _ in 0..n {
                    do_pop(&mut real, &mut reference, &mut now);
                }
            }
        }
        assert_eq!(real.len(), reference.len(), "len diverged");
        assert_eq!(
            real.peek_time(),
            reference.peek_time(),
            "peek_time diverged"
        );
        assert_eq!(real.is_empty(), reference.len() == 0);
    }
    // Drain both completely: the tails must agree element-for-element.
    loop {
        let a = real.pop();
        let b = reference.pop();
        assert_eq!(a, b, "drain diverged");
        if a.is_none() {
            break;
        }
    }
    assert_eq!(real.total_pushed(), payload as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn wheel_matches_reference_heap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run_trace(&ops);
    }
}

#[test]
fn dense_same_cycle_burst_stays_fifo() {
    // The worst case for slot bookkeeping: hundreds of events on one
    // cycle interleaved with a far-future backlog.
    let mut real: EventQueue<u32> = EventQueue::new();
    let mut reference = RefQueue::default();
    for i in 0..400u32 {
        let at = Cycle::new(if i % 5 == 0 { 10_000 } else { 64 });
        real.push(at, i);
        reference.push(at, i);
    }
    loop {
        let a = real.pop();
        let b = reference.pop();
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn clear_resets_window_for_reuse() {
    let mut q: EventQueue<u32> = EventQueue::new();
    q.push(Cycle::new(1_000_000), 1);
    while q.pop().is_some() {}
    q.clear();
    // After clear the window base is back at zero: a time-0 push must be
    // wheel-resident and delivered first.
    q.extend([(Cycle::new(5), 50), (Cycle::new(0), 0)]);
    assert_eq!(q.pop(), Some((Cycle::new(0), 0)));
    assert_eq!(q.pop(), Some((Cycle::new(5), 50)));
}
