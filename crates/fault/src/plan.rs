//! Declarative fault plans.
//!
//! A [`FaultPlan`] is pure data: it names the timing faults to inject and
//! the seed that drives every probabilistic decision. Two runs of the same
//! workload under the same plan are byte-identical — the plan *is* the
//! replay token. The plan participates in `MachineConfig`'s `Debug`
//! rendering, so it also keys the run-matrix memo cache correctly.

/// A scripted (deterministic, non-random) outage of one directed mesh
/// link: every message from `src` to `dst` is held — re-offered to the
/// network later, never dropped — while the simulation clock is inside
/// `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDown {
    /// Source node of the directed link.
    pub src: u16,
    /// Destination node of the directed link.
    pub dst: u16,
    /// First cycle of the outage.
    pub from: u64,
    /// End of the outage (`None`: permanent — the canonical crafted wedge).
    pub until: Option<u64>,
}

impl LinkDown {
    /// Whether the outage covers cycle `at`.
    pub fn covers(&self, at: u64) -> bool {
        at >= self.from && self.until.is_none_or(|u| at < u)
    }
}

/// A seeded, deterministic timing-fault plan.
///
/// All faults preserve protocol semantics (they only move events in
/// time), so any plan composed with checked mode must still converge with
/// the coherence net green. The default ([`FaultPlan::none`]) is fully
/// disarmed: the machine builds no injector, draws no random numbers, and
/// is cycle-for-cycle identical to a build without the fault subsystem.
///
/// # Examples
///
/// ```
/// use flash_fault::FaultPlan;
///
/// assert!(FaultPlan::none().is_none());
/// assert!(!FaultPlan::light(7).is_none());
/// // An armed plan with all rates zero injects nothing — used to pin
/// // that the hooks themselves are timing-invisible.
/// let z = FaultPlan::zeroed(7);
/// assert!(!z.is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Whether the machine arms a [`crate::FaultInjector`] at all. A
    /// disarmed plan is timing-invisible by construction.
    pub armed: bool,
    /// Seed for the per-fault-class `DetRng` streams.
    pub seed: u64,
    /// Per-message probability of a per-hop delay spike.
    pub hop_spike_p: f64,
    /// Extra transit cycles charged by one hop spike.
    pub hop_spike_cycles: u64,
    /// Per-message probability that the message's directed link enters a
    /// transient stall window.
    pub link_stall_p: f64,
    /// Length of one transient link stall, in cycles.
    pub link_stall_cycles: u64,
    /// Per-message probability that the relevant NI queue (input at the
    /// receiver, output at the sender) freezes.
    pub ni_freeze_p: f64,
    /// Length of one NI queue freeze, in cycles.
    pub ni_freeze_cycles: u64,
    /// Per-handler-invocation probability of a PP slowdown burst.
    pub pp_burst_p: f64,
    /// Cycles the PP is held busy by one burst.
    pub pp_burst_cycles: u64,
    /// DRAM refresh period in cycles (0: no refresh stalls). Refresh is
    /// phase-locked to the global clock, not random.
    pub dram_refresh_period: u64,
    /// Cycles the memory controller is blocked at the start of each
    /// refresh period.
    pub dram_refresh_cycles: u64,
    /// Scripted link outages (applied before any probabilistic fault).
    pub link_down: Vec<LinkDown>,
}

impl FaultPlan {
    /// No faults, no injector, no RNG draws: the default. Timing-identical
    /// to a machine without the fault subsystem.
    pub fn none() -> Self {
        FaultPlan {
            armed: false,
            ..Self::zeroed(0)
        }
    }

    /// An *armed* plan whose every rate is zero. The injector is built
    /// and consulted on each hook, but never injects — this pins that the
    /// hooks themselves do not perturb timing.
    pub fn zeroed(seed: u64) -> Self {
        FaultPlan {
            armed: true,
            seed,
            hop_spike_p: 0.0,
            hop_spike_cycles: 0,
            link_stall_p: 0.0,
            link_stall_cycles: 0,
            ni_freeze_p: 0.0,
            ni_freeze_cycles: 0,
            pp_burst_p: 0.0,
            pp_burst_cycles: 0,
            dram_refresh_period: 0,
            dram_refresh_cycles: 0,
            link_down: Vec::new(),
        }
    }

    /// A light perturbation mix for routine fault-soak runs: occasional
    /// hop spikes, rare short link stalls and NI freezes, sporadic PP
    /// bursts, and realistic refresh stalls.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            hop_spike_p: 0.02,
            hop_spike_cycles: 25,
            link_stall_p: 0.005,
            link_stall_cycles: 200,
            ni_freeze_p: 0.002,
            ni_freeze_cycles: 150,
            pp_burst_p: 0.01,
            pp_burst_cycles: 40,
            dram_refresh_period: 50_000,
            dram_refresh_cycles: 120,
            ..Self::zeroed(seed)
        }
    }

    /// An adversarial mix: frequent spikes, long stalls and freezes,
    /// heavy PP bursts, aggressive refresh. Convergence gets slow but
    /// must still happen, checker green.
    pub fn stress(seed: u64) -> Self {
        FaultPlan {
            hop_spike_p: 0.08,
            hop_spike_cycles: 60,
            link_stall_p: 0.02,
            link_stall_cycles: 500,
            ni_freeze_p: 0.01,
            ni_freeze_cycles: 400,
            pp_burst_p: 0.04,
            pp_burst_cycles: 120,
            dram_refresh_period: 20_000,
            dram_refresh_cycles: 250,
            ..Self::zeroed(seed)
        }
    }

    /// Whether this plan is fully disarmed (the machine skips the fault
    /// subsystem entirely).
    pub fn is_none(&self) -> bool {
        !self.armed
    }

    /// Adds a scripted outage of the directed link `src -> dst` covering
    /// `[from, until)`; `until = None` is permanent.
    pub fn with_link_down(mut self, src: u16, dst: u16, from: u64, until: Option<u64>) -> Self {
        self.armed = true;
        self.link_down.push(LinkDown {
            src,
            dst,
            from,
            until,
        });
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disarmed_and_presets_are_armed() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        for p in [
            FaultPlan::zeroed(1),
            FaultPlan::light(1),
            FaultPlan::stress(1),
        ] {
            assert!(!p.is_none());
        }
    }

    #[test]
    fn link_down_window_semantics() {
        let permanent = LinkDown {
            src: 1,
            dst: 2,
            from: 100,
            until: None,
        };
        assert!(!permanent.covers(99));
        assert!(permanent.covers(100));
        assert!(permanent.covers(u64::MAX));
        let windowed = LinkDown {
            until: Some(200),
            ..permanent
        };
        assert!(windowed.covers(199));
        assert!(!windowed.covers(200));
    }

    #[test]
    fn with_link_down_arms_the_plan() {
        let p = FaultPlan::none().with_link_down(0, 1, 0, None);
        assert!(!p.is_none());
        assert_eq!(p.link_down.len(), 1);
    }

    #[test]
    fn debug_rendering_distinguishes_plans() {
        // The plan keys the run-matrix memo cache through `Debug`.
        let a = format!("{:?}", FaultPlan::none());
        let b = format!("{:?}", FaultPlan::light(1));
        let c = format!("{:?}", FaultPlan::light(2));
        assert_ne!(a, b);
        assert_ne!(b, c);
    }
}
