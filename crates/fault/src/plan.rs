//! Declarative fault plans.
//!
//! A [`FaultPlan`] is pure data: it names the timing faults to inject and
//! the seed that drives every probabilistic decision. Two runs of the same
//! workload under the same plan are byte-identical — the plan *is* the
//! replay token. The plan participates in `MachineConfig`'s `Debug`
//! rendering, so it also keys the run-matrix memo cache correctly.
//!
//! For minimization the plan decomposes into an editable list of
//! [`FaultAtom`]s ([`FaultPlan::atoms`] / [`FaultPlan::from_atoms`]): the
//! delta-debugger drops atoms one subset at a time and rebuilds a plan
//! from the survivors, so "which fault classes are load-bearing for this
//! failure" falls out of the shrink instead of manual bisection.

use flash_engine::json::Json;

/// A scripted (deterministic, non-random) outage of one directed mesh
/// link: every message from `src` to `dst` is held — re-offered to the
/// network later, never dropped — while the simulation clock is inside
/// `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDown {
    /// Source node of the directed link.
    pub src: u16,
    /// Destination node of the directed link.
    pub dst: u16,
    /// First cycle of the outage.
    pub from: u64,
    /// End of the outage (`None`: permanent — the canonical crafted wedge).
    pub until: Option<u64>,
}

impl LinkDown {
    /// Whether the outage covers cycle `at`.
    pub fn covers(&self, at: u64) -> bool {
        at >= self.from && self.until.is_none_or(|u| at < u)
    }
}

/// One independently removable ingredient of a [`FaultPlan`].
///
/// The probabilistic fault classes become one atom each (rate plus
/// magnitude travel together: halving a probability changes *which*
/// messages fault and therefore the whole downstream schedule, so the
/// minimizer treats a class as present-or-absent, not tunable), and every
/// scripted [`LinkDown`] is its own atom. The plan seed is *not* an atom —
/// it is carried alongside the list so that the surviving atoms replay the
/// same RNG streams.
///
/// # Examples
///
/// ```
/// use flash_fault::{FaultAtom, FaultPlan};
///
/// let plan = FaultPlan::light(7).with_link_down(1, 2, 1_000, None);
/// let atoms = plan.atoms();
/// assert_eq!(atoms.len(), 6, "five light-mix classes + one outage");
/// assert_eq!(FaultPlan::from_atoms(plan.seed, &atoms), plan);
/// // Dropping every atom yields the disarmed plan.
/// assert!(FaultPlan::from_atoms(plan.seed, &[]).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAtom {
    /// Per-hop delay spikes: probability and extra cycles per spike.
    HopSpikes {
        /// Per-message spike probability.
        p: f64,
        /// Extra transit cycles per spike.
        cycles: u64,
    },
    /// Transient directed-link stalls.
    LinkStalls {
        /// Per-message stall-window probability.
        p: f64,
        /// Stall window length in cycles.
        cycles: u64,
    },
    /// NI queue freezes.
    NiFreezes {
        /// Per-message freeze probability.
        p: f64,
        /// Freeze length in cycles.
        cycles: u64,
    },
    /// PP handler slowdown bursts.
    PpBursts {
        /// Per-invocation burst probability.
        p: f64,
        /// Cycles the PP is held busy per burst.
        cycles: u64,
    },
    /// Phase-locked DRAM refresh stalls.
    DramRefresh {
        /// Refresh period in cycles.
        period: u64,
        /// Controller-blocked cycles per refresh.
        cycles: u64,
    },
    /// One scripted directed-link outage.
    LinkDown(LinkDown),
}

impl FaultAtom {
    /// Stable kind tag (also the JSON discriminant).
    pub fn kind(&self) -> &'static str {
        match self {
            FaultAtom::HopSpikes { .. } => "hop_spikes",
            FaultAtom::LinkStalls { .. } => "link_stalls",
            FaultAtom::NiFreezes { .. } => "ni_freezes",
            FaultAtom::PpBursts { .. } => "pp_bursts",
            FaultAtom::DramRefresh { .. } => "dram_refresh",
            FaultAtom::LinkDown(_) => "link_down",
        }
    }

    /// Serializes the atom as one JSON object.
    pub fn to_json(&self) -> Json {
        match *self {
            FaultAtom::HopSpikes { p, cycles }
            | FaultAtom::LinkStalls { p, cycles }
            | FaultAtom::NiFreezes { p, cycles }
            | FaultAtom::PpBursts { p, cycles } => Json::obj(vec![
                ("kind", Json::str(self.kind())),
                ("p", Json::Float(p)),
                ("cycles", Json::UInt(cycles)),
            ]),
            FaultAtom::DramRefresh { period, cycles } => Json::obj(vec![
                ("kind", Json::str(self.kind())),
                ("period", Json::UInt(period)),
                ("cycles", Json::UInt(cycles)),
            ]),
            FaultAtom::LinkDown(l) => Json::obj(vec![
                ("kind", Json::str(self.kind())),
                ("src", Json::UInt(l.src as u64)),
                ("dst", Json::UInt(l.dst as u64)),
                ("from", Json::UInt(l.from)),
                (
                    "until",
                    match l.until {
                        Some(u) => Json::UInt(u),
                        None => Json::Null,
                    },
                ),
            ]),
        }
    }

    /// Parses one atom back from its JSON object form.
    pub fn from_json(v: &Json) -> Result<FaultAtom, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("fault atom: missing `kind`")?;
        let p = || {
            v.get("p")
                .and_then(Json::as_f64)
                .ok_or(format!("fault atom {kind}: missing `p`"))
        };
        let cycles = v
            .get("cycles")
            .and_then(Json::as_u64)
            .ok_or(format!("fault atom {kind}: missing `cycles`"));
        match kind {
            "hop_spikes" => Ok(FaultAtom::HopSpikes {
                p: p()?,
                cycles: cycles?,
            }),
            "link_stalls" => Ok(FaultAtom::LinkStalls {
                p: p()?,
                cycles: cycles?,
            }),
            "ni_freezes" => Ok(FaultAtom::NiFreezes {
                p: p()?,
                cycles: cycles?,
            }),
            "pp_bursts" => Ok(FaultAtom::PpBursts {
                p: p()?,
                cycles: cycles?,
            }),
            "dram_refresh" => Ok(FaultAtom::DramRefresh {
                period: v
                    .get("period")
                    .and_then(Json::as_u64)
                    .ok_or("fault atom dram_refresh: missing `period`")?,
                cycles: cycles?,
            }),
            "link_down" => {
                let field = |name: &str| {
                    v.get(name)
                        .and_then(Json::as_u64)
                        .ok_or(format!("fault atom link_down: missing `{name}`"))
                };
                Ok(FaultAtom::LinkDown(LinkDown {
                    src: field("src")? as u16,
                    dst: field("dst")? as u16,
                    from: field("from")?,
                    until: match v.get("until") {
                        None | Some(Json::Null) => None,
                        Some(u) => Some(u.as_u64().ok_or("fault atom link_down: bad `until`")?),
                    },
                }))
            }
            other => Err(format!("fault atom: unknown kind `{other}`")),
        }
    }
}

/// A seeded, deterministic timing-fault plan.
///
/// All faults preserve protocol semantics (they only move events in
/// time), so any plan composed with checked mode must still converge with
/// the coherence net green. The default ([`FaultPlan::none`]) is fully
/// disarmed: the machine builds no injector, draws no random numbers, and
/// is cycle-for-cycle identical to a build without the fault subsystem.
///
/// # Examples
///
/// ```
/// use flash_fault::FaultPlan;
///
/// assert!(FaultPlan::none().is_none());
/// assert!(!FaultPlan::light(7).is_none());
/// // An armed plan with all rates zero injects nothing — used to pin
/// // that the hooks themselves are timing-invisible.
/// let z = FaultPlan::zeroed(7);
/// assert!(!z.is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Whether the machine arms a [`crate::FaultInjector`] at all. A
    /// disarmed plan is timing-invisible by construction.
    pub armed: bool,
    /// Seed for the per-fault-class `DetRng` streams.
    pub seed: u64,
    /// Per-message probability of a per-hop delay spike.
    pub hop_spike_p: f64,
    /// Extra transit cycles charged by one hop spike.
    pub hop_spike_cycles: u64,
    /// Per-message probability that the message's directed link enters a
    /// transient stall window.
    pub link_stall_p: f64,
    /// Length of one transient link stall, in cycles.
    pub link_stall_cycles: u64,
    /// Per-message probability that the relevant NI queue (input at the
    /// receiver, output at the sender) freezes.
    pub ni_freeze_p: f64,
    /// Length of one NI queue freeze, in cycles.
    pub ni_freeze_cycles: u64,
    /// Per-handler-invocation probability of a PP slowdown burst.
    pub pp_burst_p: f64,
    /// Cycles the PP is held busy by one burst.
    pub pp_burst_cycles: u64,
    /// DRAM refresh period in cycles (0: no refresh stalls). Refresh is
    /// phase-locked to the global clock, not random.
    pub dram_refresh_period: u64,
    /// Cycles the memory controller is blocked at the start of each
    /// refresh period.
    pub dram_refresh_cycles: u64,
    /// Scripted link outages (applied before any probabilistic fault).
    pub link_down: Vec<LinkDown>,
}

impl FaultPlan {
    /// No faults, no injector, no RNG draws: the default. Timing-identical
    /// to a machine without the fault subsystem.
    pub fn none() -> Self {
        FaultPlan {
            armed: false,
            ..Self::zeroed(0)
        }
    }

    /// An *armed* plan whose every rate is zero. The injector is built
    /// and consulted on each hook, but never injects — this pins that the
    /// hooks themselves do not perturb timing.
    pub fn zeroed(seed: u64) -> Self {
        FaultPlan {
            armed: true,
            seed,
            hop_spike_p: 0.0,
            hop_spike_cycles: 0,
            link_stall_p: 0.0,
            link_stall_cycles: 0,
            ni_freeze_p: 0.0,
            ni_freeze_cycles: 0,
            pp_burst_p: 0.0,
            pp_burst_cycles: 0,
            dram_refresh_period: 0,
            dram_refresh_cycles: 0,
            link_down: Vec::new(),
        }
    }

    /// A light perturbation mix for routine fault-soak runs: occasional
    /// hop spikes, rare short link stalls and NI freezes, sporadic PP
    /// bursts, and realistic refresh stalls.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            hop_spike_p: 0.02,
            hop_spike_cycles: 25,
            link_stall_p: 0.005,
            link_stall_cycles: 200,
            ni_freeze_p: 0.002,
            ni_freeze_cycles: 150,
            pp_burst_p: 0.01,
            pp_burst_cycles: 40,
            dram_refresh_period: 50_000,
            dram_refresh_cycles: 120,
            ..Self::zeroed(seed)
        }
    }

    /// An adversarial mix: frequent spikes, long stalls and freezes,
    /// heavy PP bursts, aggressive refresh. Convergence gets slow but
    /// must still happen, checker green.
    pub fn stress(seed: u64) -> Self {
        FaultPlan {
            hop_spike_p: 0.08,
            hop_spike_cycles: 60,
            link_stall_p: 0.02,
            link_stall_cycles: 500,
            ni_freeze_p: 0.01,
            ni_freeze_cycles: 400,
            pp_burst_p: 0.04,
            pp_burst_cycles: 120,
            dram_refresh_period: 20_000,
            dram_refresh_cycles: 250,
            ..Self::zeroed(seed)
        }
    }

    /// Whether this plan is fully disarmed (the machine skips the fault
    /// subsystem entirely).
    pub fn is_none(&self) -> bool {
        !self.armed
    }

    /// Adds a scripted outage of the directed link `src -> dst` covering
    /// `[from, until)`; `until = None` is permanent.
    pub fn with_link_down(mut self, src: u16, dst: u16, from: u64, until: Option<u64>) -> Self {
        self.armed = true;
        self.link_down.push(LinkDown {
            src,
            dst,
            from,
            until,
        });
        self
    }

    /// Decomposes the plan into its injectable ingredients: one atom per
    /// probabilistic fault class with a nonzero rate, plus one atom per
    /// scripted link outage, in a fixed order (classes first, outages in
    /// script order). An armed-but-all-zero plan has no atoms.
    pub fn atoms(&self) -> Vec<FaultAtom> {
        let mut out = Vec::new();
        if self.hop_spike_p > 0.0 {
            out.push(FaultAtom::HopSpikes {
                p: self.hop_spike_p,
                cycles: self.hop_spike_cycles,
            });
        }
        if self.link_stall_p > 0.0 {
            out.push(FaultAtom::LinkStalls {
                p: self.link_stall_p,
                cycles: self.link_stall_cycles,
            });
        }
        if self.ni_freeze_p > 0.0 {
            out.push(FaultAtom::NiFreezes {
                p: self.ni_freeze_p,
                cycles: self.ni_freeze_cycles,
            });
        }
        if self.pp_burst_p > 0.0 {
            out.push(FaultAtom::PpBursts {
                p: self.pp_burst_p,
                cycles: self.pp_burst_cycles,
            });
        }
        if self.dram_refresh_period > 0 {
            out.push(FaultAtom::DramRefresh {
                period: self.dram_refresh_period,
                cycles: self.dram_refresh_cycles,
            });
        }
        out.extend(self.link_down.iter().copied().map(FaultAtom::LinkDown));
        out
    }

    /// Rebuilds a plan from a surviving atom subset. The seed is carried
    /// separately (it is the RNG replay token, not an injectable fault).
    /// An empty atom list yields a fully disarmed plan, so shrinking away
    /// every fault also shrinks away the injector.
    pub fn from_atoms(seed: u64, atoms: &[FaultAtom]) -> Self {
        let mut p = FaultPlan {
            armed: !atoms.is_empty(),
            ..Self::zeroed(seed)
        };
        for a in atoms {
            match *a {
                FaultAtom::HopSpikes { p: prob, cycles } => {
                    p.hop_spike_p = prob;
                    p.hop_spike_cycles = cycles;
                }
                FaultAtom::LinkStalls { p: prob, cycles } => {
                    p.link_stall_p = prob;
                    p.link_stall_cycles = cycles;
                }
                FaultAtom::NiFreezes { p: prob, cycles } => {
                    p.ni_freeze_p = prob;
                    p.ni_freeze_cycles = cycles;
                }
                FaultAtom::PpBursts { p: prob, cycles } => {
                    p.pp_burst_p = prob;
                    p.pp_burst_cycles = cycles;
                }
                FaultAtom::DramRefresh { period, cycles } => {
                    p.dram_refresh_period = period;
                    p.dram_refresh_cycles = cycles;
                }
                FaultAtom::LinkDown(l) => p.link_down.push(l),
            }
        }
        p
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disarmed_and_presets_are_armed() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        for p in [
            FaultPlan::zeroed(1),
            FaultPlan::light(1),
            FaultPlan::stress(1),
        ] {
            assert!(!p.is_none());
        }
    }

    #[test]
    fn link_down_window_semantics() {
        let permanent = LinkDown {
            src: 1,
            dst: 2,
            from: 100,
            until: None,
        };
        assert!(!permanent.covers(99));
        assert!(permanent.covers(100));
        assert!(permanent.covers(u64::MAX));
        let windowed = LinkDown {
            until: Some(200),
            ..permanent
        };
        assert!(windowed.covers(199));
        assert!(!windowed.covers(200));
    }

    #[test]
    fn with_link_down_arms_the_plan() {
        let p = FaultPlan::none().with_link_down(0, 1, 0, None);
        assert!(!p.is_none());
        assert_eq!(p.link_down.len(), 1);
    }

    #[test]
    fn atoms_round_trip_for_every_preset() {
        for plan in [
            FaultPlan::light(7),
            FaultPlan::stress(11),
            FaultPlan::zeroed(3).with_link_down(1, 2, 1_000, None),
            FaultPlan::light(5)
                .with_link_down(0, 3, 500, Some(9_000))
                .with_link_down(2, 1, 100, None),
        ] {
            assert_eq!(
                FaultPlan::from_atoms(plan.seed, &plan.atoms()),
                plan,
                "{plan:?}"
            );
        }
    }

    #[test]
    fn zeroed_plan_has_no_atoms_and_empty_atoms_disarm() {
        assert!(FaultPlan::zeroed(9).atoms().is_empty());
        assert!(FaultPlan::none().atoms().is_empty());
        let rebuilt = FaultPlan::from_atoms(9, &[]);
        assert!(rebuilt.is_none());
        assert_eq!(rebuilt.seed, 9, "seed survives for the replay token");
    }

    #[test]
    fn atoms_json_round_trip() {
        let plan = FaultPlan::stress(13).with_link_down(4, 5, 120_000, Some(180_000));
        for atom in plan.atoms() {
            let back = FaultAtom::from_json(&atom.to_json()).unwrap();
            assert_eq!(back, atom);
            // And through actual text, the way the artifact carries it.
            let text = atom.to_json().render();
            let parsed = flash_engine::json::Json::parse(&text).unwrap();
            assert_eq!(FaultAtom::from_json(&parsed).unwrap(), atom);
        }
    }

    #[test]
    fn atom_json_rejects_malformed_input() {
        for bad in [
            "{}",
            r#"{"kind":"warp_core_breach"}"#,
            r#"{"kind":"hop_spikes","p":0.1}"#,
            r#"{"kind":"link_down","src":1,"dst":2}"#,
        ] {
            let v = flash_engine::json::Json::parse(bad).unwrap();
            assert!(FaultAtom::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn debug_rendering_distinguishes_plans() {
        // The plan keys the run-matrix memo cache through `Debug`.
        let a = format!("{:?}", FaultPlan::none());
        let b = format!("{:?}", FaultPlan::light(1));
        let c = format!("{:?}", FaultPlan::light(2));
        assert_ne!(a, b);
        assert_ne!(b, c);
    }
}
