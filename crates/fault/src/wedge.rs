//! Structured forward-progress diagnostics.
//!
//! When the machine's watchdog sees no retirements, message deliveries,
//! or handler invocations for a whole window, it assembles a
//! [`WedgeReport`] instead of panicking `"stuck"`: who is waiting on
//! what, which directory lines are PENDING, which links are held, and the
//! last messages that touched the suspect lines (the `FLASH_TRACE_ADDR`
//! plumbing, captured in a ring instead of stderr).
//!
//! The report is plain data — no references into the machine — so it can
//! ride a [`RunResult`](../../flash/machine/enum.RunResult.html) variant,
//! cross threads, and be rendered late.

use crate::inject::FaultStats;
use std::collections::VecDeque;
use std::fmt;

/// One message observation in the trace ring (mirrors what
/// `FLASH_TRACE_ADDR=0x...` prints to stderr, kept for every line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle of the observation.
    pub at: u64,
    /// Node whose MAGIC processed the message.
    pub node: u16,
    /// Message type name.
    pub kind: &'static str,
    /// Source node of the message.
    pub src: u16,
    /// 128-byte line address.
    pub line: u64,
    /// Auxiliary field (requester/type packing).
    pub aux: u64,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] node{} {} src={} line={:#x} aux={:#x}",
            self.at, self.node, self.kind, self.src, self.line, self.aux
        )
    }
}

/// A fixed-capacity ring of the most recent message observations.
///
/// # Examples
///
/// ```
/// use flash_fault::{MsgRing, TraceEntry};
///
/// let mut ring = MsgRing::new(2);
/// for at in 0..5 {
///     ring.push(TraceEntry { at, node: 0, kind: "NGet", src: 1, line: 0x80, aux: 0 });
/// }
/// assert_eq!(ring.entries().len(), 2);
/// assert_eq!(ring.entries()[0].at, 3, "oldest surviving entry");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MsgRing {
    cap: usize,
    buf: VecDeque<TraceEntry>,
}

impl MsgRing {
    /// A ring keeping the last `cap` observations.
    pub fn new(cap: usize) -> Self {
        MsgRing {
            cap,
            buf: VecDeque::with_capacity(cap),
        }
    }

    /// Records one observation, evicting the oldest when full.
    pub fn push(&mut self, e: TraceEntry) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(e);
    }

    /// All surviving observations, oldest first.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.buf.iter().copied().collect()
    }

    /// Surviving observations touching `line`, oldest first.
    pub fn for_line(&self, line: u64) -> Vec<TraceEntry> {
        self.buf
            .iter()
            .filter(|e| e.line == line)
            .copied()
            .collect()
    }

    /// Distinct lines observed, most recent last.
    pub fn lines(&self) -> Vec<u64> {
        let mut v: Vec<u64> = Vec::new();
        for e in &self.buf {
            if !v.contains(&e.line) {
                v.push(e.line);
            }
        }
        v
    }
}

/// One outstanding miss, snapshotted from an MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrSnap {
    /// Line address of the miss.
    pub line: u64,
    /// Transaction kind ("Read" / "Write" / "Upgrade").
    pub kind: &'static str,
    /// Cycle the miss was issued.
    pub issued_at: u64,
}

/// One node's state at wedge time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeWedge {
    /// Node id.
    pub node: u16,
    /// Processor scheduling state ("scheduled" / "wait-reply" /
    /// "wait-sync" / "done").
    pub state: &'static str,
    /// Outstanding misses.
    pub mshrs: Vec<MshrSnap>,
    /// Queued inbox (`MagicIn`) events bound for this node.
    pub inbox_queued: usize,
    /// Queued processor-bus (`ProcDeliver`) events bound for this node.
    pub proc_queued: usize,
    /// Messages from this node held by the network fault layer.
    pub net_held: usize,
}

/// A directory line stuck PENDING at wedge time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingLine {
    /// 128-byte line address.
    pub line: u64,
    /// Home node of the line.
    pub home: u16,
    /// Raw directory header word.
    pub header: u64,
}

/// A directed link held by a scripted outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalledLink {
    /// Source node.
    pub src: u16,
    /// Destination node.
    pub dst: u16,
    /// Messages held (re-offer events) so far.
    pub holds: u64,
    /// Whether the outage never ends.
    pub permanent: bool,
}

/// Why and how a run wedged: the structured replacement for
/// `panic!("stuck")`.
#[derive(Debug, Clone, PartialEq)]
pub struct WedgeReport {
    /// Cycle the watchdog fired.
    pub at: u64,
    /// Watchdog window in cycles.
    pub window: u64,
    /// Last cycle any retirement, delivery, or handler invocation
    /// advanced.
    pub last_progress_at: u64,
    /// Human-oriented one-line reason.
    pub reason: String,
    /// Processors that finished their streams.
    pub done: usize,
    /// Total processors.
    pub total: usize,
    /// Per-node state.
    pub nodes: Vec<NodeWedge>,
    /// Directory lines stuck PENDING.
    pub pending_lines: Vec<PendingLine>,
    /// Links held by scripted outages.
    pub stalled_links: Vec<StalledLink>,
    /// Fault statistics, when an injector was armed.
    pub fault_stats: Option<FaultStats>,
    /// Recent messages touching the suspect lines (or the overall tail
    /// when no line stands out).
    pub recent: Vec<TraceEntry>,
}

impl fmt::Display for WedgeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "WEDGE at cycle {}: {} (no progress for > {} cycles; last progress at {})",
            self.at, self.reason, self.window, self.last_progress_at
        )?;
        writeln!(f, "  processors: {}/{} finished", self.done, self.total)?;
        for n in &self.nodes {
            // Quiet nodes (done, nothing queued, nothing outstanding)
            // would drown the signal on big meshes.
            if n.state == "done"
                && n.mshrs.is_empty()
                && n.inbox_queued == 0
                && n.proc_queued == 0
                && n.net_held == 0
            {
                continue;
            }
            writeln!(
                f,
                "  node{}: {} | inbox={} procq={} held={}",
                n.node, n.state, n.inbox_queued, n.proc_queued, n.net_held
            )?;
            for m in &n.mshrs {
                writeln!(
                    f,
                    "    mshr: {} line={:#x} issued at {}",
                    m.kind, m.line, m.issued_at
                )?;
            }
        }
        if !self.pending_lines.is_empty() {
            writeln!(f, "  PENDING directory lines:")?;
            for p in &self.pending_lines {
                writeln!(
                    f,
                    "    line={:#x} home=node{} header={:#x}",
                    p.line, p.home, p.header
                )?;
            }
        }
        if !self.stalled_links.is_empty() {
            writeln!(f, "  stalled links:")?;
            for l in &self.stalled_links {
                writeln!(
                    f,
                    "    {}->{} held {} message offer(s){}",
                    l.src,
                    l.dst,
                    l.holds,
                    if l.permanent { " [permanent]" } else { "" }
                )?;
            }
        }
        if let Some(s) = &self.fault_stats {
            writeln!(
                f,
                "  faults injected: {} hop spikes, {} link stalls, {} link holds, {} NI freezes, {} PP bursts, {} DRAM stalls ({} delay cycles)",
                s.hop_spikes,
                s.link_stalls,
                s.link_holds,
                s.ni_freezes,
                s.pp_bursts,
                s.dram_stalls,
                s.delay_cycles
            )?;
        }
        if !self.recent.is_empty() {
            writeln!(f, "  recent messages on suspect lines:")?;
            for e in &self.recent {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, line: u64) -> TraceEntry {
        TraceEntry {
            at,
            node: 1,
            kind: "NGet",
            src: 0,
            line,
            aux: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_filters_by_line() {
        let mut r = MsgRing::new(3);
        for at in 0..5 {
            r.push(entry(at, 0x80 * (at % 2)));
        }
        let e = r.entries();
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].at, 2);
        assert_eq!(
            r.for_line(0x80).iter().map(|e| e.at).collect::<Vec<_>>(),
            [3]
        );
        assert_eq!(r.lines(), vec![0, 0x80]);
    }

    #[test]
    fn zero_capacity_ring_is_inert() {
        let mut r = MsgRing::new(0);
        r.push(entry(1, 0));
        assert!(r.entries().is_empty());
    }

    #[test]
    fn report_renders_every_section() {
        let report = WedgeReport {
            at: 150_000,
            window: 100_000,
            last_progress_at: 49_000,
            reason: "no forward progress within the watchdog window".into(),
            done: 2,
            total: 3,
            nodes: vec![
                NodeWedge {
                    node: 0,
                    state: "wait-reply",
                    mshrs: vec![MshrSnap {
                        line: 0x1_0000_8000,
                        kind: "Read",
                        issued_at: 20_000,
                    }],
                    inbox_queued: 0,
                    proc_queued: 0,
                    net_held: 0,
                },
                NodeWedge {
                    node: 2,
                    state: "done",
                    mshrs: vec![],
                    inbox_queued: 0,
                    proc_queued: 0,
                    net_held: 0,
                },
            ],
            pending_lines: vec![PendingLine {
                line: 0x1_0000_8000,
                home: 1,
                header: 0x8000_0001,
            }],
            stalled_links: vec![StalledLink {
                src: 1,
                dst: 2,
                holds: 97,
                permanent: true,
            }],
            fault_stats: Some(FaultStats {
                link_holds: 97,
                ..FaultStats::default()
            }),
            recent: vec![entry(20_010, 0x1_0000_8000)],
        };
        let text = report.to_string();
        assert!(text.contains("WEDGE at cycle 150000"));
        assert!(text.contains("1->2 held 97"));
        assert!(text.contains("[permanent]"));
        assert!(text.contains("PENDING directory lines"));
        assert!(text.contains("line=0x100008000 home=node1"));
        assert!(text.contains("mshr: Read line=0x100008000"));
        assert!(text.contains("97 link holds"));
        assert!(!text.contains("node2"), "quiet done nodes are elided");
    }
}
