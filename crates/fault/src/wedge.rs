//! Structured forward-progress diagnostics.
//!
//! When the machine's watchdog sees no retirements, message deliveries,
//! or handler invocations for a whole window, it assembles a
//! [`WedgeReport`] instead of panicking `"stuck"`: who is waiting on
//! what, which directory lines are PENDING, which links are held, and the
//! last messages that touched the suspect lines (the `FLASH_TRACE_ADDR`
//! plumbing, captured in a ring instead of stderr).
//!
//! The report is plain data — no references into the machine — so it can
//! ride a [`RunResult`](../../flash/machine/enum.RunResult.html) variant,
//! cross threads, and be rendered late.

use crate::inject::FaultStats;
use flash_engine::json::Json;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;

/// One message observation in the trace ring (mirrors what
/// `FLASH_TRACE_ADDR=0x...` prints to stderr, kept for every line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle of the observation.
    pub at: u64,
    /// Node whose MAGIC processed the message.
    pub node: u16,
    /// Message type name.
    pub kind: &'static str,
    /// Source node of the message.
    pub src: u16,
    /// 128-byte line address.
    pub line: u64,
    /// Auxiliary field (requester/type packing).
    pub aux: u64,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] node{} {} src={} line={:#x} aux={:#x}",
            self.at, self.node, self.kind, self.src, self.line, self.aux
        )
    }
}

/// A fixed-capacity ring of the most recent message observations.
///
/// # Examples
///
/// ```
/// use flash_fault::{MsgRing, TraceEntry};
///
/// let mut ring = MsgRing::new(2);
/// for at in 0..5 {
///     ring.push(TraceEntry { at, node: 0, kind: "NGet", src: 1, line: 0x80, aux: 0 });
/// }
/// assert_eq!(ring.entries().len(), 2);
/// assert_eq!(ring.entries()[0].at, 3, "oldest surviving entry");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MsgRing {
    cap: usize,
    buf: VecDeque<TraceEntry>,
}

impl MsgRing {
    /// A ring keeping the last `cap` observations.
    pub fn new(cap: usize) -> Self {
        MsgRing {
            cap,
            buf: VecDeque::with_capacity(cap),
        }
    }

    /// Records one observation, evicting the oldest when full.
    pub fn push(&mut self, e: TraceEntry) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(e);
    }

    /// All surviving observations, oldest first.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.buf.iter().copied().collect()
    }

    /// Surviving observations touching `line`, oldest first.
    pub fn for_line(&self, line: u64) -> Vec<TraceEntry> {
        self.buf
            .iter()
            .filter(|e| e.line == line)
            .copied()
            .collect()
    }

    /// Distinct lines observed, most recent last.
    pub fn lines(&self) -> Vec<u64> {
        let mut v: Vec<u64> = Vec::new();
        for e in &self.buf {
            if !v.contains(&e.line) {
                v.push(e.line);
            }
        }
        v
    }
}

/// One outstanding miss, snapshotted from an MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrSnap {
    /// Line address of the miss.
    pub line: u64,
    /// Transaction kind ("Read" / "Write" / "Upgrade").
    pub kind: &'static str,
    /// Cycle the miss was issued.
    pub issued_at: u64,
}

/// One node's state at wedge time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeWedge {
    /// Node id.
    pub node: u16,
    /// Processor scheduling state ("scheduled" / "wait-reply" /
    /// "wait-sync" / "done").
    pub state: &'static str,
    /// Outstanding misses.
    pub mshrs: Vec<MshrSnap>,
    /// Queued inbox (`MagicIn`) events bound for this node.
    pub inbox_queued: usize,
    /// Queued processor-bus (`ProcDeliver`) events bound for this node.
    pub proc_queued: usize,
    /// Messages from this node held by the network fault layer.
    pub net_held: usize,
    /// Open-loop references that arrived but were never admitted to the
    /// processor's mailbox (0 for closed-loop nodes). Distinguishes
    /// *overload* — big backlog, nothing PENDING, the machine simply
    /// cannot keep up — from a *protocol wedge* that starves admission.
    /// Excluded from [`WedgeReport::fingerprint`]: shrinking legitimately
    /// changes queue depths.
    pub arrivals_backlog: usize,
}

/// A directory line stuck PENDING at wedge time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingLine {
    /// 128-byte line address.
    pub line: u64,
    /// Home node of the line.
    pub home: u16,
    /// Raw directory header word.
    pub header: u64,
}

/// A directed link held by a scripted outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalledLink {
    /// Source node.
    pub src: u16,
    /// Destination node.
    pub dst: u16,
    /// Messages held (re-offer events) so far.
    pub holds: u64,
    /// Whether the outage never ends.
    pub permanent: bool,
}

/// Why and how a run wedged: the structured replacement for
/// `panic!("stuck")`.
#[derive(Debug, Clone, PartialEq)]
pub struct WedgeReport {
    /// Cycle the watchdog fired.
    pub at: u64,
    /// Watchdog window in cycles.
    pub window: u64,
    /// Last cycle any retirement, delivery, or handler invocation
    /// advanced.
    pub last_progress_at: u64,
    /// Human-oriented one-line reason.
    pub reason: String,
    /// Processors that finished their streams.
    pub done: usize,
    /// Total processors.
    pub total: usize,
    /// Per-node state.
    pub nodes: Vec<NodeWedge>,
    /// Directory lines stuck PENDING.
    pub pending_lines: Vec<PendingLine>,
    /// Links held by scripted outages.
    pub stalled_links: Vec<StalledLink>,
    /// Fault statistics, when an injector was armed.
    pub fault_stats: Option<FaultStats>,
    /// Recent messages touching the suspect lines (or the overall tail
    /// when no line stands out).
    pub recent: Vec<TraceEntry>,
}

impl WedgeReport {
    /// A stable structural identifier for "the same wedge".
    ///
    /// Minimization predicates need to distinguish *this* deadlock from
    /// *any* deadlock while shrinking, but must not key on anything the
    /// shrink legitimately changes — cycle counts, hold counts, queue
    /// depths, trace contents all shift as references and faults are
    /// removed. The fingerprint therefore keeps only the causal shape:
    ///
    /// * every stalled link, sorted, with a `!` marking permanence;
    /// * every PENDING directory line with its home, sorted;
    /// * every waiting MSHR `(node, kind, line)` whose line is stuck
    ///   PENDING (all waiters when nothing is PENDING), sorted.
    ///
    /// # Examples
    ///
    /// ```
    /// use flash_fault::{MshrSnap, NodeWedge, PendingLine, StalledLink, WedgeReport};
    ///
    /// let report = WedgeReport {
    ///     at: 150_000, window: 100_000, last_progress_at: 49_000,
    ///     reason: "no forward progress".into(), done: 2, total: 3,
    ///     nodes: vec![NodeWedge {
    ///         node: 0, state: "wait-reply",
    ///         mshrs: vec![MshrSnap { line: 0x1_0000_4000, kind: "Read", issued_at: 20_000 }],
    ///         inbox_queued: 0, proc_queued: 0, net_held: 0, arrivals_backlog: 0,
    ///     }],
    ///     pending_lines: vec![PendingLine { line: 0x1_0000_4000, home: 1, header: 1 }],
    ///     stalled_links: vec![StalledLink { src: 1, dst: 2, holds: 97, permanent: true }],
    ///     fault_stats: None, recent: vec![],
    /// };
    /// assert_eq!(
    ///     report.fingerprint(),
    ///     "wedge|links=[1->2!]|pending=[0x100004000@n1]|waiters=[n0:Read:0x100004000]"
    /// );
    /// ```
    pub fn fingerprint(&self) -> String {
        let mut links: Vec<&StalledLink> = self.stalled_links.iter().collect();
        links.sort_by_key(|l| (l.src, l.dst));
        let mut pending: Vec<&PendingLine> = self.pending_lines.iter().collect();
        pending.sort_by_key(|p| (p.line, p.home));
        let mut waiters: Vec<(u16, &'static str, u64)> = Vec::new();
        for n in &self.nodes {
            for m in &n.mshrs {
                if self.pending_lines.is_empty()
                    || self.pending_lines.iter().any(|p| p.line == m.line)
                {
                    waiters.push((n.node, m.kind, m.line));
                }
            }
        }
        waiters.sort();
        waiters.dedup();

        let mut s = String::from("wedge|links=[");
        for (i, l) in links.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}->{}{}",
                l.src,
                l.dst,
                if l.permanent { "!" } else { "" }
            );
        }
        s.push_str("]|pending=[");
        for (i, p) in pending.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{:#x}@n{}", p.line, p.home);
        }
        s.push_str("]|waiters=[");
        for (i, (node, kind, line)) in waiters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "n{node}:{kind}:{line:#x}");
        }
        s.push(']');
        s
    }

    /// Serializes the full report (not just the fingerprint) for CI
    /// triage artifacts. The fingerprint is embedded so downstream
    /// tooling can match structurally without re-deriving it.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str("flash-wedge-v1")),
            ("fingerprint", Json::str(self.fingerprint())),
            ("at", Json::UInt(self.at)),
            ("window", Json::UInt(self.window)),
            ("last_progress_at", Json::UInt(self.last_progress_at)),
            ("reason", Json::str(self.reason.clone())),
            ("done", Json::UInt(self.done as u64)),
            ("total", Json::UInt(self.total as u64)),
            (
                "nodes",
                Json::Arr(
                    self.nodes
                        .iter()
                        .map(|n| {
                            Json::obj(vec![
                                ("node", Json::UInt(n.node as u64)),
                                ("state", Json::str(n.state)),
                                (
                                    "mshrs",
                                    Json::Arr(
                                        n.mshrs
                                            .iter()
                                            .map(|m| {
                                                Json::obj(vec![
                                                    ("line", Json::UInt(m.line)),
                                                    ("kind", Json::str(m.kind)),
                                                    ("issued_at", Json::UInt(m.issued_at)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                ("inbox_queued", Json::UInt(n.inbox_queued as u64)),
                                ("proc_queued", Json::UInt(n.proc_queued as u64)),
                                ("net_held", Json::UInt(n.net_held as u64)),
                                ("arrivals_backlog", Json::UInt(n.arrivals_backlog as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pending_lines",
                Json::Arr(
                    self.pending_lines
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("line", Json::UInt(p.line)),
                                ("home", Json::UInt(p.home as u64)),
                                ("header", Json::UInt(p.header)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "stalled_links",
                Json::Arr(
                    self.stalled_links
                        .iter()
                        .map(|l| {
                            Json::obj(vec![
                                ("src", Json::UInt(l.src as u64)),
                                ("dst", Json::UInt(l.dst as u64)),
                                ("holds", Json::UInt(l.holds)),
                                ("permanent", Json::Bool(l.permanent)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fault_stats",
                match &self.fault_stats {
                    Some(s) => Json::obj(vec![
                        ("hop_spikes", Json::UInt(s.hop_spikes)),
                        ("link_stalls", Json::UInt(s.link_stalls)),
                        ("link_holds", Json::UInt(s.link_holds)),
                        ("ni_freezes", Json::UInt(s.ni_freezes)),
                        ("pp_bursts", Json::UInt(s.pp_bursts)),
                        ("dram_stalls", Json::UInt(s.dram_stalls)),
                        ("delay_cycles", Json::UInt(s.delay_cycles)),
                    ]),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl fmt::Display for WedgeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "WEDGE at cycle {}: {} (no progress for > {} cycles; last progress at {})",
            self.at, self.reason, self.window, self.last_progress_at
        )?;
        writeln!(f, "  processors: {}/{} finished", self.done, self.total)?;
        for n in &self.nodes {
            // Quiet nodes (done, nothing queued, nothing outstanding)
            // would drown the signal on big meshes.
            if n.state == "done"
                && n.mshrs.is_empty()
                && n.inbox_queued == 0
                && n.proc_queued == 0
                && n.net_held == 0
                && n.arrivals_backlog == 0
            {
                continue;
            }
            write!(
                f,
                "  node{}: {} | inbox={} procq={} held={}",
                n.node, n.state, n.inbox_queued, n.proc_queued, n.net_held
            )?;
            if n.arrivals_backlog > 0 {
                write!(f, " backlog={}", n.arrivals_backlog)?;
            }
            writeln!(f)?;
            for m in &n.mshrs {
                writeln!(
                    f,
                    "    mshr: {} line={:#x} issued at {}",
                    m.kind, m.line, m.issued_at
                )?;
            }
        }
        if !self.pending_lines.is_empty() {
            writeln!(f, "  PENDING directory lines:")?;
            for p in &self.pending_lines {
                writeln!(
                    f,
                    "    line={:#x} home=node{} header={:#x}",
                    p.line, p.home, p.header
                )?;
            }
        }
        if !self.stalled_links.is_empty() {
            writeln!(f, "  stalled links:")?;
            for l in &self.stalled_links {
                writeln!(
                    f,
                    "    {}->{} held {} message offer(s){}",
                    l.src,
                    l.dst,
                    l.holds,
                    if l.permanent { " [permanent]" } else { "" }
                )?;
            }
        }
        if let Some(s) = &self.fault_stats {
            writeln!(
                f,
                "  faults injected: {} hop spikes, {} link stalls, {} link holds, {} NI freezes, {} PP bursts, {} DRAM stalls ({} delay cycles)",
                s.hop_spikes,
                s.link_stalls,
                s.link_holds,
                s.ni_freezes,
                s.pp_bursts,
                s.dram_stalls,
                s.delay_cycles
            )?;
        }
        if !self.recent.is_empty() {
            writeln!(f, "  recent messages on suspect lines:")?;
            for e in &self.recent {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, line: u64) -> TraceEntry {
        TraceEntry {
            at,
            node: 1,
            kind: "NGet",
            src: 0,
            line,
            aux: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_filters_by_line() {
        let mut r = MsgRing::new(3);
        for at in 0..5 {
            r.push(entry(at, 0x80 * (at % 2)));
        }
        let e = r.entries();
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].at, 2);
        assert_eq!(
            r.for_line(0x80).iter().map(|e| e.at).collect::<Vec<_>>(),
            [3]
        );
        assert_eq!(r.lines(), vec![0, 0x80]);
    }

    #[test]
    fn zero_capacity_ring_is_inert() {
        let mut r = MsgRing::new(0);
        r.push(entry(1, 0));
        assert!(r.entries().is_empty());
    }

    #[test]
    fn report_renders_every_section() {
        let report = WedgeReport {
            at: 150_000,
            window: 100_000,
            last_progress_at: 49_000,
            reason: "no forward progress within the watchdog window".into(),
            done: 2,
            total: 3,
            nodes: vec![
                NodeWedge {
                    node: 0,
                    state: "wait-reply",
                    mshrs: vec![MshrSnap {
                        line: 0x1_0000_8000,
                        kind: "Read",
                        issued_at: 20_000,
                    }],
                    inbox_queued: 0,
                    proc_queued: 0,
                    net_held: 0,
                    arrivals_backlog: 0,
                },
                NodeWedge {
                    node: 2,
                    state: "done",
                    mshrs: vec![],
                    inbox_queued: 0,
                    proc_queued: 0,
                    net_held: 0,
                    arrivals_backlog: 0,
                },
            ],
            pending_lines: vec![PendingLine {
                line: 0x1_0000_8000,
                home: 1,
                header: 0x8000_0001,
            }],
            stalled_links: vec![StalledLink {
                src: 1,
                dst: 2,
                holds: 97,
                permanent: true,
            }],
            fault_stats: Some(FaultStats {
                link_holds: 97,
                ..FaultStats::default()
            }),
            recent: vec![entry(20_010, 0x1_0000_8000)],
        };
        let text = report.to_string();
        assert!(text.contains("WEDGE at cycle 150000"));
        assert!(text.contains("1->2 held 97"));
        assert!(text.contains("[permanent]"));
        assert!(text.contains("PENDING directory lines"));
        assert!(text.contains("line=0x100008000 home=node1"));
        assert!(text.contains("mshr: Read line=0x100008000"));
        assert!(text.contains("97 link holds"));
        assert!(!text.contains("node2"), "quiet done nodes are elided");
    }

    fn sample_report() -> WedgeReport {
        WedgeReport {
            at: 150_000,
            window: 100_000,
            last_progress_at: 49_000,
            reason: "no forward progress within the watchdog window".into(),
            done: 2,
            total: 3,
            nodes: vec![
                NodeWedge {
                    node: 2,
                    state: "wait-sync",
                    mshrs: vec![MshrSnap {
                        line: 0x2_0000_0080,
                        kind: "Write",
                        issued_at: 30_000,
                    }],
                    inbox_queued: 1,
                    proc_queued: 0,
                    net_held: 3,
                    arrivals_backlog: 0,
                },
                NodeWedge {
                    node: 0,
                    state: "wait-reply",
                    mshrs: vec![MshrSnap {
                        line: 0x1_0000_8000,
                        kind: "Read",
                        issued_at: 20_000,
                    }],
                    inbox_queued: 0,
                    proc_queued: 0,
                    net_held: 0,
                    arrivals_backlog: 0,
                },
            ],
            pending_lines: vec![PendingLine {
                line: 0x1_0000_8000,
                home: 1,
                header: 0x8000_0001,
            }],
            stalled_links: vec![StalledLink {
                src: 1,
                dst: 2,
                holds: 97,
                permanent: true,
            }],
            fault_stats: Some(FaultStats {
                link_holds: 97,
                ..FaultStats::default()
            }),
            recent: vec![entry(20_010, 0x1_0000_8000)],
        }
    }

    #[test]
    fn fingerprint_keeps_shape_and_drops_timing() {
        let report = sample_report();
        assert_eq!(
            report.fingerprint(),
            "wedge|links=[1->2!]|pending=[0x100008000@n1]|waiters=[n0:Read:0x100008000]",
            "waiter on the non-pending line 0x200000080 is excluded"
        );
        // Everything the shrink is allowed to change leaves it untouched.
        let mut shifted = report.clone();
        shifted.at = 999_999;
        shifted.last_progress_at = 1;
        shifted.window = 5_000;
        shifted.stalled_links[0].holds = 3;
        shifted.nodes[1].mshrs[0].issued_at = 50;
        shifted.nodes[1].inbox_queued = 7;
        shifted.recent.clear();
        shifted.fault_stats = None;
        assert_eq!(shifted.fingerprint(), report.fingerprint());
        // But a different held link is a different wedge.
        let mut other = report.clone();
        other.stalled_links[0].dst = 0;
        assert_ne!(other.fingerprint(), report.fingerprint());
    }

    #[test]
    fn fingerprint_without_pending_lines_keeps_all_waiters() {
        let mut report = sample_report();
        report.pending_lines.clear();
        let fp = report.fingerprint();
        assert!(fp.contains("n0:Read:0x100008000"));
        assert!(fp.contains("n2:Write:0x200000080"));
    }

    #[test]
    fn json_form_embeds_fingerprint_and_structure() {
        let report = sample_report();
        let v = report.to_json();
        let round = Json::parse(&v.render()).unwrap();
        assert_eq!(
            round.get("schema").and_then(Json::as_str),
            Some("flash-wedge-v1")
        );
        assert_eq!(
            round.get("fingerprint").and_then(Json::as_str),
            Some(report.fingerprint().as_str())
        );
        assert_eq!(round.get("at").and_then(Json::as_u64), Some(150_000));
        let links = round.get("stalled_links").and_then(Json::as_arr).unwrap();
        assert_eq!(
            links[0].get("permanent").and_then(Json::as_bool),
            Some(true)
        );
        let stats = round.get("fault_stats").unwrap();
        assert_eq!(stats.get("link_holds").and_then(Json::as_u64), Some(97));
    }
}
