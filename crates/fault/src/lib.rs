//! # flash-fault — deterministic timing-fault injection and wedge diagnostics
//!
//! The paper's central claim — that the flexible protocol processor stays
//! within ~10% of the idealized hardwired controller — rests on the
//! protocol surviving every interleaving FlashLite can produce. The
//! `flash-check` correctness net (PR 2) verifies invariants, but only on
//! the timings the simulator naturally emits. This crate perturbs those
//! timings *without touching protocol semantics*, the way BedRock
//! validates its coherence engines under stress:
//!
//! * [`FaultPlan`] — a declarative, seeded description of which timing
//!   faults to inject: per-message hop-delay spikes, transient mesh-link
//!   stalls, scripted link outages, NI input/output queue freezes, PP
//!   handler slowdown bursts, and DRAM refresh-style stalls.
//! * [`FaultInjector`] — the runtime: every probabilistic decision comes
//!   from per-fault-class [`flash_engine::DetRng`] streams derived from
//!   the plan seed, so a failing run replays **byte-identically** from
//!   `(plan, workload)` alone.
//! * [`WedgeReport`] — the structured forward-progress diagnostic the
//!   machine's watchdog emits instead of panicking `"stuck"`: per-node
//!   MSHR and queue state, PENDING directory lines, stalled links, fault
//!   statistics, and the last messages touching the suspect lines.
//!
//! Faults are **timing-only**: a held message is re-offered later, never
//! dropped; a frozen queue delays delivery, never reorders protocol
//! decisions made by handlers. Composed with checked mode, every injected
//! schedule must still converge with the coherence net green.

pub mod inject;
pub mod plan;
pub mod wedge;

pub use inject::{FaultInjector, FaultStats, LinkVerdict, NiDir};
pub use plan::{FaultAtom, FaultPlan, LinkDown};
pub use wedge::{MsgRing, MshrSnap, NodeWedge, PendingLine, StalledLink, TraceEntry, WedgeReport};
