//! The fault injector: deterministic runtime for a [`FaultPlan`].
//!
//! Each **(fault class, entity)** pair draws from its own [`DetRng`]
//! stream derived from the plan seed — one stream per directed link, per
//! NI queue direction, per protocol processor. The decision sequence for
//! an entity therefore depends only on that entity's own call sequence,
//! never on how other entities or classes interleave. That is what makes
//! fault schedules *shard-invariant*: every entity is driven from exactly
//! one shard (a link from its source node's shard, an NI direction from
//! the node that processes it, a PP from its node), and each shard
//! replays its entities' calls in the same deterministic order no matter
//! how many shards the mesh is split into. Every guard is `p > 0.0 &&
//! chance(p)`, so a zeroed plan makes no draws at all and an armed-but-
//! zero injector is byte-identical to no injector.

use crate::plan::FaultPlan;
use flash_engine::{Cycle, DetRng, FastMap};
use std::collections::BTreeMap;

/// Per-class RNG stream classes (stable across versions: changing these —
/// or the entity encoding below — invalidates replay tokens). The actual
/// stream index is `class << 32 | entity`, where the entity is
/// `src << 16 | dst` for links and hops, `node << 1 | direction` for NI
/// queues, and `node` for PPs.
const STREAM_LINK: u64 = 1;
const STREAM_NI: u64 = 2;
const STREAM_PP: u64 = 3;
const STREAM_HOP: u64 = 4;

/// How long a message held by a scripted link outage waits before it is
/// re-offered to the network. Small enough that finite outages release
/// promptly; large enough that a permanent outage's re-offer loop is
/// cheap. The loop keeps the event queue alive, which is exactly what
/// turns a permanent outage into a *detectable* livelock for the
/// forward-progress watchdog (instead of a silently drained queue).
pub const HOLD_RECHECK_CYCLES: u64 = 512;

/// What the injector decided about one message offered to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Send normally.
    Clear,
    /// Send with this many extra transit cycles.
    Delay(u64),
    /// Do not send now; re-offer the message at `resume` (the verdict is
    /// re-evaluated then). Used for scripted outages.
    Hold {
        /// When to re-offer the message.
        resume: Cycle,
    },
}

/// Which side of a node's network interface a freeze applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NiDir {
    /// Inbound: messages arriving at the node wait before dispatch.
    In,
    /// Outbound: messages leaving the node wait before entering the mesh.
    Out,
}

/// Counts of injected faults and the delay they added (diagnostics and
/// replay verification; never consulted for timing decisions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Per-hop delay spikes injected.
    pub hop_spikes: u64,
    /// Transient link-stall windows opened.
    pub link_stalls: u64,
    /// Messages held by scripted link outages (re-offer events).
    pub link_holds: u64,
    /// NI queue freezes injected (both directions).
    pub ni_freezes: u64,
    /// PP slowdown bursts injected.
    pub pp_bursts: u64,
    /// DRAM refresh stalls applied to a memory controller.
    pub dram_stalls: u64,
    /// Total extra cycles of delay attached to messages (spikes plus
    /// transient-stall waits; holds are unbounded and counted separately).
    pub delay_cycles: u64,
}

impl FaultStats {
    /// Folds another injector's counts into this one (shard teardown:
    /// per-shard injectors accumulate independently and merge for
    /// reporting).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.hop_spikes += other.hop_spikes;
        self.link_stalls += other.link_stalls;
        self.link_holds += other.link_holds;
        self.ni_freezes += other.ni_freezes;
        self.pp_bursts += other.pp_bursts;
        self.dram_stalls += other.dram_stalls;
        self.delay_cycles += other.delay_cycles;
    }
}

/// The runtime for one machine's [`FaultPlan`]. Under sharded simulation
/// each shard runs its own injector over the same plan; because RNG
/// streams are per-entity and every entity belongs to one shard, the
/// union of the shards' schedules equals the serial schedule, and
/// [`FaultStats::absorb`] folds the per-shard counts back together.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Lazily created per-(class, entity) RNG streams.
    rngs: FastMap<(u64, u64), DetRng>,
    /// End of the current transient stall per directed link.
    link_stalled_until: FastMap<(u16, u16), u64>,
    /// End of the current freeze per (node, direction).
    ni_frozen_until: FastMap<(u16, NiDir), u64>,
    /// Hold count per scripted-outage link (wedge diagnostics). Stays
    /// a `BTreeMap`: [`Self::held_links`] iterates it and its order is
    /// observable in wedge reports.
    held: BTreeMap<(u16, u16), u64>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds the injector for `plan`, or `None` when the plan is
    /// disarmed (so a disarmed machine carries no fault state at all).
    pub fn new(plan: &FaultPlan) -> Option<Self> {
        if plan.is_none() {
            return None;
        }
        Some(FaultInjector {
            plan: plan.clone(),
            rngs: FastMap::default(),
            link_stalled_until: FastMap::default(),
            ni_frozen_until: FastMap::default(),
            held: BTreeMap::new(),
            stats: FaultStats::default(),
        })
    }

    /// The RNG stream for one (class, entity) pair, created on first use.
    fn rng(&mut self, class: u64, entity: u64) -> &mut DetRng {
        let seed = self.plan.seed;
        self.rngs
            .entry((class, entity))
            .or_insert_with(|| DetRng::for_stream(seed, (class << 32) | entity))
    }

    /// Decides the fate of a message offered to the network at `at` on
    /// the directed link `src -> dst`. Scripted outages dominate; then
    /// transient link stalls; then per-hop spikes. Delays compose.
    pub fn link_verdict(&mut self, at: Cycle, src: u16, dst: u16) -> LinkVerdict {
        let t = at.raw();
        for down in &self.plan.link_down {
            if down.src == src && down.dst == dst && down.covers(t) {
                // Finite outage: wake exactly at its end. Permanent
                // outage: re-offer in bounded increments so the event
                // queue stays alive for the watchdog to observe.
                let resume = match down.until {
                    Some(u) => u.min(t + HOLD_RECHECK_CYCLES),
                    None => t + HOLD_RECHECK_CYCLES,
                };
                self.stats.link_holds += 1;
                *self.held.entry((src, dst)).or_insert(0) += 1;
                return LinkVerdict::Hold {
                    resume: Cycle::new(resume),
                };
            }
        }
        let mut delay = 0u64;
        // An open transient stall on this link delays the message to the
        // stall's end.
        if let Some(&until) = self.link_stalled_until.get(&(src, dst)) {
            if t < until {
                delay += until - t;
            }
        }
        let link_entity = (src as u64) << 16 | dst as u64;
        let p = self.plan.link_stall_p;
        if p > 0.0 && self.rng(STREAM_LINK, link_entity).chance(p) {
            let until = t + delay + self.plan.link_stall_cycles;
            self.link_stalled_until.insert((src, dst), until);
            self.stats.link_stalls += 1;
            delay += self.plan.link_stall_cycles;
        }
        let p = self.plan.hop_spike_p;
        if p > 0.0 && self.rng(STREAM_HOP, link_entity).chance(p) {
            self.stats.hop_spikes += 1;
            delay += self.plan.hop_spike_cycles;
        }
        if delay == 0 {
            LinkVerdict::Clear
        } else {
            self.stats.delay_cycles += delay;
            LinkVerdict::Delay(delay)
        }
    }

    /// NI queue freeze check for one message touching `node`'s interface
    /// in direction `dir` at `at`. Returns `Some(resume)` when the
    /// message must wait (either an open freeze window, or a freshly
    /// drawn one).
    pub fn ni_freeze(&mut self, at: Cycle, node: u16, dir: NiDir) -> Option<Cycle> {
        let t = at.raw();
        if let Some(&until) = self.ni_frozen_until.get(&(node, dir)) {
            if t < until {
                return Some(Cycle::new(until));
            }
        }
        let entity = (node as u64) << 1 | (dir == NiDir::Out) as u64;
        let p = self.plan.ni_freeze_p;
        if p > 0.0 && self.rng(STREAM_NI, entity).chance(p) {
            let until = t + self.plan.ni_freeze_cycles;
            self.ni_frozen_until.insert((node, dir), until);
            self.stats.ni_freezes += 1;
            return Some(Cycle::new(until));
        }
        None
    }

    /// PP slowdown burst for one handler invocation on `node`: extra
    /// cycles the protocol processor is held busy (0 almost always).
    pub fn pp_burst(&mut self, _at: Cycle, node: u16) -> u64 {
        let p = self.plan.pp_burst_p;
        if p > 0.0 && self.rng(STREAM_PP, node as u64).chance(p) {
            self.stats.pp_bursts += 1;
            self.plan.pp_burst_cycles
        } else {
            0
        }
    }

    /// DRAM refresh stall: when `at` falls inside a refresh window of the
    /// phase-locked global refresh clock, returns the cycle the memory
    /// controller unblocks. Purely deterministic (no RNG draws).
    pub fn dram_block(&mut self, at: Cycle) -> Option<Cycle> {
        let period = self.plan.dram_refresh_period;
        if period == 0 || self.plan.dram_refresh_cycles == 0 {
            return None;
        }
        let phase = at.raw() % period;
        if phase < self.plan.dram_refresh_cycles {
            self.stats.dram_stalls += 1;
            Some(Cycle::new(at.raw() - phase + self.plan.dram_refresh_cycles))
        } else {
            None
        }
    }

    /// Cumulative fault statistics.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Links currently (or ever) held by scripted outages, with hold
    /// counts and whether the outage is permanent — wedge diagnostics.
    pub fn held_links(&self) -> Vec<crate::wedge::StalledLink> {
        self.held
            .iter()
            .map(|(&(src, dst), &holds)| crate::wedge::StalledLink {
                src,
                dst,
                holds,
                permanent: self
                    .plan
                    .link_down
                    .iter()
                    .any(|d| d.src == src && d.dst == dst && d.until.is_none()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_builds_no_injector() {
        assert!(FaultInjector::new(&FaultPlan::none()).is_none());
        assert!(FaultInjector::new(&FaultPlan::zeroed(5)).is_some());
    }

    #[test]
    fn zeroed_plan_never_injects() {
        let mut inj = FaultInjector::new(&FaultPlan::zeroed(9)).unwrap();
        for t in 0..5_000u64 {
            assert_eq!(
                inj.link_verdict(Cycle::new(t), (t % 4) as u16, ((t + 1) % 4) as u16),
                LinkVerdict::Clear
            );
            assert_eq!(
                inj.ni_freeze(Cycle::new(t), (t % 4) as u16, NiDir::In),
                None
            );
            assert_eq!(inj.pp_burst(Cycle::new(t), 0), 0);
            assert_eq!(inj.dram_block(Cycle::new(t)), None);
        }
        assert_eq!(*inj.stats(), FaultStats::default());
    }

    #[test]
    fn identical_call_sequences_replay_identically() {
        let drive = |seed: u64| {
            let mut inj = FaultInjector::new(&FaultPlan::stress(seed)).unwrap();
            let mut log = Vec::new();
            for t in 0..3_000u64 {
                log.push(format!(
                    "{:?}|{:?}|{}|{:?}",
                    inj.link_verdict(Cycle::new(t * 7), (t % 4) as u16, ((t + 2) % 4) as u16),
                    inj.ni_freeze(Cycle::new(t * 7), (t % 4) as u16, NiDir::Out),
                    inj.pp_burst(Cycle::new(t * 7), (t % 4) as u16),
                    inj.dram_block(Cycle::new(t * 7)),
                ));
            }
            (log, *inj.stats())
        };
        let (a, sa) = drive(42);
        let (b, sb) = drive(42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = drive(43);
        assert_ne!(a, c, "a different seed must change the schedule");
    }

    #[test]
    fn fault_classes_draw_from_independent_streams() {
        // Consuming PP draws must not shift the link-fault schedule.
        let link_schedule = |pp_calls: u64| {
            let mut inj = FaultInjector::new(&FaultPlan::stress(1)).unwrap();
            for t in 0..pp_calls {
                inj.pp_burst(Cycle::new(t), 0);
            }
            (0..500u64)
                .map(|t| format!("{:?}", inj.link_verdict(Cycle::new(t * 11), 0, 1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(link_schedule(0), link_schedule(1_000));
    }

    #[test]
    fn per_entity_streams_are_interleave_invariant() {
        // Two injectors over the same plan, driven with the same
        // per-entity call sequences but a completely different global
        // interleave (entity-major vs. time-major), must produce
        // identical per-entity schedules — the property that lets each
        // shard run its own injector over its own entities.
        let plan = FaultPlan::stress(7);
        let mut a = FaultInjector::new(&plan).unwrap();
        let mut b = FaultInjector::new(&plan).unwrap();
        let mut log_a = Vec::new();
        let mut log_b = Vec::new();
        // a: entity-major.
        for link in [(0u16, 1u16), (3, 2), (1, 0)] {
            for t in 0..400u64 {
                log_a.push((
                    link,
                    t,
                    format!("{:?}", a.link_verdict(Cycle::new(t * 5), link.0, link.1)),
                ));
            }
        }
        // b: time-major, with unrelated NI/PP draws mixed in.
        for t in 0..400u64 {
            for link in [(0u16, 1u16), (3, 2), (1, 0)] {
                b.ni_freeze(Cycle::new(t * 5), link.0, NiDir::In);
                b.pp_burst(Cycle::new(t * 5), link.1);
                log_b.push((
                    link,
                    t,
                    format!("{:?}", b.link_verdict(Cycle::new(t * 5), link.0, link.1)),
                ));
            }
        }
        log_a.sort_by_key(|&(link, t, _)| (link, t));
        log_b.sort_by_key(|&(link, t, _)| (link, t));
        assert_eq!(log_a, log_b);
    }

    #[test]
    fn stats_absorb_sums_counts() {
        let plan = FaultPlan {
            link_stall_p: 1.0,
            link_stall_cycles: 10,
            ..FaultPlan::zeroed(0)
        };
        let mut a = FaultInjector::new(&plan).unwrap();
        let mut b = FaultInjector::new(&plan).unwrap();
        a.link_verdict(Cycle::new(0), 0, 1);
        b.link_verdict(Cycle::new(0), 2, 3);
        b.link_verdict(Cycle::new(100), 2, 3);
        let mut sum = *a.stats();
        sum.absorb(b.stats());
        assert_eq!(sum.link_stalls, 3);
        assert_eq!(sum.delay_cycles, 30);
    }

    #[test]
    fn scripted_outage_holds_and_releases() {
        let plan = FaultPlan::zeroed(0).with_link_down(1, 2, 100, Some(700));
        let mut inj = FaultInjector::new(&plan).unwrap();
        assert_eq!(inj.link_verdict(Cycle::new(50), 1, 2), LinkVerdict::Clear);
        // Inside the window: held, resume bounded by the recheck quantum.
        let LinkVerdict::Hold { resume } = inj.link_verdict(Cycle::new(100), 1, 2) else {
            panic!("expected hold");
        };
        assert_eq!(resume, Cycle::new(612));
        // Near the end of a finite window: resume exactly at its end.
        let LinkVerdict::Hold { resume } = inj.link_verdict(Cycle::new(612), 1, 2) else {
            panic!("expected hold");
        };
        assert_eq!(resume, Cycle::new(700));
        assert_eq!(inj.link_verdict(Cycle::new(700), 1, 2), LinkVerdict::Clear);
        // Other links unaffected.
        assert_eq!(inj.link_verdict(Cycle::new(100), 2, 1), LinkVerdict::Clear);
        assert_eq!(inj.stats().link_holds, 2);
        let held = inj.held_links();
        assert_eq!(held.len(), 1);
        assert_eq!((held[0].src, held[0].dst), (1, 2));
        assert!(!held[0].permanent);
    }

    #[test]
    fn permanent_outage_never_releases() {
        let plan = FaultPlan::zeroed(0).with_link_down(0, 3, 0, None);
        let mut inj = FaultInjector::new(&plan).unwrap();
        let mut t = Cycle::ZERO;
        for _ in 0..50 {
            let LinkVerdict::Hold { resume } = inj.link_verdict(t, 0, 3) else {
                panic!("permanent outage released");
            };
            assert_eq!(resume, t + HOLD_RECHECK_CYCLES);
            t = resume;
        }
        assert!(inj.held_links()[0].permanent);
    }

    #[test]
    fn transient_stall_delays_followers_on_the_same_link() {
        let plan = FaultPlan {
            link_stall_p: 1.0,
            link_stall_cycles: 300,
            ..FaultPlan::zeroed(0)
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        let LinkVerdict::Delay(d0) = inj.link_verdict(Cycle::new(10), 0, 1) else {
            panic!("p=1 must stall");
        };
        assert_eq!(d0, 300);
        // A follower 100 cycles later waits out the remaining window and
        // (p=1) opens another stall on top.
        let LinkVerdict::Delay(d1) = inj.link_verdict(Cycle::new(110), 0, 1) else {
            panic!("p=1 must stall");
        };
        assert_eq!(d1, 200 + 300);
        assert!(inj.stats().delay_cycles >= 800);
    }

    #[test]
    fn ni_freeze_window_blocks_until_lift() {
        let plan = FaultPlan {
            ni_freeze_p: 1.0,
            ni_freeze_cycles: 64,
            ..FaultPlan::zeroed(0)
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        let resume = inj.ni_freeze(Cycle::new(8), 2, NiDir::In).expect("freeze");
        assert_eq!(resume, Cycle::new(72));
        // Inside the window: same resume, no new draw needed.
        assert_eq!(inj.ni_freeze(Cycle::new(40), 2, NiDir::In), Some(resume));
        // Other direction and other nodes freeze independently.
        assert_ne!(inj.ni_freeze(Cycle::new(40), 2, NiDir::Out), None);
        assert_eq!(inj.stats().ni_freezes, 2);
    }

    #[test]
    fn dram_refresh_is_phase_locked() {
        let plan = FaultPlan {
            dram_refresh_period: 1_000,
            dram_refresh_cycles: 50,
            ..FaultPlan::zeroed(0)
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        assert_eq!(inj.dram_block(Cycle::new(10)), Some(Cycle::new(50)));
        assert_eq!(inj.dram_block(Cycle::new(50)), None);
        assert_eq!(inj.dram_block(Cycle::new(999)), None);
        assert_eq!(inj.dram_block(Cycle::new(2_049)), Some(Cycle::new(2_050)));
    }
}
