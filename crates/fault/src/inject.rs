//! The fault injector: deterministic runtime for a [`FaultPlan`].
//!
//! Each fault class draws from its **own** [`DetRng`] stream derived from
//! the plan seed, so the decision sequence of one class depends only on
//! its own call sequence — which the deterministic event loop fixes — and
//! never on how other classes interleave. Every guard is `p > 0.0 &&
//! chance(p)`, so a zeroed plan makes no draws at all and an armed-but-
//! zero injector is byte-identical to no injector.

use crate::plan::FaultPlan;
use flash_engine::{Cycle, DetRng};
use std::collections::BTreeMap;

/// Per-class RNG stream indices (stable across versions: changing these
/// invalidates replay tokens).
const STREAM_LINK: u64 = 1;
const STREAM_NI: u64 = 2;
const STREAM_PP: u64 = 3;
const STREAM_HOP: u64 = 4;

/// How long a message held by a scripted link outage waits before it is
/// re-offered to the network. Small enough that finite outages release
/// promptly; large enough that a permanent outage's re-offer loop is
/// cheap. The loop keeps the event queue alive, which is exactly what
/// turns a permanent outage into a *detectable* livelock for the
/// forward-progress watchdog (instead of a silently drained queue).
pub const HOLD_RECHECK_CYCLES: u64 = 512;

/// What the injector decided about one message offered to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Send normally.
    Clear,
    /// Send with this many extra transit cycles.
    Delay(u64),
    /// Do not send now; re-offer the message at `resume` (the verdict is
    /// re-evaluated then). Used for scripted outages.
    Hold {
        /// When to re-offer the message.
        resume: Cycle,
    },
}

/// Which side of a node's network interface a freeze applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NiDir {
    /// Inbound: messages arriving at the node wait before dispatch.
    In,
    /// Outbound: messages leaving the node wait before entering the mesh.
    Out,
}

/// Counts of injected faults and the delay they added (diagnostics and
/// replay verification; never consulted for timing decisions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Per-hop delay spikes injected.
    pub hop_spikes: u64,
    /// Transient link-stall windows opened.
    pub link_stalls: u64,
    /// Messages held by scripted link outages (re-offer events).
    pub link_holds: u64,
    /// NI queue freezes injected (both directions).
    pub ni_freezes: u64,
    /// PP slowdown bursts injected.
    pub pp_bursts: u64,
    /// DRAM refresh stalls applied to a memory controller.
    pub dram_stalls: u64,
    /// Total extra cycles of delay attached to messages (spikes plus
    /// transient-stall waits; holds are unbounded and counted separately).
    pub delay_cycles: u64,
}

/// The runtime for one machine's [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng_link: DetRng,
    rng_ni: DetRng,
    rng_pp: DetRng,
    rng_hop: DetRng,
    /// End of the current transient stall per directed link.
    link_stalled_until: BTreeMap<(u16, u16), u64>,
    /// End of the current freeze per (node, direction).
    ni_frozen_until: BTreeMap<(u16, NiDir), u64>,
    /// Hold count per scripted-outage link (wedge diagnostics).
    held: BTreeMap<(u16, u16), u64>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds the injector for `plan`, or `None` when the plan is
    /// disarmed (so a disarmed machine carries no fault state at all).
    pub fn new(plan: &FaultPlan) -> Option<Self> {
        if plan.is_none() {
            return None;
        }
        Some(FaultInjector {
            rng_link: DetRng::for_stream(plan.seed, STREAM_LINK),
            rng_ni: DetRng::for_stream(plan.seed, STREAM_NI),
            rng_pp: DetRng::for_stream(plan.seed, STREAM_PP),
            rng_hop: DetRng::for_stream(plan.seed, STREAM_HOP),
            plan: plan.clone(),
            link_stalled_until: BTreeMap::new(),
            ni_frozen_until: BTreeMap::new(),
            held: BTreeMap::new(),
            stats: FaultStats::default(),
        })
    }

    /// Decides the fate of a message offered to the network at `at` on
    /// the directed link `src -> dst`. Scripted outages dominate; then
    /// transient link stalls; then per-hop spikes. Delays compose.
    pub fn link_verdict(&mut self, at: Cycle, src: u16, dst: u16) -> LinkVerdict {
        let t = at.raw();
        for down in &self.plan.link_down {
            if down.src == src && down.dst == dst && down.covers(t) {
                // Finite outage: wake exactly at its end. Permanent
                // outage: re-offer in bounded increments so the event
                // queue stays alive for the watchdog to observe.
                let resume = match down.until {
                    Some(u) => u.min(t + HOLD_RECHECK_CYCLES),
                    None => t + HOLD_RECHECK_CYCLES,
                };
                self.stats.link_holds += 1;
                *self.held.entry((src, dst)).or_insert(0) += 1;
                return LinkVerdict::Hold {
                    resume: Cycle::new(resume),
                };
            }
        }
        let mut delay = 0u64;
        // An open transient stall on this link delays the message to the
        // stall's end.
        if let Some(&until) = self.link_stalled_until.get(&(src, dst)) {
            if t < until {
                delay += until - t;
            }
        }
        if self.plan.link_stall_p > 0.0 && self.rng_link.chance(self.plan.link_stall_p) {
            let until = t + delay + self.plan.link_stall_cycles;
            self.link_stalled_until.insert((src, dst), until);
            self.stats.link_stalls += 1;
            delay += self.plan.link_stall_cycles;
        }
        if self.plan.hop_spike_p > 0.0 && self.rng_hop.chance(self.plan.hop_spike_p) {
            self.stats.hop_spikes += 1;
            delay += self.plan.hop_spike_cycles;
        }
        if delay == 0 {
            LinkVerdict::Clear
        } else {
            self.stats.delay_cycles += delay;
            LinkVerdict::Delay(delay)
        }
    }

    /// NI queue freeze check for one message touching `node`'s interface
    /// in direction `dir` at `at`. Returns `Some(resume)` when the
    /// message must wait (either an open freeze window, or a freshly
    /// drawn one).
    pub fn ni_freeze(&mut self, at: Cycle, node: u16, dir: NiDir) -> Option<Cycle> {
        let t = at.raw();
        if let Some(&until) = self.ni_frozen_until.get(&(node, dir)) {
            if t < until {
                return Some(Cycle::new(until));
            }
        }
        if self.plan.ni_freeze_p > 0.0 && self.rng_ni.chance(self.plan.ni_freeze_p) {
            let until = t + self.plan.ni_freeze_cycles;
            self.ni_frozen_until.insert((node, dir), until);
            self.stats.ni_freezes += 1;
            return Some(Cycle::new(until));
        }
        None
    }

    /// PP slowdown burst for one handler invocation on `node`: extra
    /// cycles the protocol processor is held busy (0 almost always).
    pub fn pp_burst(&mut self, _at: Cycle, _node: u16) -> u64 {
        if self.plan.pp_burst_p > 0.0 && self.rng_pp.chance(self.plan.pp_burst_p) {
            self.stats.pp_bursts += 1;
            self.plan.pp_burst_cycles
        } else {
            0
        }
    }

    /// DRAM refresh stall: when `at` falls inside a refresh window of the
    /// phase-locked global refresh clock, returns the cycle the memory
    /// controller unblocks. Purely deterministic (no RNG draws).
    pub fn dram_block(&mut self, at: Cycle) -> Option<Cycle> {
        let period = self.plan.dram_refresh_period;
        if period == 0 || self.plan.dram_refresh_cycles == 0 {
            return None;
        }
        let phase = at.raw() % period;
        if phase < self.plan.dram_refresh_cycles {
            self.stats.dram_stalls += 1;
            Some(Cycle::new(at.raw() - phase + self.plan.dram_refresh_cycles))
        } else {
            None
        }
    }

    /// Cumulative fault statistics.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Links currently (or ever) held by scripted outages, with hold
    /// counts and whether the outage is permanent — wedge diagnostics.
    pub fn held_links(&self) -> Vec<crate::wedge::StalledLink> {
        self.held
            .iter()
            .map(|(&(src, dst), &holds)| crate::wedge::StalledLink {
                src,
                dst,
                holds,
                permanent: self
                    .plan
                    .link_down
                    .iter()
                    .any(|d| d.src == src && d.dst == dst && d.until.is_none()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_builds_no_injector() {
        assert!(FaultInjector::new(&FaultPlan::none()).is_none());
        assert!(FaultInjector::new(&FaultPlan::zeroed(5)).is_some());
    }

    #[test]
    fn zeroed_plan_never_injects() {
        let mut inj = FaultInjector::new(&FaultPlan::zeroed(9)).unwrap();
        for t in 0..5_000u64 {
            assert_eq!(
                inj.link_verdict(Cycle::new(t), (t % 4) as u16, ((t + 1) % 4) as u16),
                LinkVerdict::Clear
            );
            assert_eq!(
                inj.ni_freeze(Cycle::new(t), (t % 4) as u16, NiDir::In),
                None
            );
            assert_eq!(inj.pp_burst(Cycle::new(t), 0), 0);
            assert_eq!(inj.dram_block(Cycle::new(t)), None);
        }
        assert_eq!(*inj.stats(), FaultStats::default());
    }

    #[test]
    fn identical_call_sequences_replay_identically() {
        let drive = |seed: u64| {
            let mut inj = FaultInjector::new(&FaultPlan::stress(seed)).unwrap();
            let mut log = Vec::new();
            for t in 0..3_000u64 {
                log.push(format!(
                    "{:?}|{:?}|{}|{:?}",
                    inj.link_verdict(Cycle::new(t * 7), (t % 4) as u16, ((t + 2) % 4) as u16),
                    inj.ni_freeze(Cycle::new(t * 7), (t % 4) as u16, NiDir::Out),
                    inj.pp_burst(Cycle::new(t * 7), (t % 4) as u16),
                    inj.dram_block(Cycle::new(t * 7)),
                ));
            }
            (log, *inj.stats())
        };
        let (a, sa) = drive(42);
        let (b, sb) = drive(42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = drive(43);
        assert_ne!(a, c, "a different seed must change the schedule");
    }

    #[test]
    fn fault_classes_draw_from_independent_streams() {
        // Consuming PP draws must not shift the link-fault schedule.
        let link_schedule = |pp_calls: u64| {
            let mut inj = FaultInjector::new(&FaultPlan::stress(1)).unwrap();
            for t in 0..pp_calls {
                inj.pp_burst(Cycle::new(t), 0);
            }
            (0..500u64)
                .map(|t| format!("{:?}", inj.link_verdict(Cycle::new(t * 11), 0, 1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(link_schedule(0), link_schedule(1_000));
    }

    #[test]
    fn scripted_outage_holds_and_releases() {
        let plan = FaultPlan::zeroed(0).with_link_down(1, 2, 100, Some(700));
        let mut inj = FaultInjector::new(&plan).unwrap();
        assert_eq!(inj.link_verdict(Cycle::new(50), 1, 2), LinkVerdict::Clear);
        // Inside the window: held, resume bounded by the recheck quantum.
        let LinkVerdict::Hold { resume } = inj.link_verdict(Cycle::new(100), 1, 2) else {
            panic!("expected hold");
        };
        assert_eq!(resume, Cycle::new(612));
        // Near the end of a finite window: resume exactly at its end.
        let LinkVerdict::Hold { resume } = inj.link_verdict(Cycle::new(612), 1, 2) else {
            panic!("expected hold");
        };
        assert_eq!(resume, Cycle::new(700));
        assert_eq!(inj.link_verdict(Cycle::new(700), 1, 2), LinkVerdict::Clear);
        // Other links unaffected.
        assert_eq!(inj.link_verdict(Cycle::new(100), 2, 1), LinkVerdict::Clear);
        assert_eq!(inj.stats().link_holds, 2);
        let held = inj.held_links();
        assert_eq!(held.len(), 1);
        assert_eq!((held[0].src, held[0].dst), (1, 2));
        assert!(!held[0].permanent);
    }

    #[test]
    fn permanent_outage_never_releases() {
        let plan = FaultPlan::zeroed(0).with_link_down(0, 3, 0, None);
        let mut inj = FaultInjector::new(&plan).unwrap();
        let mut t = Cycle::ZERO;
        for _ in 0..50 {
            let LinkVerdict::Hold { resume } = inj.link_verdict(t, 0, 3) else {
                panic!("permanent outage released");
            };
            assert_eq!(resume, t + HOLD_RECHECK_CYCLES);
            t = resume;
        }
        assert!(inj.held_links()[0].permanent);
    }

    #[test]
    fn transient_stall_delays_followers_on_the_same_link() {
        let plan = FaultPlan {
            link_stall_p: 1.0,
            link_stall_cycles: 300,
            ..FaultPlan::zeroed(0)
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        let LinkVerdict::Delay(d0) = inj.link_verdict(Cycle::new(10), 0, 1) else {
            panic!("p=1 must stall");
        };
        assert_eq!(d0, 300);
        // A follower 100 cycles later waits out the remaining window and
        // (p=1) opens another stall on top.
        let LinkVerdict::Delay(d1) = inj.link_verdict(Cycle::new(110), 0, 1) else {
            panic!("p=1 must stall");
        };
        assert_eq!(d1, 200 + 300);
        assert!(inj.stats().delay_cycles >= 800);
    }

    #[test]
    fn ni_freeze_window_blocks_until_lift() {
        let plan = FaultPlan {
            ni_freeze_p: 1.0,
            ni_freeze_cycles: 64,
            ..FaultPlan::zeroed(0)
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        let resume = inj.ni_freeze(Cycle::new(8), 2, NiDir::In).expect("freeze");
        assert_eq!(resume, Cycle::new(72));
        // Inside the window: same resume, no new draw needed.
        assert_eq!(inj.ni_freeze(Cycle::new(40), 2, NiDir::In), Some(resume));
        // Other direction and other nodes freeze independently.
        assert_ne!(inj.ni_freeze(Cycle::new(40), 2, NiDir::Out), None);
        assert_eq!(inj.stats().ni_freezes, 2);
    }

    #[test]
    fn dram_refresh_is_phase_locked() {
        let plan = FaultPlan {
            dram_refresh_period: 1_000,
            dram_refresh_cycles: 50,
            ..FaultPlan::zeroed(0)
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        assert_eq!(inj.dram_block(Cycle::new(10)), Some(Cycle::new(50)));
        assert_eq!(inj.dram_block(Cycle::new(50)), None);
        assert_eq!(inj.dram_block(Cycle::new(999)), None);
        assert_eq!(inj.dram_block(Cycle::new(2_049)), Some(Cycle::new(2_050)));
    }
}
