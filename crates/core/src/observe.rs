//! Cycle-attribution observability: per-request latency breakdowns,
//! per-class/per-handler accumulation, and the bounded event trace.
//!
//! # What this measures
//!
//! The paper's argument is an *attribution* argument: Section 4 decomposes
//! execution time into handler occupancy vs. network and queueing latency
//! to show where the flexible controller's cycles go. This module gives
//! the reproduction the same instrument. With
//! [`MachineConfig::with_observe`](crate::MachineConfig::with_observe)
//! enabled, every processor miss (read, write, upgrade) is tracked from
//! the cycle it leaves the processor to the cycle its reply is delivered,
//! and the interval is decomposed into the six [`Segment`] buckets:
//! `{pi, inbox_wait, handler, mem, ni_wait, mesh}`.
//!
//! # The frontier algorithm
//!
//! Each in-flight request is a `PendingReq` keyed by
//! `(requester node, line address)` with an *attribution frontier* — the
//! latest simulation time already accounted for. Every event the machine
//! can associate with the request advances the frontier and charges the
//! gap to exactly one segment; the MAGIC chip contributes exact
//! per-emission [`ObsParts`] for the time spent inside it. Because every
//! charge is a frontier gap, the segments of a completed request sum to
//! its end-to-end latency *by construction* — the sums-to-total guarantee
//! does not depend on the protocol path taken (NACKs, retries, deferred
//! interventions, and fault-injected stalls included).
//!
//! On contended lines an event can occasionally be matched to the wrong
//! same-line request, moving cycles between buckets of two requests; the
//! per-request and per-class *totals* stay exact. The uncontended
//! micro-measurements behind Table 3.3 have no such ambiguity.
//!
//! # Timing invisibility
//!
//! The observer only ever appends to side buffers owned by the machine
//! and the chips; it takes no branch that affects event scheduling.
//! `tests/observe.rs` pins byte-identical schedules and reports with the
//! observer on and off, for all three controller kinds.

use flash_engine::{Cycle, Histogram, LatencySplit, LogHist, Segment, SEGMENT_COUNT};
use flash_magic::{ObsInvocation, ObsParts, ReadClass};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Default capacity of the trace ring: oldest events are dropped beyond
/// this many (the drop count is reported).
pub const TRACE_CAPACITY: usize = 65_536;

/// What kind of processor request a tracked record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// A read miss (`PiGet`).
    Read,
    /// A write miss (`PiGetX`).
    Write,
    /// An upgrade (`PiUpgrade`).
    Upgrade,
}

/// Number of breakdown rows in an [`ObserveReport`]: the five Table 3.3
/// read classes, unclassified reads, writes, and upgrades.
pub const ROW_COUNT: usize = 8;

/// Stable row names, aligned with [`row_index`].
pub const ROW_NAMES: [&str; ROW_COUNT] = [
    "read_local_clean",
    "read_local_dirty_remote",
    "read_remote_clean",
    "read_remote_dirty_home",
    "read_remote_dirty_remote",
    "read_unclassified",
    "write",
    "upgrade",
];

/// Maps a request kind (and, for reads, the home's classification) to its
/// breakdown row.
pub fn row_index(kind: ReqKind, class: Option<ReadClass>) -> usize {
    match (kind, class) {
        (ReqKind::Read, Some(c)) => c.index(),
        (ReqKind::Read, None) => 5,
        (ReqKind::Write, _) => 6,
        (ReqKind::Upgrade, _) => 7,
    }
}

/// One in-flight tracked request.
#[derive(Debug, Clone, Copy)]
struct PendingReq {
    issue: Cycle,
    frontier: Cycle,
    segs: [u64; SEGMENT_COUNT],
    class: Option<ReadClass>,
    kind: ReqKind,
}

/// One entry in the bounded event trace (a Chrome `trace_event` complete
/// event: name, category, start, duration, track).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSlice {
    /// Event name (handler name or breakdown row name).
    pub name: &'static str,
    /// Category: `"handler"` or `"request"`.
    pub cat: &'static str,
    /// Start time in cycles.
    pub ts: u64,
    /// Duration in cycles.
    pub dur: u64,
    /// Track id (the node, for handlers; the requester, for requests).
    pub tid: u16,
}

/// The machine-wide observer. Owned by `Machine` when
/// [`MachineConfig::observe`](crate::MachineConfig::observe) is set;
/// all hooks are no-ops when it is absent.
#[derive(Debug)]
pub struct Observer {
    pending: HashMap<(u16, u64), PendingReq>,
    rows: [LatencySplit; ROW_COUNT],
    /// Per-class end-to-end latency in log-bucketed histograms: the
    /// percentile (p50/p99/p999) side of the latency story, exact to a
    /// bucket floor and mergeable across shards/runs by bucket addition.
    lat: [LogHist; ROW_COUNT],
    hist: Histogram,
    handler_seed: Vec<&'static str>,
    trace: VecDeque<TraceSlice>,
    trace_cap: usize,
    trace_dropped: u64,
    requests: u64,
    completed: u64,
    replaced: u64,
    sum_mismatches: u64,
}

impl Observer {
    /// Creates an observer. `handler_seed` (typically
    /// `JumpTable::handler_names()`) gives every handler a stable report
    /// row even when it is never invoked.
    pub fn new(handler_seed: Vec<&'static str>) -> Self {
        Observer {
            pending: HashMap::new(),
            rows: [LatencySplit::new(); ROW_COUNT],
            lat: std::array::from_fn(|_| LogHist::new()),
            hist: Histogram::new(),
            handler_seed,
            trace: VecDeque::new(),
            trace_cap: TRACE_CAPACITY,
            trace_dropped: 0,
            requests: 0,
            completed: 0,
            replaced: 0,
            sum_mismatches: 0,
        }
    }

    /// Starts tracking a request issued by `node` for `line` at `issue`.
    pub fn begin(&mut self, node: u16, line: u64, issue: Cycle, kind: ReqKind) {
        self.requests += 1;
        if self
            .pending
            .insert(
                (node, line),
                PendingReq {
                    issue,
                    frontier: issue,
                    segs: [0; SEGMENT_COUNT],
                    class: None,
                    kind,
                },
            )
            .is_some()
        {
            self.replaced += 1;
        }
    }

    /// Records the home node's Table 3.3 classification for a tracked
    /// read.
    pub fn note_class(&mut self, key: (u16, u64), class: ReadClass) {
        if let Some(r) = self.pending.get_mut(&key) {
            if r.class.is_none() {
                r.class = Some(class);
            }
        }
    }

    /// Advances a request's frontier to `now`, charging the gap to `seg`.
    /// No-op for unknown keys or when `now` is not ahead of the frontier.
    pub fn advance(&mut self, key: (u16, u64), now: Cycle, seg: Segment) {
        if let Some(r) = self.pending.get_mut(&key) {
            if now > r.frontier {
                r.segs[seg.index()] += now - r.frontier;
                r.frontier = now;
            }
        }
    }

    /// Whether `key` identifies an in-flight tracked request.
    pub fn is_pending(&self, key: (u16, u64)) -> bool {
        self.pending.contains_key(&key)
    }

    /// Every in-flight tracked key, in unspecified order (shard setup:
    /// seeds each shard's local pending-key mirror so `is_pending`
    /// queries can be answered without touching the master observer).
    pub fn pending_keys(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.pending.keys().copied()
    }

    /// Applies a chip's exact per-emission decomposition: the frontier
    /// must already stand at the chip arrival time (the caller advanced
    /// it when the message reached the inbox), and `em_at − frontier ==
    /// parts.total()` holds by the chip's invariant. `net` selects where
    /// the outbound cycles land: NI-out for network emissions, PI for
    /// processor emissions.
    pub fn apply_parts(&mut self, key: (u16, u64), em_at: Cycle, parts: &ObsParts, net: bool) {
        if let Some(r) = self.pending.get_mut(&key) {
            r.segs[Segment::InboxWait.index()] += parts.inbox + parts.wait;
            r.segs[Segment::Handler.index()] += parts.occ;
            r.segs[Segment::Mem.index()] += parts.mem;
            let out_seg = if net { Segment::NiWait } else { Segment::Pi };
            r.segs[out_seg.index()] += parts.out;
            // The invariant makes frontier + total() == em_at; a drift
            // here would silently break sums-to-total, so police it.
            let expect = r.frontier + parts.total();
            if expect != em_at {
                self.sum_mismatches += 1;
            }
            r.frontier = r.frontier.max(em_at);
        }
    }

    /// Charges a network hop for a message known to continue a tracked
    /// request: source-side delay (fault holds) to NI-wait, then the mesh
    /// transit to mesh.
    pub fn net_hop(&mut self, key: (u16, u64), depart: Cycle, arrive: Cycle) {
        self.advance(key, depart, Segment::NiWait);
        self.advance(key, arrive, Segment::Mesh);
    }

    /// Completes a tracked request at `now` (reply delivered to the
    /// processor): the final frontier gap is charged to the PI bucket,
    /// the row and latency histogram are updated, and a `request` trace
    /// slice is emitted.
    pub fn complete(&mut self, key: (u16, u64), now: Cycle) {
        let Some(mut r) = self.pending.remove(&key) else {
            return;
        };
        if now > r.frontier {
            r.segs[Segment::Pi.index()] += now - r.frontier;
        }
        let total: u64 = r.segs.iter().sum();
        if total != now - r.issue {
            self.sum_mismatches += 1;
        }
        self.completed += 1;
        self.rows[row_index(r.kind, r.class)].record(r.segs);
        self.lat[row_index(r.kind, r.class)].record(total);
        self.hist.record(total);
        self.push_slice(TraceSlice {
            name: ROW_NAMES[row_index(r.kind, r.class)],
            cat: "request",
            ts: r.issue.raw(),
            dur: total,
            tid: key.0,
        });
    }

    /// Emits a `handler` trace slice for one chip invocation.
    pub fn trace_handler(&mut self, node: u16, inv: &ObsInvocation) {
        self.push_slice(TraceSlice {
            name: inv.handler,
            cat: "handler",
            ts: inv.start.raw(),
            dur: inv.occupied,
            tid: node,
        });
    }

    fn push_slice(&mut self, s: TraceSlice) {
        if self.trace.len() == self.trace_cap {
            self.trace.pop_front();
            self.trace_dropped += 1;
        }
        self.trace.push_back(s);
    }

    /// The trace ring contents, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceSlice> {
        self.trace.iter()
    }

    /// Requests begun, requests completed, requests still pending.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.requests, self.completed, self.pending.len() as u64)
    }

    /// Builds the structured report. `handlers` is the per-handler
    /// `(invocations, occupancy cycles)` aggregation from the chips.
    pub fn report(&self, handlers: &BTreeMap<&'static str, (u64, u64)>) -> ObserveReport {
        let rows = ROW_NAMES
            .iter()
            .zip(self.rows.iter())
            .map(|(&name, split)| ClassRow {
                class: name,
                count: split.count(),
                segs: split.segs(),
            })
            .collect();
        let mut merged: BTreeMap<&'static str, (u64, u64)> = self
            .handler_seed
            .iter()
            .map(|&name| (name, (0, 0)))
            .collect();
        for (&name, &(n, cyc)) in handlers {
            let e = merged.entry(name).or_insert((0, 0));
            e.0 += n;
            e.1 += cyc;
        }
        let handlers = merged
            .into_iter()
            .map(|(handler, (invocations, occupancy_cycles))| HandlerRow {
                handler,
                invocations,
                occupancy_cycles,
            })
            .collect();
        ObserveReport {
            rows,
            handlers,
            latency_buckets: self.hist.buckets().collect(),
            requests: self.requests,
            completed: self.completed,
            unresolved: self.pending.len() as u64,
            replaced: self.replaced,
            trace_events: self.trace.len() as u64,
            trace_dropped: self.trace_dropped,
            sum_mismatches: self.sum_mismatches,
        }
    }

    /// Renders the trace ring as Chrome `trace_event` JSON (the "JSON
    /// Array Format" with complete `"ph":"X"` events), viewable in
    /// Perfetto / `chrome://tracing`. Timestamps are simulation cycles
    /// presented as microseconds.
    pub fn trace_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.trace.len() * 96);
        s.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in self.trace.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                e.name, e.cat, e.ts, e.dur, e.tid
            ));
        }
        s.push_str("\n]}\n");
        s
    }
}

/// One breakdown row of an [`ObserveReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRow {
    /// Row name (one of [`ROW_NAMES`]).
    pub class: &'static str,
    /// Completed requests accumulated into this row.
    pub count: u64,
    /// Total cycles per [`Segment`], in [`Segment::ALL`] order.
    pub segs: [u64; SEGMENT_COUNT],
}

impl ClassRow {
    /// Total cycles across all segments.
    pub fn total(&self) -> u64 {
        self.segs.iter().sum()
    }

    /// Mean end-to-end latency per request (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total() as f64 / self.count as f64
        }
    }

    /// Mean cycles per request in one segment (0.0 when empty).
    pub fn mean_seg(&self, s: Segment) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.segs[s.index()] as f64 / self.count as f64
        }
    }
}

/// One per-handler row of an [`ObserveReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerRow {
    /// Handler name (native-dispatch name; identical across controller
    /// kinds).
    pub handler: &'static str,
    /// Invocations over the run.
    pub invocations: u64,
    /// Total PP occupancy cycles charged to this handler (0 on the ideal
    /// machine).
    pub occupancy_cycles: u64,
}

/// The structured cycle-attribution report for one run. Produced by
/// `Machine::observe_report` / `MachineReport::from_machine` when the
/// machine ran with observation on; `METRICS.md` documents every field
/// and the JSON schema emitted by [`ObserveReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveReport {
    /// Per-class latency breakdowns (fixed [`ROW_NAMES`] order).
    pub rows: Vec<ClassRow>,
    /// Per-handler invocation counts and occupancy (sorted by name; every
    /// jump-table handler appears, invoked or not).
    pub handlers: Vec<HandlerRow>,
    /// End-to-end miss latency histogram as `(bucket floor, count)` pairs
    /// over power-of-two buckets (only non-empty buckets appear).
    pub latency_buckets: Vec<(u64, u64)>,
    /// Requests the observer started tracking.
    pub requests: u64,
    /// Requests that completed (reply delivered).
    pub completed: u64,
    /// Requests still in flight when the report was taken.
    pub unresolved: u64,
    /// Tracked requests that were superseded by a new request on the same
    /// (node, line) key before completing.
    pub replaced: u64,
    /// Trace slices currently held in the ring.
    pub trace_events: u64,
    /// Trace slices dropped after the ring filled.
    pub trace_dropped: u64,
    /// Breakdowns whose segments failed to sum to the end-to-end total
    /// (0 on a healthy run; a nonzero value is an attribution bug, not a
    /// simulation bug).
    pub sum_mismatches: u64,
}

impl ObserveReport {
    /// The row for one Table 3.3 read class.
    pub fn class_row(&self, class: ReadClass) -> &ClassRow {
        &self.rows[class.index()]
    }

    /// Serializes the report as JSON under the `flash-observe-v1` schema
    /// documented in `METRICS.md`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n  \"schema\": \"flash-observe-v1\",\n");
        s.push_str(&format!(
            "  \"requests\": {},\n  \"completed\": {},\n  \"unresolved\": {},\n  \"replaced\": {},\n",
            self.requests, self.completed, self.unresolved, self.replaced
        ));
        s.push_str(&format!(
            "  \"trace_events\": {},\n  \"trace_dropped\": {},\n  \"sum_mismatches\": {},\n",
            self.trace_events, self.trace_dropped, self.sum_mismatches
        ));
        s.push_str("  \"segments\": [");
        for (i, seg) in Segment::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", seg.name()));
        }
        s.push_str("],\n  \"classes\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            s.push_str(&format!(
                "    {{\"class\": \"{}\", \"count\": {}, \"segs\": [{}], \"total\": {}}}",
                row.class,
                row.count,
                row.segs
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                row.total()
            ));
        }
        s.push_str("\n  ],\n  \"handlers\": [\n");
        for (i, h) in self.handlers.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            s.push_str(&format!(
                "    {{\"handler\": \"{}\", \"invocations\": {}, \"occupancy_cycles\": {}}}",
                h.handler, h.invocations, h.occupancy_cycles
            ));
        }
        s.push_str("\n  ],\n  \"latency_buckets\": [");
        for (i, (floor, count)) in self.latency_buckets.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("[{floor}, {count}]"));
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Per-node open-loop admission statistics, accumulated by the machine's
/// arrival/admission path and reported through
/// [`LatencyReport::traffic`] (and `Machine::traffic_stats`).
///
/// `admission wait` is the queueing delay an arrival spends between
/// landing (its scheduled arrival cycle) and being admitted to the
/// processor's mailbox — the open-loop half of end-to-end latency, which
/// the per-class service histograms do not see. Past the capacity knee
/// the waits and the backlog grow without bound while service latency
/// saturates; that divergence *is* the knee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// References that arrived (entered the backlog).
    pub arrivals: u64,
    /// References admitted to the mailbox so far.
    pub admitted: u64,
    /// Total admission wait over all admitted references, in cycles.
    pub wait_sum: u64,
    /// Largest single admission wait, in cycles.
    pub wait_max: u64,
    /// Deepest the arrived-but-unadmitted backlog ever got.
    pub peak_backlog: u64,
}

impl TrafficStats {
    /// Mean admission wait per admitted reference (0.0 when none).
    pub fn mean_wait(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.wait_sum as f64 / self.admitted as f64
        }
    }
}

/// One per-class row of a [`LatencyReport`]: integer-exact percentile
/// floors over the class's log-bucketed latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyRow {
    /// Row name (one of [`ROW_NAMES`], or `"all"` for the merged total).
    pub class: &'static str,
    /// Completed requests in this class.
    pub count: u64,
    /// Median latency (bucket floor, cycles).
    pub p50: u64,
    /// 99th-percentile latency (bucket floor, cycles).
    pub p99: u64,
    /// 99.9th-percentile latency (bucket floor, cycles).
    pub p999: u64,
    /// Largest observed latency — exact, not bucket-quantized.
    pub max: u64,
    /// Non-empty `(bucket floor, count)` pairs, ascending. Downstream
    /// tooling can merge rows from different runs by adding counts.
    pub buckets: Vec<(u64, u64)>,
}

impl LatencyRow {
    fn from_hist(class: &'static str, h: &LogHist) -> Self {
        LatencyRow {
            class,
            count: h.count(),
            p50: h.percentile(500),
            p99: h.percentile(990),
            p999: h.percentile(999),
            max: h.max(),
            buckets: h.buckets().collect(),
        }
    }
}

/// The per-class latency percentile report (`flash-latency-v1`).
///
/// Every number is a pure function of deterministic bucket counts, so
/// the JSON is byte-identical for any shard count and PP backend; it
/// carries no wall-clock values.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Per-class rows in [`ROW_NAMES`] order, then the merged `"all"`
    /// row last.
    pub rows: Vec<LatencyRow>,
    /// Per-node open-loop admission statistics (`(node, stats)`, node
    /// order). Empty for closed-loop runs.
    pub traffic: Vec<(u16, TrafficStats)>,
}

impl LatencyReport {
    /// Serializes under the `flash-latency-v1` schema documented in
    /// `METRICS.md`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n  \"schema\": \"flash-latency-v1\",\n  \"classes\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            s.push_str(&format!(
                "    {{\"class\": \"{}\", \"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}, \"buckets\": [{}]}}",
                row.class,
                row.count,
                row.p50,
                row.p99,
                row.p999,
                row.max,
                row.buckets
                    .iter()
                    .map(|(f, c)| format!("[{f}, {c}]"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        s.push_str("\n  ],\n  \"traffic\": [");
        for (i, (node, t)) in self.traffic.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"node\": {}, \"arrivals\": {}, \"admitted\": {}, \"admission_wait_sum\": {}, \"admission_wait_max\": {}, \"peak_backlog\": {}}}",
                node, t.arrivals, t.admitted, t.wait_sum, t.wait_max, t.peak_backlog
            ));
        }
        if !self.traffic.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

impl Observer {
    /// Builds the per-class latency percentile report (the machine adds
    /// open-loop traffic rows on top when feeds are attached).
    pub fn latency_report(&self) -> LatencyReport {
        let mut rows: Vec<LatencyRow> = ROW_NAMES
            .iter()
            .zip(self.lat.iter())
            .map(|(&name, h)| LatencyRow::from_hist(name, h))
            .collect();
        let mut all = LogHist::new();
        for h in &self.lat {
            all.merge(h);
        }
        rows.push(LatencyRow::from_hist("all", &all));
        LatencyReport {
            rows,
            traffic: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_sums_are_exact_by_construction() {
        let mut o = Observer::new(vec!["h"]);
        o.begin(0, 0x80, Cycle::new(10), ReqKind::Read);
        o.advance((0, 0x80), Cycle::new(17), Segment::Pi);
        o.note_class((0, 0x80), ReadClass::LocalClean);
        let parts = ObsParts {
            inbox: 3,
            wait: 0,
            occ: 11,
            mem: 0,
            out: 7,
        };
        // Chip arrival at 17, emission at 17 + 21 = 38.
        o.apply_parts((0, 0x80), Cycle::new(38), &parts, false);
        o.complete((0, 0x80), Cycle::new(38));
        let report = o.report(&BTreeMap::new());
        assert_eq!(report.sum_mismatches, 0);
        assert_eq!(report.completed, 1);
        let row = report.class_row(ReadClass::LocalClean);
        assert_eq!(row.count, 1);
        assert_eq!(row.total(), 28); // 38 − 10
        assert_eq!(row.segs, [14, 3, 11, 0, 0, 0]); // pi: 7 gap + 7 out
    }

    #[test]
    fn mismatched_parts_are_counted_not_hidden() {
        let mut o = Observer::new(vec![]);
        o.begin(0, 0x80, Cycle::new(0), ReqKind::Write);
        let parts = ObsParts {
            inbox: 1,
            wait: 0,
            occ: 0,
            mem: 0,
            out: 0,
        };
        // Claimed emission time disagrees with parts.total().
        o.apply_parts((0, 0x80), Cycle::new(5), &parts, true);
        o.complete((0, 0x80), Cycle::new(5));
        let report = o.report(&BTreeMap::new());
        assert!(report.sum_mismatches > 0);
    }

    #[test]
    fn trace_ring_drops_oldest_beyond_capacity() {
        let mut o = Observer::new(vec![]);
        o.trace_cap = 4;
        for i in 0..6u64 {
            o.push_slice(TraceSlice {
                name: "x",
                cat: "handler",
                ts: i,
                dur: 1,
                tid: 0,
            });
        }
        assert_eq!(o.trace.len(), 4);
        assert_eq!(o.trace_dropped, 2);
        assert_eq!(o.trace.front().unwrap().ts, 2, "oldest dropped first");
    }

    #[test]
    fn report_json_has_schema_and_all_rows() {
        let mut o = Observer::new(vec!["pi_get_local", "n_get"]);
        o.begin(1, 0x100, Cycle::new(0), ReqKind::Upgrade);
        o.complete((1, 0x100), Cycle::new(40));
        let mut handlers = BTreeMap::new();
        handlers.insert("pi_get_local", (3u64, 33u64));
        let r = o.report(&handlers);
        assert_eq!(r.rows.len(), ROW_COUNT);
        assert_eq!(r.handlers.len(), 2, "seeded handlers always present");
        assert_eq!(r.handlers[1].invocations, 3);
        assert_eq!(r.handlers[0].invocations, 0);
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"flash-observe-v1\""));
        for name in ROW_NAMES {
            assert!(json.contains(name), "row {name} missing from JSON");
        }
        for seg in Segment::ALL {
            assert!(json.contains(seg.name()));
        }
    }

    #[test]
    fn trace_json_is_chrome_format() {
        let mut o = Observer::new(vec![]);
        o.push_slice(TraceSlice {
            name: "pi_get_local",
            cat: "handler",
            ts: 10,
            dur: 11,
            tid: 0,
        });
        let json = o.trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":11"));
    }
}
