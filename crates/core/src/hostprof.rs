//! Host-time profiler: where the *simulator's* wall-clock time goes.
//!
//! PR 5's cycle-attribution observer answers "where did the simulated
//! cycles go"; this module answers the mirror question for host time, so
//! host-performance work is measured instead of guessed. When
//! [`crate::MachineConfig::with_host_profile`] arms it, the machine
//! brackets every event it processes with monotonic-clock stamps and
//! attributes the elapsed nanoseconds to one of six subsystem segments
//! plus a boundary bucket:
//!
//! * `proc_cache` — processor run loop, L1/L2 cache model, reply delivery
//! * `magic_dispatch` — MAGIC inbox bookkeeping, fault hooks, emission
//!   routing (everything in the chip event except the handler itself)
//! * `protocol` — protocol-processor handler execution and directory
//!   state (native, emulated, or translated backend)
//! * `net_mesh` — mesh routing, link fault verdicts, NI egress
//! * `event_queue` — timing-wheel/heap pops, window advance, staged
//!   cross-shard delivery
//! * `observe_check` — cycle-attribution journal replay and coherence
//!   checking (zero unless those modes are armed)
//! * `boundary` — window selection and synchronization replay (the
//!   sharded engine's coordination tax)
//!
//! The profiler is a pure observer of the host clock: it never reads or
//! writes simulation state, so arming it cannot change `exec_cycles`,
//! reports, traces, or any other simulated observable (pinned by
//! `machine_properties::host_profile_is_timing_invisible`). Per-shard
//! accumulators merge at run teardown; on multi-shard runs the segment
//! sum is CPU time across workers and may exceed wall time. Export: the
//! `flash-hostprof-v1` JSON of METRICS.md, written to `FLASH_HOSTPROF_OUT`
//! at run completion and rendered by the `host_profile` bin.

use std::time::Instant;

/// Host-time segments, in render order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostSeg {
    /// Processor run loop and cache model.
    Proc = 0,
    /// MAGIC dispatch outside the handler.
    Magic = 1,
    /// Protocol handler + directory execution.
    Protocol = 2,
    /// Mesh and network interfaces.
    Net = 3,
    /// Event-queue operations.
    Queue = 4,
    /// Observer replay and coherence checks.
    ObsCheck = 5,
    /// Window coordination (sync replay, window selection).
    Boundary = 6,
}

/// Number of host-time segments.
pub const HOST_SEG_COUNT: usize = 7;

/// Segment names as exported in `flash-hostprof-v1`.
pub const HOST_SEG_NAMES: [&str; HOST_SEG_COUNT] = [
    "proc_cache",
    "magic_dispatch",
    "protocol",
    "net_mesh",
    "event_queue",
    "observe_check",
    "boundary",
];

/// One accumulator of attributed nanoseconds (per shard, or the
/// coordinator's boundary-side instance).
#[derive(Debug, Default, Clone)]
pub struct HostProfAcc {
    /// Attributed nanoseconds per segment.
    pub ns: [u64; HOST_SEG_COUNT],
    /// Events processed under the bracket (including inlined
    /// continuations, which never touch the queue).
    pub events: u64,
    /// Nanoseconds claimed by nested brackets since the enclosing outer
    /// bracket opened; the outer subtracts this to avoid double counting.
    inner: u64,
}

impl HostProfAcc {
    /// Closes an inner bracket: attributes `start..now` to `seg` and
    /// marks it claimed for the enclosing outer bracket.
    #[inline]
    pub fn add_inner(&mut self, seg: HostSeg, start: Instant) {
        let ns = start.elapsed().as_nanos() as u64;
        self.ns[seg as usize] += ns;
        self.inner += ns;
    }

    /// Resets the nested-claim counter (opens an outer bracket at an
    /// externally taken stamp — the chained-lap discipline).
    #[inline]
    pub fn reset_inner(&mut self) {
        self.inner = 0;
    }

    /// Opens an outer bracket (resets the nested-claim counter).
    #[inline]
    pub fn open_outer(&mut self) -> Instant {
        self.inner = 0;
        Instant::now()
    }

    /// Closes an outer bracket: attributes `start..now` minus whatever
    /// nested brackets already claimed.
    #[inline]
    pub fn add_outer(&mut self, seg: HostSeg, start: Instant) {
        let ns = start.elapsed().as_nanos() as u64;
        self.ns[seg as usize] += ns.saturating_sub(self.inner);
        self.inner = 0;
    }

    /// Attributes a flat interval (no nesting semantics).
    #[inline]
    pub fn add_flat(&mut self, seg: HostSeg, start: Instant) {
        self.ns[seg as usize] += start.elapsed().as_nanos() as u64;
    }

    /// Chained lap: attributes `t0..now` to `seg` and returns the new
    /// stamp, so consecutive laps leave no unattributed gap (the hot
    /// loop's bracket discipline — one stamp both closes a segment and
    /// opens the next).
    #[inline]
    pub fn lap(&mut self, seg: HostSeg, t0: Instant) -> Instant {
        let t1 = Instant::now();
        self.ns[seg as usize] += t1.duration_since(t0).as_nanos() as u64;
        t1
    }

    /// Chained lap that closes an *outer* bracket: like [`Self::lap`] but
    /// subtracts whatever nested [`Self::add_inner`] brackets claimed
    /// since the bracket opened.
    #[inline]
    pub fn lap_outer(&mut self, seg: HostSeg, t0: Instant) -> Instant {
        let t1 = Instant::now();
        let ns = t1.duration_since(t0).as_nanos() as u64;
        self.ns[seg as usize] += ns.saturating_sub(self.inner);
        self.inner = 0;
        t1
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &HostProfAcc) {
        for (a, b) in self.ns.iter_mut().zip(other.ns.iter()) {
            *a += b;
        }
        self.events += other.events;
    }
}

/// The machine-level profile: merged segment times plus the wall clock
/// the coordinator measured around the drive loop.
#[derive(Debug, Default, Clone)]
pub struct HostProfile {
    /// Merged attributed nanoseconds (shards + coordinator).
    pub acc: HostProfAcc,
    /// Wall nanoseconds of the profiled `run()` calls, measured on the
    /// coordinator around the drive loop.
    pub wall_ns: u64,
    /// Number of `run()` calls profiled.
    pub runs: u64,
}

impl HostProfile {
    /// Total attributed nanoseconds across all segments.
    pub fn attributed_ns(&self) -> u64 {
        self.acc.ns.iter().sum()
    }

    /// Fraction of measured wall time the segments explain. On a
    /// single-shard run this is the coverage guarantee (≥ 0.95 on any
    /// non-trivial run); multi-shard runs sum worker CPU time and can
    /// exceed 1.0.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.attributed_ns() as f64 / self.wall_ns as f64
    }

    /// Serializes as `flash-hostprof-v1` (METRICS.md).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": \"flash-hostprof-v1\",\n");
        s.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        s.push_str(&format!("  \"events\": {},\n", self.acc.events));
        s.push_str(&format!("  \"runs\": {},\n", self.runs));
        s.push_str(&format!("  \"attributed_ns\": {},\n", self.attributed_ns()));
        s.push_str(&format!("  \"coverage\": {:.4},\n", self.coverage()));
        s.push_str("  \"segments\": {\n");
        for (i, name) in HOST_SEG_NAMES.iter().enumerate() {
            let ns = self.acc.ns[i];
            let pct = if self.wall_ns > 0 {
                100.0 * ns as f64 / self.wall_ns as f64
            } else {
                0.0
            };
            s.push_str(&format!(
                "    \"{name}\": {{ \"ns\": {ns}, \"pct_wall\": {pct:.2} }}{}\n",
                if i + 1 < HOST_SEG_COUNT { "," } else { "" }
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Renders a human-readable table (the `host_profile` bin's output).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "host-time profile: {:.1} ms wall, {} events, {:.1}% attributed\n",
            self.wall_ns as f64 / 1e6,
            self.acc.events,
            100.0 * self.coverage()
        ));
        let total = self.attributed_ns().max(1);
        for (i, name) in HOST_SEG_NAMES.iter().enumerate() {
            let ns = self.acc.ns[i];
            s.push_str(&format!(
                "  {name:<14} {:>10.2} ms  {:>5.1}%\n",
                ns as f64 / 1e6,
                100.0 * ns as f64 / total as f64
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_brackets_do_not_double_count() {
        let mut a = HostProfAcc::default();
        let outer = a.open_outer();
        let inner = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        a.add_inner(HostSeg::Protocol, inner);
        a.add_outer(HostSeg::Magic, outer);
        let total: u64 = a.ns.iter().sum();
        let wall = outer.elapsed().as_nanos() as u64;
        assert!(a.ns[HostSeg::Protocol as usize] > 1_000_000);
        assert!(
            total <= wall,
            "attributed {total} must not exceed wall {wall}"
        );
    }

    #[test]
    fn json_is_schema_tagged_and_complete() {
        let mut p = HostProfile::default();
        p.acc.ns = [10, 20, 30, 40, 50, 0, 5];
        p.acc.events = 7;
        p.wall_ns = 160;
        p.runs = 1;
        let j = p.to_json();
        assert!(j.contains("\"schema\": \"flash-hostprof-v1\""));
        for name in HOST_SEG_NAMES {
            assert!(j.contains(&format!("\"{name}\"")), "{name} missing");
        }
        assert!(j.contains("\"coverage\": 0.9688"));
    }
}
