//! The machine: nodes, network, and the event loop (the FlashLite role).

use crate::config::MachineConfig;
use flash_cpu::{CpuOut, Processor, RefStream, RunOutcome};
use flash_engine::{Addr, Cycle, EventQueue, NodeId};
use flash_magic::{ControllerKind, Emission, MagicChip};
use flash_net::{Mesh, NetModel};
use flash_protocol::fields::aux;
use flash_protocol::{dir_addr, InMsg, JumpTable, Msg, MsgType, ProcMsg};
use std::collections::{HashMap, VecDeque};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Resume a processor's reference stream.
    ProcRun(u16),
    /// A message is ready at a node's inbox (inbound latency paid).
    MagicIn { node: u16, wire: Wire },
    /// MAGIC delivers a message to its local processor.
    ProcDeliver { node: u16, pm: ProcMsg, tries: u32 },
}

/// A message on the wire (or on a node's internal buses).
#[derive(Debug, Clone, Copy)]
struct Wire {
    mtype: MsgType,
    src: NodeId,
    addr: Addr,
    aux: u64,
    with_data: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Park {
    Scheduled,
    WaitReply,
    WaitSync,
    Done,
}

#[derive(Debug, Default)]
struct LockState {
    held: bool,
    waiters: VecDeque<(u16, Cycle)>,
}

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// Every processor finished its stream.
    Completed {
        /// Latest processor finish time = application execution time.
        exec_cycles: u64,
    },
    /// The cycle budget was exhausted first.
    BudgetExhausted,
    /// The event queue drained with processors still unfinished — a
    /// protocol or workload deadlock (e.g. unbalanced barriers).
    Deadlocked {
        /// Number of processors that never finished.
        stuck: usize,
    },
}

/// A full machine instance: processors, MAGIC chips, memory, network.
pub struct Machine {
    cfg: MachineConfig,
    procs: Vec<Processor>,
    chips: Vec<MagicChip>,
    net: NetModel,
    events: EventQueue<Ev>,
    now: Cycle,
    parked: Vec<Park>,
    barrier_waiters: Vec<(u16, Cycle)>,
    locks: HashMap<u32, LockState>,
    done: usize,
    finish: Vec<Cycle>,
    interv_deferrals: u64,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nodes", &self.cfg.nodes)
            .field("now", &self.now)
            .field("done", &self.done)
            .finish()
    }
}

/// Deferrals allowed for one intervention while the target's in-flight
/// grant lands (16 cycles apart). Beyond this the transaction is assumed
/// to be a request/forward cycle: the intervention reports a miss (the
/// home abandons the pending transaction) and the target's eventual grant
/// is poisoned so no stale copy is cached.
const MAX_INTERV_DEFERRALS: u32 = 64;

/// Line address to trace (set `FLASH_TRACE_ADDR=0x...` to dump every
/// message touching that 128-byte line to stderr).
fn trace_addr() -> Option<u64> {
    static TRACE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| {
        std::env::var("FLASH_TRACE_ADDR")
            .ok()
            .and_then(|t| u64::from_str_radix(t.trim_start_matches("0x"), 16).ok())
            .map(|a| a & !127)
    })
}

impl Machine {
    /// Builds a machine running one reference stream per node.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != cfg.nodes`.
    pub fn new(cfg: MachineConfig, streams: Vec<Box<dyn RefStream>>) -> Self {
        assert_eq!(streams.len(), cfg.nodes as usize, "one stream per node");
        // Handler modules are immutable once scheduled; they are compiled
        // at most once per (codegen, monitoring) variant for the whole
        // process and shared across nodes, machines, and worker threads.
        let program = match (cfg.controller, cfg.monitoring) {
            (ControllerKind::FlashEmulated, false) => {
                Some(flash_protocol::handlers::compile_shared(cfg.codegen))
            }
            (ControllerKind::FlashEmulated, true) => Some(
                flash_protocol::handlers::compile_monitoring_shared(cfg.codegen),
            ),
            _ => None,
        };
        let jump = if cfg.monitoring && cfg.controller == ControllerKind::FlashEmulated {
            JumpTable::dpa_with_monitoring()
        } else {
            JumpTable::dpa_protocol()
        };
        let chips = (0..cfg.nodes)
            .map(|i| {
                MagicChip::new(
                    cfg.controller,
                    NodeId(i),
                    program.clone(),
                    jump.clone(),
                    cfg.mem_timing,
                    cfg.speculation,
                    cfg.mdc_enabled,
                )
            })
            .collect();
        let procs: Vec<Processor> = streams
            .into_iter()
            .map(|s| Processor::new(cfg.cache_bytes, cfg.mshrs, s))
            .collect();
        let net = NetModel::new(Mesh::for_nodes(cfg.nodes), cfg.net);
        let mut events = EventQueue::new();
        for i in 0..cfg.nodes {
            events.push(Cycle::ZERO, Ev::ProcRun(i));
        }
        let n = cfg.nodes as usize;
        Machine {
            cfg,
            procs,
            chips,
            net,
            events,
            now: Cycle::ZERO,
            parked: vec![Park::Scheduled; n],
            barrier_waiters: Vec::new(),
            locks: HashMap::new(),
            done: 0,
            finish: vec![Cycle::ZERO; n],
            interv_deferrals: 0,
        }
    }

    /// Schedules a DMA write into `node`'s memory at time `at` (the OS
    /// workload's zero-latency disk, paper §3.4).
    pub fn add_dma_write(&mut self, at: Cycle, node: NodeId, addr: Addr) {
        self.events.push(
            at,
            Ev::MagicIn {
                node: node.0,
                wire: Wire {
                    mtype: MsgType::IoDmaWrite,
                    src: node,
                    addr: addr.line(),
                    aux: 0,
                    with_data: true,
                },
            },
        );
    }

    /// Runs until every processor finishes or `budget_cycles` elapse.
    pub fn run(&mut self, budget_cycles: u64) -> RunResult {
        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if t.raw() > budget_cycles {
                return RunResult::BudgetExhausted;
            }
            match ev {
                Ev::ProcRun(n) => self.ev_proc_run(n),
                Ev::MagicIn { node, wire } => self.ev_magic_in(node, wire),
                Ev::ProcDeliver { node, pm, tries } => self.ev_proc_deliver(node, pm, tries),
            }
            if self.done == self.procs.len() && self.events.is_empty() {
                break;
            }
        }
        if self.done < self.procs.len() {
            return RunResult::Deadlocked {
                stuck: self.procs.len() - self.done,
            };
        }
        RunResult::Completed {
            exec_cycles: self.exec_cycles(),
        }
    }

    /// Latest processor finish time.
    pub fn exec_cycles(&self) -> u64 {
        self.finish.iter().map(|c| c.raw()).max().unwrap_or(0)
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The machine's processors (stats inspection).
    pub fn procs(&self) -> &[Processor] {
        &self.procs
    }

    /// The machine's MAGIC chips (stats inspection).
    pub fn chips(&self) -> &[MagicChip] {
        &self.chips
    }

    /// The network model (stats inspection).
    pub fn network(&self) -> &NetModel {
        &self.net
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Interventions that had to be deferred waiting for in-flight data.
    pub fn interv_deferrals(&self) -> u64 {
        self.interv_deferrals
    }

    // ---- event handlers --------------------------------------------------

    fn ev_proc_run(&mut self, n: u16) {
        let i = n as usize;
        if self.parked[i] != Park::Scheduled {
            return; // stale wakeup
        }
        let mut outs = Vec::new();
        let outcome = self.procs[i].run(self.now, &mut outs);
        self.post_cpu_outs(n, &outs);
        match outcome {
            RunOutcome::BlockedRead | RunOutcome::BlockedWrite => {
                self.parked[i] = Park::WaitReply;
            }
            RunOutcome::Barrier => {
                // Processors run ahead of the event clock; synchronization
                // uses each processor's own arrival time.
                let pt = self.procs[i].now().max(self.now);
                self.parked[i] = Park::WaitSync;
                self.barrier_waiters.push((n, pt));
                self.maybe_release_barrier();
            }
            RunOutcome::Lock(id) => {
                let pt = self.procs[i].now().max(self.now);
                let grant = self.cfg.lat.lock_grant;
                let lock = self.locks.entry(id).or_default();
                if lock.held {
                    lock.waiters.push_back((n, pt));
                    self.parked[i] = Park::WaitSync;
                } else {
                    lock.held = true;
                    self.schedule_run(n, pt + grant);
                }
            }
            RunOutcome::Unlock(id) => {
                let pt = self.procs[i].now().max(self.now);
                let grant = self.cfg.lat.lock_grant;
                let next = {
                    let lock = self.locks.entry(id).or_default();
                    match lock.waiters.pop_front() {
                        Some(w) => Some(w),
                        None => {
                            lock.held = false;
                            None
                        }
                    }
                };
                if let Some((w, wt)) = next {
                    self.schedule_run(w, pt.max(wt) + grant);
                }
                self.schedule_run(n, pt);
            }
            RunOutcome::Quantum => {
                let at = self.procs[i].now();
                self.schedule_run(n, at.max(self.now));
            }
            RunOutcome::Finished => {
                if self.parked[i] != Park::Done {
                    self.parked[i] = Park::Done;
                    self.finish[i] = self.procs[i].finish_time();
                    self.done += 1;
                    self.maybe_release_barrier();
                }
            }
        }
    }

    fn schedule_run(&mut self, n: u16, at: Cycle) {
        self.parked[n as usize] = Park::Scheduled;
        self.events.push(at, Ev::ProcRun(n));
    }

    fn wake_if_waiting(&mut self, n: u16, at: Cycle) {
        if self.parked[n as usize] == Park::WaitReply {
            self.schedule_run(n, at);
        }
    }

    fn maybe_release_barrier(&mut self) {
        let active = self.procs.len() - self.done;
        if active > 0 && self.barrier_waiters.len() == active {
            let waiters = std::mem::take(&mut self.barrier_waiters);
            let release = waiters.iter().map(|&(_, t)| t).fold(self.now, Cycle::max);
            for (w, _) in waiters {
                self.schedule_run(w, release);
            }
        }
    }

    /// Converts processor requests into PI messages at the MAGIC inbox.
    fn post_cpu_outs(&mut self, n: u16, outs: &[(Cycle, CpuOut)]) {
        let lat = self.cfg.lat;
        for &(t, o) in outs {
            let (mtype, addr, extra) = match o {
                CpuOut::Get(a) => (MsgType::PiGet, a, lat.miss_to_bus),
                CpuOut::GetX(a) => (MsgType::PiGetX, a, lat.miss_to_bus),
                CpuOut::Upgrade(a) => (MsgType::PiUpgrade, a, lat.miss_to_bus),
                CpuOut::Writeback(a) => (MsgType::PiWriteback, a, 0),
                CpuOut::Hint(a) => (MsgType::PiRplHint, a, 0),
            };
            self.events.push(
                t + extra + lat.bus + lat.pi_in,
                Ev::MagicIn {
                    node: n,
                    wire: Wire {
                        mtype,
                        src: NodeId(n),
                        addr,
                        aux: 0,
                        with_data: mtype.carries_data(),
                    },
                },
            );
        }
    }

    fn ev_magic_in(&mut self, node: u16, wire: Wire) {
        if trace_addr() == Some(wire.addr.line().raw()) {
            let home = self.cfg.placement.home_of(wire.addr, self.cfg.nodes);
            eprintln!(
                "[{}] magic_in node{} {:?} src={} aux={:#x} hdr={:#x}",
                self.now,
                node,
                wire.mtype,
                wire.src,
                wire.aux,
                self.chips[home.index()]
                    .peek_header(flash_protocol::dir_addr(wire.addr))
                    .0
            );
        }
        let home = self.cfg.placement.home_of(wire.addr, self.cfg.nodes);
        let msg = InMsg {
            mtype: wire.mtype,
            src: wire.src,
            addr: wire.addr,
            aux: wire.aux,
            spec: false,
            self_node: NodeId(node),
            home,
            diraddr: dir_addr(wire.addr),
            with_data: wire.with_data,
        };
        // Read-miss classification at the home (paper Tables 4.1/4.2).
        let chip = &mut self.chips[node as usize];
        match wire.mtype {
            MsgType::PiGet if home == NodeId(node) => chip.classify_read(&msg, NodeId(node)),
            MsgType::NGet => chip.classify_read(&msg, aux::requester(wire.aux)),
            _ => {}
        }
        let emissions = chip.process(msg, self.now);
        for em in emissions {
            match em {
                Emission::Net { at, msg } => self.post_net(at, msg),
                Emission::Proc { at, msg } => {
                    self.events.push(
                        at,
                        Ev::ProcDeliver {
                            node,
                            pm: msg,
                            tries: 0,
                        },
                    );
                }
            }
        }
    }

    fn post_net(&mut self, at: Cycle, msg: Msg) {
        if trace_addr() == Some(msg.addr.line().raw()) {
            eprintln!(
                "[{}] post_net at={} {:?} {}->{} aux={:#x}",
                self.now, at, msg.mtype, msg.src, msg.dst, msg.aux
            );
        }
        let arrival = self.net.send(at, msg.src, msg.dst);
        self.events.push(
            arrival + self.cfg.lat.ni_in,
            Ev::MagicIn {
                node: msg.dst.0,
                wire: Wire {
                    mtype: msg.mtype,
                    src: msg.src,
                    addr: msg.addr,
                    aux: msg.aux,
                    with_data: msg.with_data,
                },
            },
        );
    }

    fn ev_proc_deliver(&mut self, node: u16, pm: ProcMsg, tries: u32) {
        let i = node as usize;
        let lat = self.cfg.lat;
        match pm.mtype {
            MsgType::PPut | MsgType::PPutX | MsgType::PUpgAck => {
                let excl = pm.mtype != MsgType::PPut;
                let mut outs = Vec::new();
                self.procs[i].deliver_reply(pm.addr, excl, self.now, &mut outs);
                self.post_cpu_outs(node, &outs);
                self.wake_if_waiting(node, self.now);
            }
            MsgType::PInval => {
                self.procs[i].inval(pm.addr, self.now);
            }
            MsgType::PIntervGet | MsgType::PIntervGetX => {
                let excl = pm.mtype == MsgType::PIntervGetX;
                let mut give_up = false;
                if self.procs[i].has_mshr(pm.addr) {
                    if tries < MAX_INTERV_DEFERRALS {
                        // Data for this line is in flight; the bus
                        // transaction retries until it lands.
                        self.interv_deferrals += 1;
                        self.events.push(
                            self.now + 16,
                            Ev::ProcDeliver {
                                node,
                                pm,
                                tries: tries + 1,
                            },
                        );
                        return;
                    }
                    // Request/forward cycle: break it. The miss report
                    // makes the home abandon the transaction; poisoning
                    // keeps the eventual grant from caching a stale copy.
                    self.procs[i].poison_pending(pm.addr);
                    give_up = true;
                }
                let found = !give_up && self.procs[i].intervention(pm.addr, excl, self.now);
                let (mtype, delay) = if found {
                    (MsgType::PiIntervReply, lat.cache_data)
                } else {
                    (MsgType::PiIntervMiss, lat.cache_state)
                };
                self.events.push(
                    self.now + delay + lat.bus + lat.pi_in,
                    Ev::MagicIn {
                        node,
                        wire: Wire {
                            mtype,
                            src: NodeId(node),
                            addr: pm.addr,
                            aux: pm.aux,
                            with_data: found,
                        },
                    },
                );
            }
            MsgType::PNackRetry => {
                if let Some(o) = self.procs[i].nack_retry(pm.addr) {
                    // Bus retry: the miss was already detected, so only
                    // the retry delay plus bus/PI path applies.
                    let (mtype, addr) = match o {
                        flash_cpu::CpuOut::Get(a) => (MsgType::PiGet, a),
                        flash_cpu::CpuOut::GetX(a) => (MsgType::PiGetX, a),
                        flash_cpu::CpuOut::Upgrade(a) => (MsgType::PiUpgrade, a),
                        other => unreachable!("{other:?} is not retryable"),
                    };
                    self.events.push(
                        self.now + lat.retry + lat.bus + lat.pi_in,
                        Ev::MagicIn {
                            node,
                            wire: Wire {
                                mtype,
                                src: NodeId(node),
                                addr,
                                aux: 0,
                                with_data: false,
                            },
                        },
                    );
                }
            }
            MsgType::PIoData => {}
            other => unreachable!("{other:?} is not a processor-bound message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::node_addr;
    use flash_cpu::{SliceStream, WorkItem};

    fn machine_with(cfg: MachineConfig, per_proc: Vec<Vec<WorkItem>>) -> Machine {
        let streams = per_proc
            .into_iter()
            .map(|v| Box::new(SliceStream::new(v)) as Box<dyn RefStream>)
            .collect();
        Machine::new(cfg, streams)
    }

    fn idle(n: usize) -> Vec<Vec<WorkItem>> {
        vec![vec![WorkItem::Busy(4)]; n]
    }

    #[test]
    fn empty_machine_completes() {
        for cfg in [
            MachineConfig::flash(4),
            MachineConfig::ideal(4),
            MachineConfig::flash_cost_table(4),
        ] {
            let mut m = machine_with(cfg, idle(4));
            match m.run(10_000) {
                RunResult::Completed { exec_cycles } => assert_eq!(exec_cycles, 1),
                r => panic!("unexpected {r:?}"),
            }
        }
    }

    /// Read stall of the final read in `items` relative to `warm_items`
    /// (which excludes it), isolating warm-path latency from cold MAGIC
    /// cache effects — the paper's Table 3.3 assumes warm steady state.
    fn marginal_read_stall(
        cfg: &MachineConfig,
        procs: u16,
        warm_items: Vec<WorkItem>,
        items: Vec<WorkItem>,
    ) -> f64 {
        let idle: Vec<WorkItem> = vec![WorkItem::Busy(1)];
        let run = |it: Vec<WorkItem>| {
            let mut streams = vec![it];
            for _ in 1..procs {
                streams.push(idle.clone());
            }
            let mut m = machine_with(cfg.clone(), streams);
            let RunResult::Completed { .. } = m.run(1_000_000) else {
                panic!("stuck");
            };
            m.procs()[0].stats().read_stall_q as f64 / 4.0
        };
        run(items) - run(warm_items)
    }

    #[test]
    fn single_local_read_latency_matches_table_3_3() {
        // Warm-up read to a neighbouring line (same MDC header line), then
        // a timed read: ~27 cycles on FLASH, 24 on ideal (paper Table 3.3).
        let a = node_addr(NodeId(0), 0x2000);
        let warm = node_addr(NodeId(0), 0x2080);
        let warm_items = vec![WorkItem::Read(warm), WorkItem::Busy(4000)];
        let mut items = warm_items.clone();
        items.push(WorkItem::Read(a));
        for (cfg, expect) in [
            (MachineConfig::flash(1), 27u64),
            (MachineConfig::ideal(1), 24u64),
        ] {
            let per_miss = marginal_read_stall(&cfg, 1, warm_items.clone(), items.clone());
            assert!(
                (per_miss - expect as f64).abs() <= 3.0,
                "per-miss read stall {per_miss:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn remote_read_latency_roughly_matches_table_3_3() {
        // Processor 0 reads a line homed on node 1 (clean): FLASH 111,
        // ideal 92 (paper Table 3.3), measured after warming the remote
        // handler paths and MDC header line.
        let a = node_addr(NodeId(1), 0x4000);
        let warm = node_addr(NodeId(1), 0x4080);
        let warm_items = vec![WorkItem::Read(warm), WorkItem::Busy(8000)];
        let mut items = warm_items.clone();
        items.push(WorkItem::Read(a));
        // Small machines have shorter meshes; pin the paper's 16-node
        // 22-cycle average transit for comparability with Table 3.3.
        let mut fcfg = MachineConfig::flash(2);
        fcfg.net.transit_override = Some(22);
        let mut icfg = MachineConfig::ideal(2);
        icfg.net.transit_override = Some(22);
        for (cfg, expect, tol) in [(fcfg, 111.0, 15.0), (icfg, 92.0, 12.0)] {
            let stall = marginal_read_stall(&cfg, 2, warm_items.clone(), items.clone());
            assert!(
                (stall - expect).abs() <= tol,
                "remote clean read stall {stall:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn dirty_remote_transfer_works() {
        // P1 writes a line homed on node 0; P0 then reads it (local read,
        // dirty remote). Both machines must complete with correct traffic.
        let a = node_addr(NodeId(0), 0x8000);
        let w = vec![WorkItem::Write(a), WorkItem::Barrier, WorkItem::Busy(4)];
        let r = vec![WorkItem::Barrier, WorkItem::Read(a), WorkItem::Busy(4)];
        for cfg in [
            MachineConfig::flash(2),
            MachineConfig::ideal(2),
            MachineConfig::flash_cost_table(2),
        ] {
            let kind = cfg.controller;
            let mut m = machine_with(cfg, vec![r.clone(), w.clone()]);
            match m.run(1_000_000) {
                RunResult::Completed { exec_cycles } => {
                    assert!(exec_cycles > 100, "{kind:?}: too fast ({exec_cycles})");
                }
                r => panic!("{kind:?}: {r:?}"),
            }
            // The read was classified local-dirty-remote at the home.
            let class = m.chips()[0].stats().read_class;
            assert_eq!(class.local_dirty_remote, 1, "{kind:?}");
        }
    }

    #[test]
    fn barrier_synchronizes_all_processors() {
        let a = |n: u16| node_addr(NodeId(n), 0x100);
        let mk = |n: u16| {
            vec![
                WorkItem::Busy(400 * (n as u64 + 1)), // staggered arrival
                WorkItem::Barrier,
                WorkItem::Read(a(n)),
                WorkItem::Busy(4),
            ]
        };
        let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
        let RunResult::Completed { exec_cycles } = m.run(1_000_000) else {
            panic!("stuck");
        };
        // The fastest processor waited for the slowest: sync stall > 0.
        assert!(m.procs()[0].stats().sync_stall_q > 0);
        assert_eq!(m.procs()[3].stats().sync_stall_q, 0);
        assert!(exec_cycles >= 400);
    }

    #[test]
    fn locks_serialize_critical_sections() {
        let mk = |_n: u16| {
            vec![
                WorkItem::Lock(7),
                WorkItem::Busy(400),
                WorkItem::Unlock(7),
                WorkItem::Busy(4),
            ]
        };
        let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
        let RunResult::Completed { exec_cycles } = m.run(1_000_000) else {
            panic!("stuck");
        };
        // Four 100-cycle critical sections must serialize.
        assert!(exec_cycles >= 400, "exec {exec_cycles}");
        let total_sync: u64 = m.procs().iter().map(|p| p.stats().sync_stall_q).sum();
        assert!(total_sync > 0);
    }

    #[test]
    fn sharing_and_invalidation_round_trip() {
        // All processors read a line homed on node 0, then P1 writes it.
        let a = node_addr(NodeId(0), 0xc000);
        let mk = |n: u16| {
            let mut v = vec![WorkItem::Read(a), WorkItem::Barrier];
            if n == 1 {
                v.push(WorkItem::Write(a));
            }
            v.push(WorkItem::Barrier);
            v.push(WorkItem::Busy(4));
            v
        };
        for cfg in [MachineConfig::flash(4), MachineConfig::ideal(4)] {
            let kind = cfg.controller;
            let mut m = machine_with(cfg, (0..4).map(mk).collect());
            match m.run(1_000_000) {
                RunResult::Completed { .. } => {}
                r => panic!("{kind:?}: {r:?}"),
            }
            let invals: u64 = m.procs().iter().map(|p| p.stats().invals_received).sum();
            assert!(
                invals >= 2,
                "{kind:?}: sharers must be invalidated, got {invals}"
            );
        }
    }

    #[test]
    fn dma_write_invalidates_cached_copies() {
        let a = node_addr(NodeId(0), 0x3000);
        let items = vec![
            WorkItem::Read(a),
            WorkItem::Busy(40_000),
            WorkItem::Read(a),
            WorkItem::Busy(4),
        ];
        let mut m = machine_with(
            MachineConfig::flash(2),
            vec![items, vec![WorkItem::Busy(1)]],
        );
        m.add_dma_write(Cycle::new(2_000), NodeId(0), a);
        let RunResult::Completed { .. } = m.run(1_000_000) else {
            panic!("stuck");
        };
        assert_eq!(m.procs()[0].stats().invals_received, 1);
        // Second read misses again after the DMA invalidation.
        assert_eq!(m.procs()[0].stats().read_misses, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = node_addr(NodeId(1), 0x9000);
        let mk = |n: u16| {
            vec![
                WorkItem::Read(node_addr(NodeId(n), 0x100)),
                WorkItem::Write(a),
                WorkItem::Barrier,
                WorkItem::Read(a),
                WorkItem::Busy(8),
            ]
        };
        let run_once = || {
            let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
            match m.run(1_000_000) {
                RunResult::Completed { exec_cycles } => exec_cycles,
                r => panic!("{r:?}"),
            }
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn ideal_never_slower_than_flash() {
        let a = node_addr(NodeId(1), 0x9000);
        let mk = |n: u16| {
            let mut v = Vec::new();
            for i in 0..50u64 {
                v.push(WorkItem::Read(node_addr(NodeId(n), i * 128)));
                v.push(WorkItem::Write(
                    a.offset(((n as u64 * 50 + i) % 64) * 2 * 128),
                ));
                v.push(WorkItem::Busy(16));
            }
            v.push(WorkItem::Barrier);
            v
        };
        let time = |cfg: MachineConfig| {
            let mut m = machine_with(cfg, (0..4).map(mk).collect());
            match m.run(10_000_000) {
                RunResult::Completed { exec_cycles } => exec_cycles,
                r => panic!("{r:?}"),
            }
        };
        let flash = time(MachineConfig::flash(4));
        let ideal = time(MachineConfig::ideal(4));
        assert!(
            ideal <= flash,
            "ideal ({ideal}) must not be slower than FLASH ({flash})"
        );
    }
}
