//! The machine: nodes, network, and the event loop (the FlashLite role).
//!
//! # Sharded conservative-window execution
//!
//! The machine partitions its nodes into `cfg.shards` contiguous shards,
//! each owning its nodes' processors, MAGIC chips, event queue, network
//! counters, and fault streams. Simulation advances in conservative time
//! windows: every window starts at the earliest pending event time `W`
//! across all shards and extends to `W + L`, where the lookahead `L` is
//! the minimum latency any cross-node message can experience (minimum
//! remote mesh transit plus the receiving NI's input stage). Within a
//! window each shard processes its own events independently — no event
//! it handles can affect another shard sooner than `L` cycles out, so
//! cross-shard messages always land in a later window.
//!
//! Determinism is the design's non-negotiable: results are byte-identical
//! for **any** shard count, including 1. Three mechanisms carry that:
//!
//! * **Canonical event keys.** Every event carries a `(cycle, sub)` key
//!   where `sub` encodes the *originating node* and a per-origin sequence
//!   number. Keys are independent of shard layout and globally unique, so
//!   any set of events sorts the same way no matter which queue held them.
//! * **Boundary-resolved shared state.** Everything nodes share — locks,
//!   barriers, the finish count, the checker, the observer — is owned by
//!   the coordinator and updated only at window boundaries, by replaying
//!   per-shard journals merged in canonical key order.
//! * **Staged cross-shard delivery.** A message bound for another shard
//!   is staged with its precomputed key and drained into the destination
//!   queue at the boundary (provably at or past the window's end, by the
//!   lookahead argument above).
//!
//! With one shard the same windowed loop runs without any worker threads;
//! with more, shards execute on `std::thread::scope` workers that
//! ping-pong shard contexts with the coordinator over channels. The
//! shard count is a host-performance knob (`FLASH_SHARDS` /
//! [`MachineConfig::with_shards`]), never a model knob.

use crate::config::MachineConfig;
use crate::hostprof::{HostProfAcc, HostProfile, HostSeg};
use crate::observe::{LatencyReport, ObserveReport, Observer, ReqKind, TrafficStats};
use flash_cpu::{
    CpuOut, Mailbox, MailboxHandle, MailboxStream, Processor, RefStream, RunOutcome, WorkItem,
};
use flash_engine::FastMap;
use flash_engine::{Addr, Cycle, EventQueue, NodeId, Segment};
use flash_fault::{
    FaultInjector, FaultStats, LinkVerdict, MsgRing, MshrSnap, NiDir, NodeWedge, PendingLine,
    TraceEntry, WedgeReport,
};
use flash_magic::{ControllerKind, Emission, MagicChip, ObsInvocation, ObsParts, ReadClass};
use flash_net::{Mesh, NetModel};
use flash_protocol::fields::aux;
use flash_protocol::{dir_addr, InMsg, JumpTable, Msg, MsgType, ProcMsg};
use flash_traffic::ArrivalSource;
use std::collections::{BTreeSet, VecDeque};
use std::sync::mpsc;
use std::time::Instant;

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Resume a processor's reference stream.
    ProcRun(u16),
    /// A message is ready at a node's inbox (inbound latency paid).
    /// `net` marks messages that crossed the mesh (they are subject to
    /// the receiver's inbound-NI fault hooks; bus-side and DMA messages
    /// are not).
    MagicIn { node: u16, wire: Wire, net: bool },
    /// MAGIC delivers a message to its local processor.
    ProcDeliver { node: u16, pm: ProcMsg, tries: u32 },
    /// Re-offer a message the fault layer held (scripted link outage).
    /// Processing one is *not* forward progress: a permanently held
    /// message loops here until the watchdog diagnoses the wedge.
    NetSend { msg: Msg },
    /// An open-loop reference arrives at `node` (the feed's pending
    /// arrival lands in the admission backlog; one such event is
    /// outstanding per fed node at a time).
    Arrival { node: u16 },
}

/// A message on the wire (or on a node's internal buses).
#[derive(Debug, Clone, Copy)]
struct Wire {
    mtype: MsgType,
    src: NodeId,
    addr: Addr,
    aux: u64,
    with_data: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Park {
    Scheduled,
    WaitReply,
    WaitSync,
    /// Open-loop node with an empty mailbox: parked until the next
    /// arrival admits work (or the feed closes). Distinguishable from
    /// `WaitReply` in wedge reports — an idle open-loop node is not a
    /// protocol wedge.
    WaitWork,
    Done,
}

#[derive(Debug, Default)]
struct LockState {
    held: bool,
    waiters: VecDeque<(u16, Cycle)>,
}

/// Canonical event identity: `(cycle, sub)` with `sub` from [`sub_key`].
/// Orders identically regardless of shard layout.
type EvKey = (u64, u64);

/// Bits of the per-origin sequence counter inside a sub-key (the origin
/// node occupies the bits above, so keys from different nodes never
/// collide and same-cycle events order by origin, then issue order).
const SUB_SEQ_BITS: u32 = 44;

/// Packs an event's originating node and per-origin sequence number into
/// the within-cycle ordering key.
fn sub_key(origin: u16, seq: u64) -> u64 {
    debug_assert!(seq < 1 << SUB_SEQ_BITS, "per-origin sequence overflow");
    ((origin as u64) << SUB_SEQ_BITS) | seq
}

/// First node and one-past-last node of shard `s` (contiguous partition;
/// the first `nodes % shards` shards take one extra node).
fn shard_bounds(nodes: u16, shards: usize, s: usize) -> (u16, u16) {
    let n = nodes as usize;
    let base = n / shards;
    let rem = n % shards;
    let lo = s * base + s.min(rem);
    let hi = lo + base + usize::from(s < rem);
    (lo as u16, hi as u16)
}

/// Which shard owns `node` under the contiguous partition.
fn shard_of(nodes: u16, shards: usize, node: u16) -> usize {
    let n = nodes as usize;
    let base = n / shards;
    let rem = n % shards;
    let node = node as usize;
    let cut = (base + 1) * rem;
    if node < cut {
        node / (base + 1)
    } else {
        rem + (node - cut) / base.max(1)
    }
}

/// `(shard, index within the shard's slices)` for `node`.
fn locate(nodes: u16, shards: usize, node: u16) -> (usize, usize) {
    let s = shard_of(nodes, shards, node);
    let (lo, _) = shard_bounds(nodes, shards, s);
    (s, (node - lo) as usize)
}

/// A synchronization request journaled by a shard for boundary
/// resolution, tagged with the requesting event's canonical key so the
/// coordinator applies them in a shard-count-invariant order.
#[derive(Debug, Clone, Copy)]
enum SyncOp {
    /// `node` arrived at the global barrier at its pipeline time `pt`.
    Barrier { node: u16, pt: Cycle },
    /// `node` wants lock `id` (parked `WaitSync` until granted).
    Lock { node: u16, id: u32, pt: Cycle },
    /// Lock `id` released at `pt` (the releaser already continued).
    Unlock { id: u32, pt: Cycle },
    /// A processor retired its stream.
    Finished,
}

/// One observer mutation journaled by a shard, replayed against the
/// master [`Observer`] at the boundary in canonical key order. Arrival
/// ops carry *candidate* requester keys instead of a resolved key: the
/// replay resolves them against the master's live pending set, exactly
/// as the serial machine resolved against its own — so attribution is
/// bit-identical for every shard count.
#[derive(Debug, Clone, Copy)]
enum ObsOp {
    /// A miss left a processor: start tracking (from `post_cpu_outs`).
    Begin {
        node: u16,
        line: u64,
        issue: Cycle,
        kind: ReqKind,
    },
    /// Inbox arrival: advance the resolved candidate's frontier.
    ArriveAdvance {
        cands: [Option<u16>; 2],
        line: u64,
        seg: Segment,
        now: Cycle,
    },
    /// Handler invocation trace (independent of any tracked request).
    TraceHandler { node: u16, inv: ObsInvocation },
    /// Post-handler bookkeeping for the same arrival: read class plus the
    /// per-candidate continuing emission's exact decomposition.
    ArriveApply {
        cands: [Option<u16>; 2],
        line: u64,
        class: Option<ReadClass>,
        parts: [Option<(Cycle, ObsParts, bool)>; 2],
    },
    /// A network hop charged to the resolved candidate.
    NetHop {
        cands: [u16; 2],
        line: u64,
        depart: Cycle,
        arrive: Cycle,
    },
    /// Frontier advance with a fixed key (delivery-side ops).
    Advance {
        key: (u16, u64),
        now: Cycle,
        seg: Segment,
    },
    /// The reply reached the processor: close the tracked request.
    Complete { key: (u16, u64), now: Cycle },
}

/// A cross-shard message staged for boundary delivery. The lookahead
/// guarantees `at` is at or past the window's end, so staging never
/// reorders against events the destination already processed.
#[derive(Debug, Clone, Copy)]
struct Staged {
    at: Cycle,
    sub: u64,
    node: u16,
    wire: Wire,
}

/// Checked-mode bookkeeping (allocated only when `cfg.check`).
#[derive(Debug, Default)]
struct CheckCtx {
    /// Every 128-byte line that ever saw protocol activity.
    touched: BTreeSet<u64>,
    /// Invariant violations detected so far (machine-level checks; the
    /// per-chip differential oracle keeps its own list).
    violations: Vec<flash_check::Violation>,
    /// Rogue-copy observations (`shared-under-dirty`, `copy-not-listed`)
    /// awaiting repair, keyed by (copy node, line address), with the
    /// cycle of first observation.
    ///
    /// The stale-transfer self-repair race (DESIGN.md, race rule 2) makes
    /// these states legal transiently: a deferred intervention can answer
    /// a forward the home has since abandoned, granting a rogue shared
    /// copy via a stale `NPut`; the home's `ni_swb` stale branch repairs
    /// it with fire-and-forget `NInval`s. Between the rogue copy
    /// installing and the repair `PInval` reaching the bus there is
    /// nothing local to exempt on — the header is neither `PENDING` nor
    /// is a `PInval` queued yet — so the observation is held here as
    /// *provisional*: discharged when a `PInval` for that (node, line)
    /// delivers, and promoted to a real violation if it survives to
    /// quiescence. (Whether the rogue shows up as `shared-under-dirty` or
    /// `copy-not-listed` depends only on what the header looks like when
    /// the checker happens to observe the window.)
    provisional_rogues: FastMap<(u16, u64), (Cycle, flash_check::Violation)>,
}

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum RunResult {
    /// Every processor finished its stream.
    Completed {
        /// Latest processor finish time = application execution time.
        exec_cycles: u64,
    },
    /// The cycle budget was exhausted first.
    BudgetExhausted,
    /// The event queue drained with processors still unfinished — a
    /// protocol or workload deadlock (e.g. unbalanced barriers).
    Deadlocked {
        /// Number of processors that never finished.
        stuck: usize,
    },
    /// The forward-progress watchdog fired: events kept flowing but no
    /// retirement, message delivery, or handler invocation advanced for a
    /// whole watchdog window — a livelock or a held link. The report
    /// says who is waiting on what.
    Wedged {
        /// Structured diagnosis (boxed: reports are large and rare).
        report: Box<WedgeReport>,
    },
}

/// Per-shard state that persists across windows and runs: the shard's
/// event queue, its slice of the network's traffic counters, its fault
/// streams, its recent-message ring, and its checker exemption maps.
struct ShardState {
    queue: EventQueue<Ev>,
    /// Per-shard traffic counters; the machine's master [`NetModel`] is
    /// rebuilt from these at teardown.
    net: NetModel,
    /// Fault-injection runtime (`None` when `cfg.faults` is disarmed).
    /// Draw streams are keyed per (fault class, entity), so schedules
    /// are shard-layout-invariant.
    injector: Option<FaultInjector>,
    /// Recent message observations with canonical keys; merged into the
    /// machine's [`MsgRing`] at teardown.
    ring: VecDeque<(EvKey, TraceEntry)>,
    /// In-flight `PInval` deliveries for this shard's nodes, keyed by
    /// (node, line address).
    ///
    /// The protocol acknowledges an invalidation as soon as the sharer's
    /// MAGIC processes `NInval` — the bus-side `PInval` rides a later
    /// `ProcDeliver` event, so the stale copy legitimately outlives the
    /// directory's PENDING window (the paper's relaxed-consistency
    /// ordering, §2). A copy with a queued `PInval` is logically dead and
    /// exempt from the coherence checks; one still queued at quiescence
    /// is a message-conservation violation.
    inflight_invals: FastMap<(u16, u64), u32>,
    /// In-flight `PIntervGet`/`PIntervGetX` deliveries, keyed the same
    /// way. A copy with a queued intervention is mid-handoff: the home
    /// may have already granted (exclusive) ownership to the requester
    /// while this bus transaction — possibly deferred for many retries —
    /// has yet to invalidate or downgrade the old owner's copy. Such a
    /// copy is exempt from the coherence checks until the intervention
    /// executes; one still queued at quiescence is a conservation
    /// violation.
    inflight_intervs: FastMap<(u16, u64), u32>,
    /// Latest event time this shard has processed.
    now: Cycle,
    /// Last cycle this shard saw forward progress.
    last_progress: Cycle,
}

/// One node's open-loop feed: the arrival source, the admission mailbox
/// its processor drains, and the backlog of references that have arrived
/// but not yet been admitted.
///
/// The mailbox mutex is uncontended by construction — arrivals are
/// admitted and drained on the node's owning shard; the lock exists only
/// so the handle can cross the worker-thread boundary with its shard.
struct OpenFeed {
    source: Box<dyn ArrivalSource>,
    mailbox: MailboxHandle,
    /// Arrived-but-unadmitted references, oldest first, each with its
    /// arrival cycle (the admission-wait clock starts here).
    backlog: VecDeque<(Cycle, WorkItem)>,
    /// The next arrival, already pulled from the source and scheduled as
    /// an [`Ev::Arrival`] event at its cycle.
    pending: Option<(Cycle, WorkItem)>,
    /// The source returned `None`: no further arrivals ever. Once the
    /// backlog and mailbox drain, the mailbox closes and the processor
    /// retires.
    exhausted: bool,
    stats: TrafficStats,
}

/// Open-loop sources feed plain references; synchronization items have
/// no open-loop meaning (nobody to rendezvous with) and `Done` is
/// expressed by source exhaustion, not an item.
fn assert_open_item(item: &WorkItem) {
    assert!(
        matches!(
            item,
            WorkItem::Busy(_) | WorkItem::Read(_) | WorkItem::Write(_)
        ),
        "open-loop source emitted {item:?}: only Busy/Read/Write arrivals are admissible"
    );
}

/// A full machine instance: processors, MAGIC chips, memory, network.
pub struct Machine {
    cfg: MachineConfig,
    procs: Vec<Processor>,
    chips: Vec<MagicChip>,
    /// Merged lifetime traffic totals (rebuilt from shard models at every
    /// teardown so repeated runs never double-count).
    net: NetModel,
    shards: Vec<ShardState>,
    /// Per-origin event sequence counters (canonical sub-key allocation).
    origin_seq: Vec<u64>,
    now: Cycle,
    parked: Vec<Park>,
    /// Per-node open-loop feeds (`None` for closed-loop nodes — the
    /// common case; a machine with no feeds takes no open-loop branch
    /// anywhere, so traffic support is timing-invisible when off).
    feeds: Vec<Option<OpenFeed>>,
    barrier_waiters: Vec<(u16, Cycle)>,
    locks: FastMap<u32, LockState>,
    done: usize,
    finish: Vec<Cycle>,
    interv_deferrals: u64,
    check: Option<CheckCtx>,
    /// Ring of recent message observations (wedge diagnostics; the
    /// in-memory counterpart of `FLASH_TRACE_ADDR`). Rebuilt from the
    /// per-shard rings at teardown.
    ring: MsgRing,
    /// Last cycle a retirement, message delivery, or handler invocation
    /// advanced (the forward-progress watchdog's reference point).
    last_progress: Cycle,
    /// Cycle-attribution observer (`None` when `cfg.observe` is off).
    /// Owned by the coordinator; shards journal mutations and the
    /// boundary replays them in canonical order.
    observe: Option<Box<Observer>>,
    /// Host-time profile (`None` unless `cfg.host_profile` or
    /// `FLASH_HOSTPROF_OUT` arms it). A pure observer of the host clock —
    /// it never feeds back into simulated state.
    hostprof: Option<Box<HostProfile>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nodes", &self.cfg.nodes)
            .field("now", &self.now)
            .field("done", &self.done)
            .finish()
    }
}

/// Deferrals allowed for one intervention while the target's in-flight
/// grant lands (16 cycles apart). Beyond this the transaction is assumed
/// to be a request/forward cycle: the intervention reports a miss (the
/// home abandons the pending transaction) and the target's eventual grant
/// is poisoned so no stale copy is cached.
const MAX_INTERV_DEFERRALS: u32 = 64;

/// Capacity of the wedge-diagnostics message ring. Deep enough to cover
/// the full protocol exchange on the handful of lines a wedge involves;
/// each entry is a few words, so the ring is cheap to keep always-on.
const RING_CAPACITY: usize = 64;

/// How many ring entries a wedge report keeps when no suspect line
/// stands out.
const RECENT_TAIL: usize = 8;

/// Line address to trace (set `FLASH_TRACE_ADDR=0x...` to dump every
/// message touching that 128-byte line to stderr).
fn trace_addr() -> Option<u64> {
    static TRACE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| {
        std::env::var("FLASH_TRACE_ADDR")
            .ok()
            .and_then(|t| u64::from_str_radix(t.trim_start_matches("0x"), 16).ok())
            .map(|a| a & !127)
    })
}

/// File to write the Chrome-trace event export to when a run with
/// observation on completes (set `FLASH_TRACE_OUT=trace.json`; view in
/// Perfetto or `chrome://tracing`). Mirrors the `FLASH_TRACE_ADDR`
/// plumbing: read once per process.
fn trace_out() -> Option<&'static str> {
    static OUT: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    OUT.get_or_init(|| {
        std::env::var("FLASH_TRACE_OUT")
            .ok()
            .filter(|s| !s.is_empty())
    })
    .as_deref()
}

/// Path to export the `flash-hostprof-v1` host-time profile to on
/// completion (set `FLASH_HOSTPROF_OUT=prof.json`; setting it also arms
/// the profiler). Read once per process like the other export knobs.
fn hostprof_out() -> Option<&'static str> {
    static OUT: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    OUT.get_or_init(|| {
        std::env::var("FLASH_HOSTPROF_OUT")
            .ok()
            .filter(|s| !s.is_empty())
    })
    .as_deref()
}

/// Path to export the `flash-latency-v1` per-class latency percentile
/// report to on completion (set `FLASH_LATENCY_OUT=latency.json`;
/// requires observed mode). Read once per process like the other export
/// knobs.
fn latency_out() -> Option<&'static str> {
    static OUT: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    OUT.get_or_init(|| {
        std::env::var("FLASH_LATENCY_OUT")
            .ok()
            .filter(|s| !s.is_empty())
    })
    .as_deref()
}

/// The requester candidates (and charged segment) a message arriving at
/// `node`'s inbox may belong to — the pure part of the serial machine's
/// key resolution; the pending-set lookup happens at boundary replay.
///
/// Requests and forwards carry the requester in their aux field; replies
/// from third-party owners carry the responder, so replies also try the
/// receiving node (replies terminate at the requester's own chip).
/// Messages that never continue a request path (invals, acks,
/// writebacks, sharing writebacks) resolve to `None`. The frontier gap
/// is charged to PI for bus-side messages, mesh for network-side (which
/// folds the receiving NI input stage into mesh transit).
fn observe_cands(node: u16, wire: &Wire) -> Option<([Option<u16>; 2], Segment)> {
    match wire.mtype {
        MsgType::PiGet | MsgType::PiGetX | MsgType::PiUpgrade => {
            Some(([Some(wire.src.0), None], Segment::Pi))
        }
        MsgType::PiIntervReply | MsgType::PiIntervMiss => {
            Some(([Some(aux::requester(wire.aux).0), None], Segment::Pi))
        }
        MsgType::NGet
        | MsgType::NGetX
        | MsgType::NUpgrade
        | MsgType::NFwdGet
        | MsgType::NFwdGetX => Some(([Some(aux::requester(wire.aux).0), None], Segment::Mesh)),
        MsgType::NPut
        | MsgType::NPutX
        | MsgType::NUpgAck
        | MsgType::NNack
        | MsgType::NIntervMiss => Some((
            [Some(aux::requester(wire.aux).0), Some(node)],
            Segment::Mesh,
        )),
        _ => None,
    }
}

/// Whether a chip emission continues the tracked request `key`
/// (first match wins when applying per-emission attributions).
fn emission_continues(em: &Emission, key: (u16, u64), node: u16) -> bool {
    match em {
        Emission::Proc { msg: pm, .. } => {
            pm.addr.line().raw() == key.1
                && match pm.mtype {
                    MsgType::PPut | MsgType::PPutX | MsgType::PUpgAck | MsgType::PNackRetry => {
                        key.0 == node
                    }
                    MsgType::PIntervGet | MsgType::PIntervGetX => aux::requester(pm.aux).0 == key.0,
                    _ => false,
                }
        }
        Emission::Net { msg: m, .. } => {
            m.addr.line().raw() == key.1
                && matches!(
                    m.mtype,
                    MsgType::NGet
                        | MsgType::NGetX
                        | MsgType::NUpgrade
                        | MsgType::NFwdGet
                        | MsgType::NFwdGetX
                        | MsgType::NPut
                        | MsgType::NPutX
                        | MsgType::NUpgAck
                        | MsgType::NNack
                        | MsgType::NIntervMiss
                )
                && (aux::requester(m.aux).0 == key.0 || m.dst.0 == key.0)
        }
    }
}

/// The requester candidates a network message continues (the
/// network-side subset of [`emission_continues`], used to charge NI-wait
/// and mesh-transit cycles in `post_net`).
fn net_msg_cands(msg: &Msg) -> Option<([u16; 2], u64)> {
    if !matches!(
        msg.mtype,
        MsgType::NGet
            | MsgType::NGetX
            | MsgType::NUpgrade
            | MsgType::NFwdGet
            | MsgType::NFwdGetX
            | MsgType::NPut
            | MsgType::NPutX
            | MsgType::NUpgAck
            | MsgType::NNack
            | MsgType::NIntervMiss
    ) {
        return None;
    }
    Some((
        [aux::requester(msg.aux).0, msg.dst.0],
        msg.addr.line().raw(),
    ))
}

/// Checks every invariant visible for one line right now: SWMR across
/// all processor caches, directory structural audit, and cache/
/// directory agreement at the line's home. Shared by the boundary
/// checker (reading through shard contexts) and the quiescence audit
/// (reading the machine directly) via the accessor closures.
fn check_line_at<'a>(
    cfg: &MachineConfig,
    ctx: &mut CheckCtx,
    line: Addr,
    now: Cycle,
    proc_at: &dyn Fn(u16) -> &'a Processor,
    chip_at: &dyn Fn(u16) -> &'a MagicChip,
    doomed: &dyn Fn((u16, u64)) -> bool,
) {
    let mut copies = Vec::new();
    for i in 0..cfg.nodes {
        let p = proc_at(i);
        // A copy with a queued `PInval` is logically dead (the sharer's
        // MAGIC already acknowledged the invalidation), and one with a
        // queued `PIntervGet`/`PIntervGetX` is mid-handoff (the requester
        // may install before the bus transaction lands). Both are exempt
        // from SWMR/agreement.
        let key = (i, line.raw());
        if let Some(state) = p.cache().state_of(line) {
            if !doomed(key) {
                copies.push(flash_check::CachedCopy {
                    node: i,
                    exclusive: state == flash_cpu::LineState::Exclusive,
                });
            }
        }
        let in_use = p.outstanding_misses();
        if in_use > cfg.mshrs {
            ctx.violations.push(flash_check::Violation {
                kind: "mshr-over",
                node: i,
                line: line.raw(),
                detail: format!("{in_use} MSHRs in use, limit {}", cfg.mshrs),
            });
        }
    }
    let home = cfg.placement.home_of(line, cfg.nodes);
    let da = dir_addr(line);
    let mem = chip_at(home.0).proto_mem();
    ctx.violations
        .extend(flash_check::audit_directory(mem, da, home.0, false));
    if let Ok(sharers) = flash_check::walk_sharers(mem, da) {
        let h = flash_protocol::DirHeader(mem.load64(da));
        for v in flash_check::check_line_coherence(h, &sharers, home.0, &copies, line.raw()) {
            // Per-copy cache/directory disagreements are legal for a
            // bounded window (stale-transfer self-repair) and are
            // attributed to the copy holder; held provisionally until
            // the copy is invalidated. See `CheckCtx::provisional_rogues`.
            // Everything else (aggregate swmr, structural audits) reports
            // immediately.
            let provisional = matches!(
                v.kind,
                "shared-under-dirty"
                    | "copy-not-listed"
                    | "excl-wrong-owner"
                    | "excl-not-dirty"
                    | "excl-home-not-local"
                    | "home-copy-not-local"
            );
            if provisional {
                ctx.provisional_rogues
                    .entry((v.node, v.line))
                    .or_insert((now, v));
            } else {
                ctx.violations.push(v);
            }
        }
    }
}

/// One shard's working view for a window: its slices of the machine's
/// node-indexed state, its persistent [`ShardState`], and the journals
/// the boundary will replay. Moves between the coordinator and a worker
/// thread when the machine runs more than one shard.
struct ShardCtx<'a> {
    cfg: &'a MachineConfig,
    shard: usize,
    /// First node this shard owns (its slices start here).
    lo: u16,
    nodes: u16,
    nshards: usize,
    check: bool,
    observe: bool,
    procs: &'a mut [Processor],
    chips: &'a mut [MagicChip],
    parked: &'a mut [Park],
    feeds: &'a mut [Option<OpenFeed>],
    finish: &'a mut [Cycle],
    origin_seq: &'a mut [u64],
    st: ShardState,
    /// Deferral count accumulated this run (merged at teardown).
    interv_deferrals: u64,
    // Per-window journals, drained at each boundary.
    sync_ops: Vec<(EvKey, SyncOp)>,
    obs_ops: Vec<(EvKey, ObsOp)>,
    staged: Vec<Staged>,
    discharges: Vec<(u16, u64)>,
    touched: BTreeSet<u64>,
    // Current window parameters and event cursor.
    end: Cycle,
    budget: u64,
    cur: EvKey,
    cur_t: Cycle,
    // Steady-state scratch: reused across events so the hot loop makes
    // no heap allocations (tests/alloc_budget.rs pins this).
    cpu_outs: Vec<(Cycle, CpuOut)>,
    emit_buf: Vec<Emission>,
    /// Host-time profiler accumulator (None unless armed; boxed so the
    /// unarmed hot path carries only a null check).
    prof: Option<Box<HostProfAcc>>,
}

impl<'a> ShardCtx<'a> {
    fn li(&self, node: u16) -> usize {
        debug_assert!(node >= self.lo && ((node - self.lo) as usize) < self.procs.len());
        (node - self.lo) as usize
    }

    /// Allocates the next canonical sub-key for an event originated by
    /// `origin` (which must be one of this shard's nodes).
    fn next_sub(&mut self, origin: u16) -> u64 {
        let li = self.li(origin);
        let seq = self.origin_seq[li];
        self.origin_seq[li] += 1;
        sub_key(origin, seq)
    }

    fn push_local(&mut self, origin: u16, at: Cycle, ev: Ev) {
        let sub = self.next_sub(origin);
        self.st.queue.push_sub(at, sub, ev);
    }

    fn sync(&mut self, op: SyncOp) {
        self.sync_ops.push((self.cur, op));
    }

    fn obs(&mut self, op: ObsOp) {
        self.obs_ops.push((self.cur, op));
    }

    fn mark_progress(&mut self) {
        if self.cur_t > self.st.last_progress {
            self.st.last_progress = self.cur_t;
        }
    }

    /// Advances the event cursor to an inlined continuation, exactly as
    /// the pop path would have.
    fn set_cursor(&mut self, at: Cycle, sub: u64) {
        self.cur = (at.raw(), sub);
        self.cur_t = at;
        if at > self.st.now {
            self.st.now = at;
        }
    }

    /// Processes this shard's events inside the current window, in
    /// canonical `(cycle, sub)` order. Processor run events whose
    /// reschedule would be the very next pop are executed inline
    /// (continuation loop) instead of round-tripping through the queue;
    /// [`ShardCtx::schedule_or_inline`] proves the order is unchanged.
    fn run_window(&mut self) {
        // Profiled path: one chained stamp closes the queue lap and opens
        // the event's outer bracket, and the next closes the bracket and
        // opens the following queue lap — no unattributed gaps between
        // events, and two `Instant::now` calls per event.
        let mut stamp = self.prof.as_mut().map(|p| {
            p.reset_inner();
            Instant::now()
        });
        let (end, budget) = (self.end, self.budget);
        while let Some((t, sub, ev)) = self
            .st
            .queue
            .pop_keyed_if(|t, _| t < end && t.raw() <= budget)
        {
            if let Some(s) = stamp {
                let p = self.prof.as_mut().expect("armed");
                stamp = Some(p.lap(HostSeg::Queue, s));
                p.events += 1;
                p.reset_inner();
            }
            self.cur = (t.raw(), sub);
            self.cur_t = t;
            if t > self.st.now {
                self.st.now = t;
            }
            let ev_line = match &ev {
                Ev::ProcRun(_) | Ev::Arrival { .. } => None,
                Ev::MagicIn { wire, .. } => Some(wire.addr.line().raw()),
                Ev::ProcDeliver { pm, .. } => Some(pm.addr.line().raw()),
                Ev::NetSend { msg } => Some(msg.addr.line().raw()),
            };
            let seg = match ev {
                Ev::ProcRun(n) => {
                    let mut cont = self.ev_proc_run(n);
                    while let Some((at, sub)) = cont {
                        if let Some(p) = self.prof.as_mut() {
                            p.events += 1;
                        }
                        self.set_cursor(at, sub);
                        cont = self.ev_proc_run(n);
                    }
                    HostSeg::Proc
                }
                Ev::MagicIn { node, wire, net } => {
                    self.ev_magic_in(node, wire, net);
                    HostSeg::Magic
                }
                Ev::ProcDeliver { node, pm, tries } => {
                    let mut cont = self.ev_proc_deliver(node, pm, tries);
                    while let Some((at, sub)) = cont {
                        if let Some(p) = self.prof.as_mut() {
                            p.events += 1;
                        }
                        self.set_cursor(at, sub);
                        cont = self.ev_proc_run(node);
                    }
                    HostSeg::Proc
                }
                Ev::NetSend { msg } => {
                    self.post_net(t, msg);
                    HostSeg::Net
                }
                Ev::Arrival { node } => {
                    let mut cont = self.ev_arrival(node);
                    while let Some((at, sub)) = cont {
                        if let Some(p) = self.prof.as_mut() {
                            p.events += 1;
                        }
                        self.set_cursor(at, sub);
                        cont = self.ev_proc_run(node);
                    }
                    HostSeg::Proc
                }
            };
            if let Some(s) = stamp {
                stamp = Some(self.prof.as_mut().expect("armed").lap_outer(seg, s));
            }
            if self.check {
                if let Some(line) = ev_line {
                    self.touched.insert(line);
                }
            }
        }
    }

    /// Runs processor `n`'s reference stream. Returns the continuation
    /// key when the processor's next run event was elided from the queue
    /// (the caller executes it inline — see [`ShardCtx::run_window`]).
    fn ev_proc_run(&mut self, n: u16) -> Option<(Cycle, u64)> {
        let i = self.li(n);
        if self.parked[i] != Park::Scheduled {
            return None; // stale wakeup (not forward progress)
        }
        self.mark_progress();
        let now = self.cur_t;
        let mut outs = std::mem::take(&mut self.cpu_outs);
        outs.clear();
        let outcome = self.procs[i].run(now, &mut outs);
        self.post_cpu_outs(n, &outs);
        self.cpu_outs = outs;
        match outcome {
            RunOutcome::BlockedRead | RunOutcome::BlockedWrite => {
                self.parked[i] = Park::WaitReply;
                None
            }
            RunOutcome::Barrier => {
                // Processors run ahead of the event clock; synchronization
                // uses each processor's own arrival time.
                let pt = self.procs[i].now().max(now);
                self.parked[i] = Park::WaitSync;
                self.sync(SyncOp::Barrier { node: n, pt });
                None
            }
            RunOutcome::Lock(id) => {
                let pt = self.procs[i].now().max(now);
                self.parked[i] = Park::WaitSync;
                self.sync(SyncOp::Lock { node: n, id, pt });
                None
            }
            RunOutcome::Unlock(id) => {
                let pt = self.procs[i].now().max(now);
                self.sync(SyncOp::Unlock { id, pt });
                self.schedule_or_inline(n, pt)
            }
            RunOutcome::Quantum => {
                let at = self.procs[i].now();
                self.schedule_or_inline(n, at.max(now))
            }
            RunOutcome::Finished => {
                if self.parked[i] != Park::Done {
                    self.parked[i] = Park::Done;
                    self.finish[i] = self.procs[i].finish_time();
                    self.sync(SyncOp::Finished);
                }
                None
            }
            RunOutcome::Starved => {
                // Only an open-loop node starves: its mailbox ran dry.
                // Admit whatever has arrived meanwhile, retire the
                // stream if the feed is spent, or park until the next
                // arrival. Admission is the progress point — a wedged
                // protocol keeps arrivals piling into the backlog, which
                // the watchdog then reports as such.
                let (has_backlog, exhausted) = {
                    let feed = self.feeds[i]
                        .as_ref()
                        .expect("closed-loop streams never starve");
                    (!feed.backlog.is_empty(), feed.exhausted)
                };
                if has_backlog {
                    self.admit(i);
                    self.mark_progress();
                    self.schedule_or_inline(n, now)
                } else if exhausted {
                    let feed = self.feeds[i].as_ref().expect("feed present");
                    feed.mailbox.lock().expect("mailbox lock").close();
                    // Rerun: the closed mailbox now yields `Done` and the
                    // processor retires through the ordinary path.
                    self.schedule_or_inline(n, now)
                } else {
                    self.parked[i] = Park::WaitWork;
                    None
                }
            }
        }
    }

    /// An open-loop reference arrives at `node`: the feed's pending item
    /// joins the admission backlog, the source's next arrival is
    /// scheduled, and a processor parked for work is fed and woken.
    /// Returns an inline continuation exactly like [`ShardCtx::ev_proc_run`].
    fn ev_arrival(&mut self, node: u16) -> Option<(Cycle, u64)> {
        let now = self.cur_t;
        let i = self.li(node);
        let next = {
            let feed = self.feeds[i].as_mut().expect("arrival without a feed");
            let (at, item) = feed
                .pending
                .take()
                .expect("arrival event without a pending arrival");
            debug_assert_eq!(at, now, "arrival event fires at its own cycle");
            assert_open_item(&item);
            feed.stats.arrivals += 1;
            feed.backlog.push_back((now, item));
            feed.stats.peak_backlog = feed.stats.peak_backlog.max(feed.backlog.len() as u64);
            match feed.source.next_arrival() {
                Some((at2, item2)) => {
                    // Defensive clamp: the source contract says monotone,
                    // but the event queue must never see the past.
                    let at2 = at2.max(now);
                    feed.pending = Some((at2, item2));
                    Some(at2)
                }
                None => {
                    feed.exhausted = true;
                    None
                }
            }
        };
        if let Some(at2) = next {
            self.push_local(node, at2, Ev::Arrival { node });
        }
        if self.parked[i] == Park::WaitWork {
            self.admit(i);
            self.mark_progress();
            self.schedule_or_inline(node, now)
        } else {
            None
        }
    }

    /// Moves node-index `i`'s entire backlog into its admission mailbox
    /// at the current event time, recording each item's admission wait
    /// (admit cycle − arrival cycle): the queueing-delay half of the
    /// open-loop latency story.
    fn admit(&mut self, i: usize) {
        let now = self.cur_t;
        let feed = self.feeds[i].as_mut().expect("admit without a feed");
        let mut mb = feed.mailbox.lock().expect("mailbox lock");
        while let Some((at, item)) = feed.backlog.pop_front() {
            let wait = now.raw().saturating_sub(at.raw());
            feed.stats.admitted += 1;
            feed.stats.wait_sum += wait;
            feed.stats.wait_max = feed.stats.wait_max.max(wait);
            mb.push(item);
        }
    }

    /// Schedules `ProcRun(n)` at `at` — or, when that event would be the
    /// very next pop anyway, elides the queue round-trip and returns the
    /// continuation key for inline execution.
    ///
    /// Identity proof: the sub-key is allocated unconditionally, so the
    /// canonical `(cycle, sub)` stream every downstream consumer sees
    /// (journals, traces, staged deliveries) is byte-identical to the
    /// always-queue path. Elision requires `(at, sub)` to order before
    /// the current queue head and to fall inside the window and cycle
    /// budget: in the queued execution the loop would pop exactly this
    /// event next (nothing can enqueue an earlier key in between —
    /// events only push at or after their own time, and the head already
    /// orders after us), so executing it inline preserves the canonical
    /// order and leaves the queue at the window boundary in exactly the
    /// state the queued execution would.
    fn schedule_or_inline(&mut self, n: u16, at: Cycle) -> Option<(Cycle, u64)> {
        let sub = self.next_sub(n);
        self.parked[self.li(n)] = Park::Scheduled;
        if self.cfg.inline_runs
            && at < self.end
            && at.raw() <= self.budget
            && self.st.queue.peek_key().is_none_or(|k| (at, sub) < k)
        {
            Some((at, sub))
        } else {
            self.st.queue.push_sub(at, sub, Ev::ProcRun(n));
            None
        }
    }

    fn wake_if_waiting(&mut self, n: u16, at: Cycle) -> Option<(Cycle, u64)> {
        if self.parked[self.li(n)] == Park::WaitReply {
            self.schedule_or_inline(n, at)
        } else {
            None
        }
    }

    /// Converts processor requests into PI messages at the MAGIC inbox.
    fn post_cpu_outs(&mut self, n: u16, outs: &[(Cycle, CpuOut)]) {
        let lat = self.cfg.lat;
        for &(t, o) in outs {
            let (mtype, addr, extra) = match o {
                CpuOut::Get(a) => (MsgType::PiGet, a, lat.miss_to_bus),
                CpuOut::GetX(a) => (MsgType::PiGetX, a, lat.miss_to_bus),
                CpuOut::Upgrade(a) => (MsgType::PiUpgrade, a, lat.miss_to_bus),
                CpuOut::Writeback(a) => (MsgType::PiWriteback, a, 0),
                CpuOut::Hint(a) => (MsgType::PiRplHint, a, 0),
            };
            // Observed mode: a miss leaving the processor starts a
            // tracked request at its issue time.
            if self.observe {
                let kind = match mtype {
                    MsgType::PiGet => Some(ReqKind::Read),
                    MsgType::PiGetX => Some(ReqKind::Write),
                    MsgType::PiUpgrade => Some(ReqKind::Upgrade),
                    _ => None,
                };
                if let Some(kind) = kind {
                    self.obs(ObsOp::Begin {
                        node: n,
                        line: addr.line().raw(),
                        issue: t,
                        kind,
                    });
                }
            }
            self.push_local(
                n,
                t + extra + lat.bus + lat.pi_in,
                Ev::MagicIn {
                    node: n,
                    wire: Wire {
                        mtype,
                        src: NodeId(n),
                        addr,
                        aux: 0,
                        with_data: mtype.carries_data(),
                    },
                    net: false,
                },
            );
        }
    }

    fn ev_magic_in(&mut self, node: u16, wire: Wire, net: bool) {
        let now = self.cur_t;
        let i = self.li(node);
        // Receiver-side inbound-NI freeze: a frozen input queue re-offers
        // the message — identity (canonical key) preserved — at the thaw
        // time. Keyed to the *receiving* node so the draw stream is
        // shard-layout-invariant.
        if net {
            if let Some(inj) = self.st.injector.as_mut() {
                if let Some(resume) = inj.ni_freeze(now, node, NiDir::In) {
                    self.st
                        .queue
                        .push_sub(resume, self.cur.1, Ev::MagicIn { node, wire, net });
                    return;
                }
            }
        }
        let line_raw = wire.addr.line().raw();
        let home = self.cfg.placement.home_of(wire.addr, self.cfg.nodes);
        if trace_addr() == Some(line_raw) {
            // The home's header is only visible when this shard owns it.
            let hdr = if shard_of(self.nodes, self.nshards, home.0) == self.shard {
                format!(
                    "{:#x}",
                    self.chips[self.li(home.0)]
                        .peek_header(flash_protocol::dir_addr(wire.addr))
                        .0
                )
            } else {
                "remote-shard".to_string()
            };
            eprintln!(
                "[{}] magic_in node{} {:?} src={} aux={:#x} hdr={}",
                now, node, wire.mtype, wire.src, wire.aux, hdr
            );
        }
        self.mark_progress();
        self.st.ring.push_back((
            self.cur,
            TraceEntry {
                at: now.raw(),
                node,
                kind: wire.mtype.name(),
                src: wire.src.0,
                line: line_raw,
                aux: wire.aux,
            },
        ));
        if self.st.ring.len() > RING_CAPACITY {
            self.st.ring.pop_front();
        }
        let msg = InMsg {
            mtype: wire.mtype,
            src: wire.src,
            addr: wire.addr,
            aux: wire.aux,
            spec: false,
            self_node: NodeId(node),
            home,
            diraddr: dir_addr(wire.addr),
            with_data: wire.with_data,
        };
        // Fault hooks (taken only when an injector is armed): a PP
        // slowdown burst holds the protocol processor busy past `now`; a
        // handler running inside a DRAM refresh window finds its memory
        // controller blocked to the window's end.
        if let Some(inj) = self.st.injector.as_mut() {
            let burst = inj.pp_burst(now, node);
            if burst > 0 {
                self.chips[i].stall_pp(now + burst);
            }
            if let Some(until) = inj.dram_block(now) {
                self.chips[i].block_memory(until);
            }
        }
        // Observed mode: journal the arrival; the boundary replay
        // resolves the candidate keys against the master pending set and
        // advances the tracked request's frontier to the inbox arrival.
        let arrival = self.observe.then(|| observe_cands(node, &wire)).flatten();
        if let Some((cands, seg)) = arrival {
            self.obs(ObsOp::ArriveAdvance {
                cands,
                line: line_raw,
                seg,
                now,
            });
        }
        // Read-miss classification at the home (paper Tables 4.1/4.2).
        let chip = &mut self.chips[i];
        let class = match wire.mtype {
            MsgType::PiGet if home == NodeId(node) => chip.classify_read(&msg, NodeId(node)),
            MsgType::NGet => chip.classify_read(&msg, aux::requester(wire.aux)),
            _ => None,
        };
        let mut emissions = std::mem::take(&mut self.emit_buf);
        let tp = self.prof.is_some().then(Instant::now);
        chip.process_into(msg, now, &mut emissions);
        if let Some(tp) = tp {
            self.prof
                .as_mut()
                .expect("armed")
                .add_inner(HostSeg::Protocol, tp);
        }
        // Observed mode: record the handler invocation, then journal the
        // read class and the per-candidate continuing emission's exact
        // decomposition (the replay picks the resolved candidate's).
        let to = (self.prof.is_some() && self.observe).then(Instant::now);
        if self.observe {
            if let Some(inv) = self.chips[i].obs_invocation().copied() {
                self.obs(ObsOp::TraceHandler { node, inv });
            }
            if let Some((cands, _)) = arrival {
                let mut parts: [Option<(Cycle, ObsParts, bool)>; 2] = [None, None];
                for (ci, cand) in cands.iter().enumerate() {
                    if let Some(c) = cand {
                        if let Some(ei) = emissions
                            .iter()
                            .position(|em| emission_continues(em, (*c, line_raw), node))
                        {
                            parts[ci] = Some((
                                emissions[ei].at(),
                                self.chips[i].obs_parts()[ei],
                                matches!(emissions[ei], Emission::Net { .. }),
                            ));
                        }
                    }
                }
                self.obs(ObsOp::ArriveApply {
                    cands,
                    line: line_raw,
                    class,
                    parts,
                });
            }
        }
        if let Some(to) = to {
            self.prof
                .as_mut()
                .expect("armed")
                .add_inner(HostSeg::ObsCheck, to);
        }
        for em in emissions.drain(..) {
            match em {
                Emission::Net { at, msg } => self.post_net(at, msg),
                Emission::Proc { at, msg } => {
                    if self.check {
                        let key = (node, msg.addr.line().raw());
                        match msg.mtype {
                            // The copy is logically dead from the moment
                            // the invalidation is queued on the bus.
                            MsgType::PInval => {
                                *self.st.inflight_invals.entry(key).or_insert(0) += 1;
                            }
                            // The copy is mid-handoff: the new owner may
                            // install its (exclusive) copy before this bus
                            // transaction invalidates or downgrades ours.
                            MsgType::PIntervGet | MsgType::PIntervGetX => {
                                *self.st.inflight_intervs.entry(key).or_insert(0) += 1;
                            }
                            _ => {}
                        }
                    }
                    self.push_local(
                        node,
                        at,
                        Ev::ProcDeliver {
                            node,
                            pm: msg,
                            tries: 0,
                        },
                    );
                }
            }
        }
        self.emit_buf = emissions;
    }

    /// Routes an outbound network message (fault hooks, mesh transit,
    /// staging for cross-shard destinations). The bracket wrapper
    /// attributes the whole path to the net segment even when reached
    /// from inside a MAGIC event.
    fn post_net(&mut self, at: Cycle, msg: Msg) {
        let tn = self.prof.is_some().then(Instant::now);
        self.post_net_inner(at, msg);
        if let Some(tn) = tn {
            self.prof
                .as_mut()
                .expect("armed")
                .add_inner(HostSeg::Net, tn);
        }
    }

    fn post_net_inner(&mut self, at: Cycle, msg: Msg) {
        debug_assert_eq!(
            shard_of(self.nodes, self.nshards, msg.src.0),
            self.shard,
            "network sends originate on the sender's shard"
        );
        if trace_addr() == Some(msg.addr.line().raw()) {
            eprintln!(
                "[{}] post_net at={} {:?} {}->{} aux={:#x}",
                self.cur_t, at, msg.mtype, msg.src, msg.dst, msg.aux
            );
        }
        // Fault hooks on the outbound path: an output-queue freeze at the
        // source NI delays entry to the mesh; then the link verdict may
        // delay further (transient stall, hop spike) or hold the message
        // entirely (scripted outage — re-offered later, not progress).
        let mut at = at;
        if let Some(inj) = self.st.injector.as_mut() {
            if let Some(resume) = inj.ni_freeze(at, msg.src.0, NiDir::Out) {
                at = resume;
            }
            match inj.link_verdict(at, msg.src.0, msg.dst.0) {
                LinkVerdict::Clear => {}
                LinkVerdict::Delay(d) => at += d,
                LinkVerdict::Hold { resume } => {
                    self.push_local(msg.src.0, resume, Ev::NetSend { msg });
                    return;
                }
            }
        }
        let arrival = self.st.net.send(at, msg.src, msg.dst);
        // Observed mode: source-side holds (fault layer) count as
        // NI-wait, the hop itself as mesh transit.
        if self.observe {
            if let Some((cands, line)) = net_msg_cands(&msg) {
                self.obs(ObsOp::NetHop {
                    cands,
                    line,
                    depart: at,
                    arrive: arrival,
                });
            }
        }
        let deliver = arrival + self.cfg.lat.ni_in;
        let wire = Wire {
            mtype: msg.mtype,
            src: msg.src,
            addr: msg.addr,
            aux: msg.aux,
            with_data: msg.with_data,
        };
        let dst = msg.dst.0;
        let sub = self.next_sub(msg.src.0);
        if shard_of(self.nodes, self.nshards, dst) == self.shard {
            self.st.queue.push_sub(
                deliver,
                sub,
                Ev::MagicIn {
                    node: dst,
                    wire,
                    net: true,
                },
            );
        } else {
            // The lookahead proof: deliver >= send time + minimum remote
            // transit + NI input >= window start + lookahead = window end.
            debug_assert!(
                deliver >= self.end,
                "cross-shard delivery inside the window violates the lookahead"
            );
            self.staged.push(Staged {
                at: deliver,
                sub,
                node: dst,
                wire,
            });
        }
    }

    /// Delivers a MAGIC→processor message. Returns the continuation key
    /// when a reply wake's run event was elided (see
    /// [`ShardCtx::schedule_or_inline`]).
    fn ev_proc_deliver(&mut self, node: u16, pm: ProcMsg, tries: u32) -> Option<(Cycle, u64)> {
        let i = self.li(node);
        let now = self.cur_t;
        let lat = self.cfg.lat;
        // Consuming a delivery is forward progress; the intervention
        // *deferral* path below re-queues without consuming and is
        // deliberately not counted (a deferral loop is a livelock).
        if !matches!(pm.mtype, MsgType::PIntervGet | MsgType::PIntervGetX) {
            self.mark_progress();
        }
        match pm.mtype {
            MsgType::PPut | MsgType::PPutX | MsgType::PUpgAck => {
                // Observed mode: the reply reaching the processor closes
                // the tracked request (before `deliver_reply`, whose
                // freed MSHR may immediately re-issue on this line).
                if self.observe {
                    self.obs(ObsOp::Complete {
                        key: (node, pm.addr.line().raw()),
                        now,
                    });
                }
                let excl = pm.mtype != MsgType::PPut;
                let mut outs = std::mem::take(&mut self.cpu_outs);
                outs.clear();
                self.procs[i].deliver_reply(pm.addr, excl, now, &mut outs);
                self.post_cpu_outs(node, &outs);
                self.cpu_outs = outs;
                return self.wake_if_waiting(node, now);
            }
            MsgType::PInval => {
                self.procs[i].inval(pm.addr, now);
                if self.check {
                    let key = (node, pm.addr.line().raw());
                    if let Some(n) = self.st.inflight_invals.get_mut(&key) {
                        *n -= 1;
                        if *n == 0 {
                            self.st.inflight_invals.remove(&key);
                        }
                    }
                    // An invalidation reaching this copy discharges any
                    // provisional rogue-copy observation: the self-repair
                    // completed.
                    self.discharges.push(key);
                }
            }
            MsgType::PIntervGet | MsgType::PIntervGetX => {
                let excl = pm.mtype == MsgType::PIntervGetX;
                let mut give_up = false;
                if self.procs[i].has_mshr(pm.addr) {
                    if tries < MAX_INTERV_DEFERRALS {
                        // Data for this line is in flight; the bus
                        // transaction retries until it lands.
                        self.interv_deferrals += 1;
                        self.push_local(
                            node,
                            now + 16,
                            Ev::ProcDeliver {
                                node,
                                pm,
                                tries: tries + 1,
                            },
                        );
                        return None;
                    }
                    // Request/forward cycle: break it. The miss report
                    // makes the home abandon the transaction; poisoning
                    // keeps the eventual grant from caching a stale copy.
                    self.procs[i].poison_pending(pm.addr);
                    give_up = true;
                }
                // The intervention is being consumed (not re-deferred):
                // the copy's handoff window closes here.
                self.mark_progress();
                // Observed mode: the requester's frontier waited out the
                // owner's bus transaction (deferrals included) — PI time.
                if self.observe {
                    self.obs(ObsOp::Advance {
                        key: (aux::requester(pm.aux).0, pm.addr.line().raw()),
                        now,
                        seg: Segment::Pi,
                    });
                }
                if self.check {
                    let key = (node, pm.addr.line().raw());
                    if let Some(n) = self.st.inflight_intervs.get_mut(&key) {
                        *n -= 1;
                        if *n == 0 {
                            self.st.inflight_intervs.remove(&key);
                        }
                    }
                }
                let found = !give_up && self.procs[i].intervention(pm.addr, excl, now);
                let (mtype, delay) = if found {
                    (MsgType::PiIntervReply, lat.cache_data)
                } else {
                    (MsgType::PiIntervMiss, lat.cache_state)
                };
                self.push_local(
                    node,
                    now + delay + lat.bus + lat.pi_in,
                    Ev::MagicIn {
                        node,
                        wire: Wire {
                            mtype,
                            src: NodeId(node),
                            addr: pm.addr,
                            aux: pm.aux,
                            with_data: found,
                        },
                        net: false,
                    },
                );
            }
            MsgType::PNackRetry => {
                // Observed mode: the NACK round trip ends on the
                // requester's bus; the retry gap is PI time.
                if self.observe {
                    self.obs(ObsOp::Advance {
                        key: (node, pm.addr.line().raw()),
                        now,
                        seg: Segment::Pi,
                    });
                }
                if let Some(o) = self.procs[i].nack_retry(pm.addr) {
                    // Bus retry: the miss was already detected, so only
                    // the retry delay plus bus/PI path applies.
                    let (mtype, addr) = match o {
                        flash_cpu::CpuOut::Get(a) => (MsgType::PiGet, a),
                        flash_cpu::CpuOut::GetX(a) => (MsgType::PiGetX, a),
                        flash_cpu::CpuOut::Upgrade(a) => (MsgType::PiUpgrade, a),
                        other => unreachable!("{other:?} is not retryable"),
                    };
                    self.push_local(
                        node,
                        now + lat.retry + lat.bus + lat.pi_in,
                        Ev::MagicIn {
                            node,
                            wire: Wire {
                                mtype,
                                src: NodeId(node),
                                addr,
                                aux: 0,
                                with_data: false,
                            },
                            net: false,
                        },
                    );
                }
            }
            MsgType::PIoData => {}
            other => unreachable!("{other:?} is not a processor-bound message"),
        }
        None
    }
}

/// How a windowed run ended (the machine-facing [`RunResult`] is built
/// after teardown, when the merged state is back on the machine).
enum DriveEnd {
    Completed,
    Deadlocked,
    Budget,
    Wedged,
}

/// The coordinator's boundary-owned state: everything nodes share.
struct Coord<'a> {
    cfg: &'a MachineConfig,
    locks: &'a mut FastMap<u32, LockState>,
    barrier_waiters: &'a mut Vec<(u16, Cycle)>,
    done: &'a mut usize,
    check: &'a mut Option<CheckCtx>,
    observe: &'a mut Option<Box<Observer>>,
    total: usize,
    nodes: u16,
    nshards: usize,
    /// Boundary-side host-profiler accumulator (None unless armed);
    /// merged into the machine's profile after the drive loop.
    prof: Option<HostProfAcc>,
}

impl Coord<'_> {
    /// Wakes `node` (sets it runnable and pushes its `ProcRun`) on its
    /// owning shard. The wake time may predate cycles other shards have
    /// already processed — the queue's overflow heap handles behind-
    /// cursor pushes, and the event still executes at its own simulated
    /// time — one window late by construction, identically for every
    /// shard count.
    fn wake(&self, ctxs: &mut [ShardCtx], node: u16, at: Cycle) {
        let (s, li) = locate(self.nodes, self.nshards, node);
        let ctx = &mut ctxs[s];
        ctx.parked[li] = Park::Scheduled;
        let seq = ctx.origin_seq[li];
        ctx.origin_seq[li] += 1;
        ctx.st
            .queue
            .push_sub(at, sub_key(node, seq), Ev::ProcRun(node));
    }

    fn maybe_release_barrier(&mut self, ctxs: &mut [ShardCtx], at: Cycle) {
        let active = self.total - *self.done;
        if active > 0 && self.barrier_waiters.len() == active {
            let waiters = std::mem::take(self.barrier_waiters);
            let release = waiters.iter().map(|&(_, t)| t).fold(at, Cycle::max);
            for (w, _) in waiters {
                self.wake(ctxs, w, release);
            }
        }
    }

    /// Applies the window's synchronization ops in canonical key order —
    /// the exact order a serial machine would have encountered them.
    fn apply_sync(&mut self, ctxs: &mut [ShardCtx], mut ops: Vec<(EvKey, SyncOp)>) {
        ops.sort_unstable_by_key(|&(k, _)| k);
        let grant = self.cfg.lat.lock_grant;
        for (key, op) in ops {
            let at = Cycle::new(key.0);
            match op {
                SyncOp::Barrier { node, pt } => {
                    self.barrier_waiters.push((node, pt));
                    self.maybe_release_barrier(ctxs, at);
                }
                SyncOp::Lock { node, id, pt } => {
                    let lock = self.locks.entry(id).or_default();
                    if lock.held {
                        lock.waiters.push_back((node, pt));
                    } else {
                        lock.held = true;
                        self.wake(ctxs, node, pt + grant);
                    }
                }
                SyncOp::Unlock { id, pt } => {
                    let lock = self.locks.entry(id).or_default();
                    match lock.waiters.pop_front() {
                        Some((w, wt)) => self.wake(ctxs, w, pt.max(wt) + grant),
                        None => lock.held = false,
                    }
                }
                SyncOp::Finished => {
                    *self.done += 1;
                    self.maybe_release_barrier(ctxs, at);
                }
            }
        }
    }

    /// Replays the window's observer journal against the master observer
    /// in canonical key order. Stable sort: ops from one event keep
    /// their program order. Arrival ops resolve their candidate keys
    /// against the master's live pending set here, which evolves in the
    /// same canonical order for every shard count.
    fn apply_obs(&mut self, mut ops: Vec<(EvKey, ObsOp)>) {
        let Some(obs) = self.observe.as_deref_mut() else {
            return;
        };
        ops.sort_by_key(|&(k, _)| k);
        for (_, op) in ops {
            match op {
                ObsOp::Begin {
                    node,
                    line,
                    issue,
                    kind,
                } => obs.begin(node, line, issue, kind),
                ObsOp::ArriveAdvance {
                    cands,
                    line,
                    seg,
                    now,
                } => {
                    if let Some(c) = cands
                        .into_iter()
                        .flatten()
                        .find(|&c| obs.is_pending((c, line)))
                    {
                        obs.advance((c, line), now, seg);
                    }
                }
                ObsOp::TraceHandler { node, inv } => obs.trace_handler(node, &inv),
                ObsOp::ArriveApply {
                    cands,
                    line,
                    class,
                    parts,
                } => {
                    let hit = cands.iter().enumerate().find_map(|(ci, c)| {
                        c.filter(|&c| obs.is_pending((c, line))).map(|c| (ci, c))
                    });
                    if let Some((ci, c)) = hit {
                        let key = (c, line);
                        if let Some(class) = class {
                            obs.note_class(key, class);
                        }
                        if let Some((em_at, p, net)) = parts[ci] {
                            obs.apply_parts(key, em_at, &p, net);
                        }
                    }
                }
                ObsOp::NetHop {
                    cands,
                    line,
                    depart,
                    arrive,
                } => {
                    if let Some(c) = cands.into_iter().find(|&c| obs.is_pending((c, line))) {
                        obs.net_hop((c, line), depart, arrive);
                    }
                }
                ObsOp::Advance { key, now, seg } => obs.advance(key, now, seg),
                ObsOp::Complete { key, now } => obs.complete(key, now),
            }
        }
    }
}

/// The conservative-window loop: pick the next window, let every shard
/// process it (via `exec` — serial in-place or fanned out to workers),
/// then resolve the boundary. Returns how the run ended; all merged
/// state lives in `ctxs`/`coord` for the caller's teardown.
fn window_loop<'a>(
    ctxs: &mut Vec<ShardCtx<'a>>,
    coord: &mut Coord<'_>,
    budget: u64,
    lookahead: u64,
    mut exec: impl FnMut(&mut Vec<ShardCtx<'a>>),
) -> DriveEnd {
    loop {
        // Window start: the canonical global minimum pending event.
        let tb = coord.prof.as_ref().map(|_| Instant::now());
        let mut min: Option<(Cycle, u64, usize)> = None;
        for (i, c) in ctxs.iter().enumerate() {
            if let Some((t, s)) = c.st.queue.peek_key() {
                if min.is_none_or(|(mt, ms, _)| (t, s) < (mt, ms)) {
                    min = Some((t, s, i));
                }
            }
        }
        let Some((w, _, wi)) = min else {
            // Quiescent: every queue (and the boundary staging) drained.
            return if *coord.done == coord.total {
                DriveEnd::Completed
            } else {
                DriveEnd::Deadlocked
            };
        };
        if w.raw() > budget {
            // Budget semantics match the serial loop: the first
            // over-budget event is consumed (dropped) and the clock
            // stops at its time.
            let (t, _, _) = ctxs[wi].st.queue.pop_keyed().expect("peeked non-empty");
            if t > ctxs[wi].st.now {
                ctxs[wi].st.now = t;
            }
            return DriveEnd::Budget;
        }
        let end = w + lookahead;
        for c in ctxs.iter_mut() {
            c.end = end;
            c.budget = budget;
        }
        if let Some(t) = tb {
            coord
                .prof
                .as_mut()
                .expect("armed")
                .add_flat(HostSeg::Queue, t);
        }
        exec(ctxs);
        // ---- boundary ------------------------------------------------
        // (exec's elapsed time is attributed inside the shards' own
        // accumulators, so the coordinator re-stamps here.)
        let tb = coord.prof.as_ref().map(|_| Instant::now());
        let boundary_now = ctxs.iter().map(|c| c.st.now).max().unwrap_or(Cycle::ZERO);
        // 1. Synchronization (locks, barriers, retirement).
        let sync: Vec<(EvKey, SyncOp)> =
            ctxs.iter_mut().flat_map(|c| c.sync_ops.drain(..)).collect();
        coord.apply_sync(ctxs, sync);
        let tb = tb.map(|t| {
            coord
                .prof
                .as_mut()
                .expect("armed")
                .lap(HostSeg::Boundary, t)
        });
        // 2. Observer journal.
        if coord.observe.is_some() {
            let obs: Vec<(EvKey, ObsOp)> =
                ctxs.iter_mut().flat_map(|c| c.obs_ops.drain(..)).collect();
            coord.apply_obs(obs);
        } else {
            for c in ctxs.iter_mut() {
                debug_assert!(c.obs_ops.is_empty());
            }
        }
        // 3. Invariant checks over every line the window touched.
        if coord.check.is_some() {
            let discharges: Vec<(u16, u64)> = ctxs
                .iter_mut()
                .flat_map(|c| c.discharges.drain(..))
                .collect();
            let mut touched: BTreeSet<u64> = BTreeSet::new();
            for c in ctxs.iter_mut() {
                touched.append(&mut c.touched);
            }
            let mut check = coord.check.take().expect("checked mode");
            for key in discharges {
                check.provisional_rogues.remove(&key);
            }
            let nodes = coord.nodes;
            let nshards = coord.nshards;
            let view: &[ShardCtx] = ctxs;
            for &raw in &touched {
                check.touched.insert(raw);
                check_line_at(
                    coord.cfg,
                    &mut check,
                    Addr::new(raw),
                    boundary_now,
                    &|n| {
                        let (s, li) = locate(nodes, nshards, n);
                        &view[s].procs[li]
                    },
                    &|n| {
                        let (s, li) = locate(nodes, nshards, n);
                        &view[s].chips[li]
                    },
                    &|key| {
                        let (s, _) = locate(nodes, nshards, key.0);
                        view[s].st.inflight_invals.contains_key(&key)
                            || view[s].st.inflight_intervs.contains_key(&key)
                    },
                );
            }
            *coord.check = Some(check);
        }
        let tb = tb.map(|t| {
            coord
                .prof
                .as_mut()
                .expect("armed")
                .lap(HostSeg::ObsCheck, t)
        });
        // 4. Cross-shard staged deliveries into destination queues. First
        // advance every shard's wheel window to the boundary: an idle
        // shard's cursor freezes at its last pop, and against that stale
        // base the near-future staged deliveries (and coordinator
        // wakeups) would look far-future and degrade to the overflow
        // heap. Safe because every event before `end` was popped this
        // window, so no wheel-resident event is earlier than `end`.
        for c in ctxs.iter_mut() {
            c.st.queue.advance_to(end);
        }
        let mut staged: Vec<Staged> = ctxs.iter_mut().flat_map(|c| c.staged.drain(..)).collect();
        staged.sort_unstable_by_key(|s| (s.at, s.sub));
        for s in staged {
            let (sh, _) = locate(coord.nodes, coord.nshards, s.node);
            ctxs[sh].st.queue.push_sub(
                s.at,
                s.sub,
                Ev::MagicIn {
                    node: s.node,
                    wire: s.wire,
                    net: true,
                },
            );
        }
        if let Some(t) = tb {
            coord
                .prof
                .as_mut()
                .expect("armed")
                .add_flat(HostSeg::Queue, t);
        }
        // 5. Forward-progress watchdog, at boundary granularity.
        let progress = ctxs
            .iter()
            .map(|c| c.st.last_progress)
            .max()
            .unwrap_or(Cycle::ZERO);
        if coord.cfg.watchdog_window > 0
            && boundary_now.raw().saturating_sub(progress.raw()) > coord.cfg.watchdog_window
        {
            return DriveEnd::Wedged;
        }
    }
}

impl Machine {
    /// Builds a machine running one reference stream per node.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != cfg.nodes`.
    pub fn new(cfg: MachineConfig, streams: Vec<Box<dyn RefStream>>) -> Self {
        assert_eq!(streams.len(), cfg.nodes as usize, "one stream per node");
        // Handler modules are immutable once scheduled; they are compiled
        // at most once per (codegen, monitoring) variant for the whole
        // process and shared across nodes, machines, and worker threads.
        let program = match (cfg.controller, cfg.monitoring) {
            (ControllerKind::FlashEmulated, false) => {
                Some(flash_protocol::handlers::compile_shared(cfg.codegen))
            }
            (ControllerKind::FlashEmulated, true) => Some(
                flash_protocol::handlers::compile_monitoring_shared(cfg.codegen),
            ),
            _ => None,
        };
        let jump = if cfg.monitoring && cfg.controller == ControllerKind::FlashEmulated {
            JumpTable::dpa_with_monitoring()
        } else {
            JumpTable::dpa_protocol()
        };
        let mut chips: Vec<MagicChip> = (0..cfg.nodes)
            .map(|i| {
                MagicChip::new(
                    cfg.controller,
                    NodeId(i),
                    program.clone(),
                    jump.clone(),
                    cfg.mem_timing,
                    cfg.speculation,
                    cfg.mdc_enabled,
                )
            })
            .collect();
        // Apply the configured PP backend (a host-performance knob;
        // timing is backend-invariant, so this never changes results).
        for chip in &mut chips {
            chip.set_pp_backend(cfg.pp_backend);
        }
        // Checked mode: the differential oracle replays every emulated
        // handler through the native protocol. The monitoring protocol
        // writes per-line counters the native oracle does not model, so
        // the oracle stays off there (invariant checks still run).
        if cfg.check && !cfg.monitoring {
            for chip in &mut chips {
                chip.enable_oracle();
            }
        }
        // Observed mode: chips record per-emission attributions
        // (timing-invisible side buffers).
        if cfg.observe {
            for chip in &mut chips {
                chip.set_observe(true);
            }
        }
        let procs: Vec<Processor> = streams
            .into_iter()
            .map(|s| Processor::new(cfg.cache_bytes, cfg.mshrs, s))
            .collect();
        let n = cfg.nodes as usize;
        // The shard count is a host knob: clamp to something sane, never
        // more shards than nodes.
        let nshards = cfg.shards.max(1).min(n.max(1));
        // Size each shard's timing wheel to the longest routine scheduling
        // distance: worst-case mesh transit plus NI ingress, with 4x slack
        // for the per-home protocol-processor queuing backlog that pushes
        // emission times past raw transit under load. Tuned for 128 slots
        // on small meshes and 512 at 1024 nodes; without it, a large share
        // of big-mesh pushes degrade to the overflow heap.
        let horizon = (NetModel::new(Mesh::for_nodes(cfg.nodes), cfg.net).max_remote_transit()
            + cfg.lat.ni_in)
            * 4;
        let mut shards: Vec<ShardState> = (0..nshards)
            .map(|_| ShardState {
                queue: EventQueue::with_horizon(horizon),
                net: NetModel::new(Mesh::for_nodes(cfg.nodes), cfg.net),
                injector: FaultInjector::new(&cfg.faults),
                ring: VecDeque::new(),
                inflight_invals: FastMap::default(),
                inflight_intervs: FastMap::default(),
                now: Cycle::ZERO,
                last_progress: Cycle::ZERO,
            })
            .collect();
        let mut origin_seq = vec![0u64; n];
        for i in 0..cfg.nodes {
            let s = shard_of(cfg.nodes, nshards, i);
            let seq = origin_seq[i as usize];
            origin_seq[i as usize] += 1;
            shards[s]
                .queue
                .push_sub(Cycle::ZERO, sub_key(i, seq), Ev::ProcRun(i));
        }
        let net = NetModel::new(Mesh::for_nodes(cfg.nodes), cfg.net);
        let check_enabled = cfg.check;
        let cfg_host_profile = cfg.host_profile;
        let observe = cfg
            .observe
            .then(|| Box::new(Observer::new(jump.handler_names())));
        Machine {
            cfg,
            procs,
            chips,
            net,
            shards,
            origin_seq,
            now: Cycle::ZERO,
            parked: vec![Park::Scheduled; n],
            feeds: (0..n).map(|_| None).collect(),
            barrier_waiters: Vec::new(),
            locks: FastMap::default(),
            done: 0,
            finish: vec![Cycle::ZERO; n],
            interv_deferrals: 0,
            check: check_enabled.then(CheckCtx::default),
            ring: MsgRing::new(RING_CAPACITY),
            last_progress: Cycle::ZERO,
            observe,
            hostprof: (cfg_host_profile || hostprof_out().is_some())
                .then(|| Box::new(HostProfile::default())),
        }
    }

    /// Builds an open-loop machine: every node runs from an arrival
    /// source instead of a closed-loop reference stream.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != cfg.nodes`.
    pub fn new_open_loop(cfg: MachineConfig, sources: Vec<Box<dyn ArrivalSource>>) -> Self {
        assert_eq!(sources.len(), cfg.nodes as usize, "one source per node");
        let streams = (0..cfg.nodes)
            .map(|_| Box::new(flash_cpu::SliceStream::new(Vec::new())) as Box<dyn RefStream>)
            .collect();
        let mut m = Machine::new(cfg, streams);
        for (i, src) in sources.into_iter().enumerate() {
            m.attach_open_loop(NodeId(i as u16), src);
        }
        m
    }

    /// Converts `node` to open-loop execution: its reference stream is
    /// replaced by an admission mailbox fed from `source`, and the
    /// source's first arrival is scheduled as an event. References then
    /// *arrive* on the source's schedule whether or not the processor
    /// has kept up — arrivals the processor is not ready for accumulate
    /// in a backlog ([`Machine::traffic_stats`] reports the queueing).
    ///
    /// Must be called before the machine runs.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, already fed, or the machine has
    /// started running.
    pub fn attach_open_loop(&mut self, node: NodeId, mut source: Box<dyn ArrivalSource>) {
        assert!(node.0 < self.cfg.nodes, "node out of range");
        assert_eq!(self.now, Cycle::ZERO, "attach feeds before running");
        assert!(self.feeds[node.index()].is_none(), "node already fed");
        let mailbox = Mailbox::handle();
        self.procs[node.index()].set_stream(Box::new(MailboxStream::new(mailbox.clone())));
        let pending = source.next_arrival();
        let exhausted = pending.is_none();
        if let Some((at, item)) = &pending {
            assert_open_item(item);
            let s = shard_of(self.cfg.nodes, self.shards.len(), node.0);
            let seq = self.origin_seq[node.index()];
            self.origin_seq[node.index()] += 1;
            self.shards[s]
                .queue
                .push_sub(*at, sub_key(node.0, seq), Ev::Arrival { node: node.0 });
        }
        self.feeds[node.index()] = Some(OpenFeed {
            source,
            mailbox,
            backlog: VecDeque::new(),
            pending,
            exhausted,
            stats: TrafficStats::default(),
        });
    }

    /// Whether any node runs open-loop.
    pub fn open_loop(&self) -> bool {
        self.feeds.iter().any(|f| f.is_some())
    }

    /// Per-node admission statistics for open-loop nodes, or `None` for
    /// a fully closed-loop machine. Entries are `(node, stats)` in node
    /// order; unfed nodes are omitted.
    pub fn traffic_stats(&self) -> Option<Vec<(u16, TrafficStats)>> {
        if !self.open_loop() {
            return None;
        }
        Some(
            self.feeds
                .iter()
                .enumerate()
                .filter_map(|(i, f)| f.as_ref().map(|f| (i as u16, f.stats)))
                .collect(),
        )
    }

    /// Schedules a DMA write into `node`'s memory at time `at` (the OS
    /// workload's zero-latency disk, paper §3.4).
    pub fn add_dma_write(&mut self, at: Cycle, node: NodeId, addr: Addr) {
        let s = shard_of(self.cfg.nodes, self.shards.len(), node.0);
        let seq = self.origin_seq[node.index()];
        self.origin_seq[node.index()] += 1;
        self.shards[s].queue.push_sub(
            at,
            sub_key(node.0, seq),
            Ev::MagicIn {
                node: node.0,
                wire: Wire {
                    mtype: MsgType::IoDmaWrite,
                    src: node,
                    addr: addr.line(),
                    aux: 0,
                    with_data: true,
                },
                net: false,
            },
        );
    }

    /// The conservative lookahead: the minimum latency any cross-node
    /// message experiences (minimum remote mesh transit plus the
    /// receiver's NI input stage). A pure function of the configuration —
    /// never of the shard count — so the window structure, and therefore
    /// every result, is identical for any `FLASH_SHARDS`.
    fn lookahead(&self) -> u64 {
        (self.net.min_remote_transit() + self.cfg.lat.ni_in).max(1)
    }

    /// Runs until every processor finishes or `budget_cycles` elapse.
    pub fn run(&mut self, budget_cycles: u64) -> RunResult {
        let lookahead = self.lookahead();
        let wall0 = self.hostprof.is_some().then(Instant::now);
        let (end, fins) = self.drive(budget_cycles, lookahead);
        if let Some(t0) = wall0 {
            let hp = self.hostprof.as_mut().expect("armed");
            hp.wall_ns += t0.elapsed().as_nanos() as u64;
            hp.runs += 1;
        }
        // Teardown: every exit path restores the shard states and merges
        // shard-accumulated views back onto the machine.
        self.interv_deferrals += fins.iter().map(|&(_, d)| d).sum::<u64>();
        self.shards = fins.into_iter().map(|(st, _)| st).collect();
        self.now = self.shards.iter().map(|s| s.now).fold(self.now, Cycle::max);
        self.last_progress = self
            .shards
            .iter()
            .map(|s| s.last_progress)
            .fold(self.last_progress, Cycle::max);
        let mut net = NetModel::new(Mesh::for_nodes(self.cfg.nodes), self.cfg.net);
        for st in &self.shards {
            net.absorb_counts(&st.net);
        }
        self.net = net;
        let mut entries: Vec<(EvKey, TraceEntry)> = self
            .shards
            .iter()
            .flat_map(|s| s.ring.iter().copied())
            .collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        let mut ring = MsgRing::new(RING_CAPACITY);
        for &(_, e) in entries
            .iter()
            .skip(entries.len().saturating_sub(RING_CAPACITY))
        {
            ring.push(e);
        }
        self.ring = ring;
        match end {
            DriveEnd::Budget => RunResult::BudgetExhausted,
            DriveEnd::Wedged => RunResult::Wedged {
                report: Box::new(self.diagnose("no forward progress within the watchdog window")),
            },
            DriveEnd::Deadlocked => RunResult::Deadlocked {
                stuck: self.procs.len() - self.done,
            },
            DriveEnd::Completed => {
                self.finalize_check();
                self.maybe_write_trace();
                self.maybe_write_hostprof();
                self.maybe_write_latency();
                RunResult::Completed {
                    exec_cycles: self.exec_cycles(),
                }
            }
        }
    }

    /// Builds the shard contexts over disjoint slices of the machine's
    /// node-indexed state and runs the window loop — serially in place
    /// for one shard, on scoped worker threads otherwise. Returns each
    /// shard's persistent state (in shard order) for teardown.
    fn drive(&mut self, budget: u64, lookahead: u64) -> (DriveEnd, Vec<(ShardState, u64)>) {
        let Machine {
            cfg,
            procs,
            chips,
            shards,
            origin_seq,
            parked,
            feeds,
            finish,
            locks,
            barrier_waiters,
            done,
            check,
            observe,
            hostprof,
            ..
        } = self;
        let profiled = hostprof.is_some();
        let states = std::mem::take(shards);
        let nshards = states.len();
        let nodes = cfg.nodes;
        let total = procs.len();
        let mut ctxs: Vec<ShardCtx> = Vec::with_capacity(nshards);
        {
            let mut procs: &mut [Processor] = procs;
            let mut chips: &mut [MagicChip] = chips;
            let mut parked: &mut [Park] = parked;
            let mut feeds: &mut [Option<OpenFeed>] = feeds;
            let mut finish: &mut [Cycle] = finish;
            let mut origin_seq: &mut [u64] = origin_seq;
            for (s, st) in states.into_iter().enumerate() {
                let (lo, hi) = shard_bounds(nodes, nshards, s);
                let len = (hi - lo) as usize;
                let (pa, pr) = procs.split_at_mut(len);
                procs = pr;
                let (ca, cr) = chips.split_at_mut(len);
                chips = cr;
                let (ka, kr) = parked.split_at_mut(len);
                parked = kr;
                let (da, dr) = feeds.split_at_mut(len);
                feeds = dr;
                let (fa, fr) = finish.split_at_mut(len);
                finish = fr;
                let (oa, or) = origin_seq.split_at_mut(len);
                origin_seq = or;
                ctxs.push(ShardCtx {
                    cfg,
                    shard: s,
                    lo,
                    nodes,
                    nshards,
                    check: cfg.check,
                    observe: cfg.observe,
                    procs: pa,
                    chips: ca,
                    parked: ka,
                    feeds: da,
                    finish: fa,
                    origin_seq: oa,
                    st,
                    interv_deferrals: 0,
                    sync_ops: Vec::new(),
                    obs_ops: Vec::new(),
                    staged: Vec::new(),
                    discharges: Vec::new(),
                    touched: BTreeSet::new(),
                    end: Cycle::ZERO,
                    budget,
                    cur: (0, 0),
                    cur_t: Cycle::ZERO,
                    cpu_outs: Vec::new(),
                    emit_buf: Vec::new(),
                    prof: profiled.then(Box::default),
                });
            }
        }
        let mut coord = Coord {
            cfg,
            locks,
            barrier_waiters,
            done,
            check,
            observe,
            total,
            nodes,
            nshards,
            prof: profiled.then(HostProfAcc::default),
        };
        let end = if nshards == 1 {
            window_loop(&mut ctxs, &mut coord, budget, lookahead, |cs| {
                for c in cs.iter_mut() {
                    c.run_window();
                }
            })
        } else {
            // Persistent workers ping-pong shard contexts with the
            // coordinator: one send and one receive per shard per window.
            std::thread::scope(|scope| {
                let (back_tx, back_rx) = mpsc::channel();
                let txs: Vec<mpsc::Sender<ShardCtx>> = (0..nshards)
                    .map(|_| {
                        let (tx, rx) = mpsc::channel::<ShardCtx>();
                        let back = back_tx.clone();
                        scope.spawn(move || {
                            while let Ok(mut ctx) = rx.recv() {
                                ctx.run_window();
                                if back.send(ctx).is_err() {
                                    return;
                                }
                            }
                        });
                        tx
                    })
                    .collect();
                window_loop(&mut ctxs, &mut coord, budget, lookahead, move |cs| {
                    let n = cs.len();
                    for c in cs.drain(..) {
                        let s = c.shard;
                        txs[s].send(c).expect("worker alive");
                    }
                    let mut got: Vec<Option<ShardCtx>> = (0..n).map(|_| None).collect();
                    for _ in 0..n {
                        let c = back_rx.recv().expect("worker alive");
                        let s = c.shard;
                        got[s] = Some(c);
                    }
                    cs.extend(got.into_iter().map(|o| o.expect("all shards returned")));
                })
            })
        };
        // Merge the per-shard and boundary profiler accumulators into the
        // machine's profile (host-clock observation only — no simulated
        // state flows through here).
        if let Some(hp) = hostprof.as_mut() {
            if let Some(acc) = coord.prof.take() {
                hp.acc.merge(&acc);
            }
            for c in &ctxs {
                if let Some(p) = &c.prof {
                    hp.acc.merge(p);
                }
            }
        }
        let fins = ctxs
            .into_iter()
            .map(|c| (c.st, c.interv_deferrals))
            .collect();
        (end, fins)
    }

    // ---- observed mode ---------------------------------------------------

    /// Whether the cycle-attribution observer is on.
    pub fn observed_mode(&self) -> bool {
        self.observe.is_some()
    }

    /// The structured cycle-attribution report (`None` unless the machine
    /// was built with [`MachineConfig::with_observe`]). Per-handler rows
    /// aggregate invocation counts and occupancy over all chips.
    ///
    /// [`MachineConfig::with_observe`]: crate::MachineConfig::with_observe
    pub fn observe_report(&self) -> Option<ObserveReport> {
        let obs = self.observe.as_ref()?;
        let mut handlers: std::collections::BTreeMap<&'static str, (u64, u64)> = Default::default();
        for chip in &self.chips {
            for (&name, &(n, cyc)) in &chip.stats().handlers {
                let e = handlers.entry(name).or_insert((0, 0));
                e.0 += n;
                e.1 += cyc;
            }
        }
        Some(obs.report(&handlers))
    }

    /// The event trace as Chrome `trace_event` JSON (`None` unless
    /// observing).
    pub fn trace_json(&self) -> Option<String> {
        self.observe.as_ref().map(|o| o.trace_json())
    }

    /// Writes the Chrome-trace JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be written, or
    /// `InvalidInput` if the machine is not observing.
    pub fn write_trace(&self, path: &str) -> std::io::Result<()> {
        let Some(json) = self.trace_json() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "machine is not observing (enable MachineConfig::with_observe)",
            ));
        };
        std::fs::write(path, json)
    }

    /// `FLASH_TRACE_OUT` handling on successful completion: best-effort,
    /// a write failure is reported on stderr but never fails the run.
    fn maybe_write_trace(&self) {
        if self.observe.is_none() {
            return;
        }
        if let Some(path) = trace_out() {
            if let Err(e) = self.write_trace(path) {
                eprintln!("FLASH_TRACE_OUT: failed to write {path}: {e}");
            }
        }
    }

    /// The per-class latency percentile report (`None` unless the
    /// machine was built with [`MachineConfig::with_observe`]). Rows are
    /// exact integer percentiles over log-bucketed histograms; for
    /// open-loop machines the report also carries each fed node's
    /// admission statistics, so service latency and queueing delay land
    /// in one artifact.
    ///
    /// [`MachineConfig::with_observe`]: crate::MachineConfig::with_observe
    pub fn latency_report(&self) -> Option<LatencyReport> {
        let mut report = self.observe.as_ref()?.latency_report();
        report.traffic = self.traffic_stats().unwrap_or_default();
        Some(report)
    }

    /// `FLASH_LATENCY_OUT` handling on successful completion:
    /// best-effort, a write failure is reported on stderr but never
    /// fails the run.
    fn maybe_write_latency(&self) {
        let (Some(report), Some(path)) = (self.latency_report(), latency_out()) else {
            return;
        };
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("FLASH_LATENCY_OUT: failed to write {path}: {e}");
        }
    }

    /// The host-time profile (`None` unless armed with
    /// [`MachineConfig::with_host_profile`] or `FLASH_HOSTPROF_OUT`).
    ///
    /// [`MachineConfig::with_host_profile`]: crate::MachineConfig::with_host_profile
    pub fn host_profile(&self) -> Option<&HostProfile> {
        self.hostprof.as_deref()
    }

    /// `FLASH_HOSTPROF_OUT` handling on successful completion:
    /// best-effort, a write failure is reported on stderr but never fails
    /// the run.
    fn maybe_write_hostprof(&self) {
        let (Some(hp), Some(path)) = (self.hostprof.as_deref(), hostprof_out()) else {
            return;
        };
        if let Err(e) = std::fs::write(path, hp.to_json()) {
            eprintln!("FLASH_HOSTPROF_OUT: failed to write {path}: {e}");
        }
    }

    // ---- checked mode ----------------------------------------------------

    /// Whether checked mode is on.
    pub fn checked_mode(&self) -> bool {
        self.check.is_some()
    }

    /// Handler invocations the differential oracle has diffed so far,
    /// summed over all chips (0 when checked mode or the oracle is off).
    pub fn oracle_checked(&self) -> u64 {
        self.chips.iter().map(|c| c.oracle_checked()).sum()
    }

    /// All invariant violations detected so far: machine-level checks
    /// (coherence, directory audits, conservation) plus every chip's
    /// differential-oracle divergences. Empty on a healthy checked run —
    /// and always empty when checked mode is off.
    pub fn check_violations(&self) -> Vec<flash_check::Violation> {
        let mut out: Vec<flash_check::Violation> = self
            .check
            .as_ref()
            .map(|c| c.violations.clone())
            .unwrap_or_default();
        for chip in &self.chips {
            out.extend(chip.oracle_violations().iter().cloned());
        }
        out
    }

    /// End-of-run audits, called once the machine is quiescent (all
    /// processors done, event queues drained): every touched line must
    /// have retired its transactions (no `PENDING`, no residual acks,
    /// caches and directory in agreement), every MSHR must have drained,
    /// each node's pointer store must conserve entries, and the MAGIC
    /// cache tag stores must be internally consistent.
    fn finalize_check(&mut self) {
        let Some(mut check) = self.check.take() else {
            return;
        };
        let touched: Vec<u64> = check.touched.iter().copied().collect();
        let now = self.now;
        for &raw in &touched {
            let line = Addr::new(raw);
            let home = self.cfg.placement.home_of(line, self.cfg.nodes);
            let da = dir_addr(line);
            let mem = self.chips[home.index()].proto_mem();
            check
                .violations
                .extend(flash_check::audit_directory(mem, da, home.0, true));
            check_line_at(
                &self.cfg,
                &mut check,
                line,
                now,
                &|n| &self.procs[n as usize],
                &|n| &self.chips[n as usize],
                &|key| {
                    let (s, _) = locate(self.cfg.nodes, self.shards.len(), key.0);
                    self.shards[s].inflight_invals.contains_key(&key)
                        || self.shards[s].inflight_intervs.contains_key(&key)
                },
            );
        }
        for (i, p) in self.procs.iter().enumerate() {
            let n = p.outstanding_misses();
            if n != 0 {
                check.violations.push(flash_check::Violation {
                    kind: "mshr-leak",
                    node: i as u16,
                    line: 0,
                    detail: format!("{n} MSHRs still allocated at quiescence"),
                });
            }
        }
        // Message conservation: every scheduled `PInval` must have been
        // delivered by the time the event queues drain. Collected across
        // shards and sorted for deterministic output.
        let mut leaked: Vec<((u16, u64), u32)> = self
            .shards
            .iter()
            .flat_map(|st| st.inflight_invals.iter().map(|(&k, &v)| (k, v)))
            .collect();
        leaked.sort_unstable();
        for ((node, l), n) in leaked {
            check.violations.push(flash_check::Violation {
                kind: "inval-leak",
                node,
                line: l,
                detail: format!("{n} PInval(s) still queued at quiescence"),
            });
        }
        let mut leaked_intervs: Vec<((u16, u64), u32)> = self
            .shards
            .iter()
            .flat_map(|st| st.inflight_intervs.iter().map(|(&k, &v)| (k, v)))
            .collect();
        leaked_intervs.sort_unstable();
        for ((node, l), n) in leaked_intervs {
            check.violations.push(flash_check::Violation {
                kind: "interv-leak",
                node,
                line: l,
                detail: format!("{n} bus intervention(s) still queued at quiescence"),
            });
        }
        // Provisional rogue-copy observations had to be repaired by an
        // invalidation before quiescence; any survivor is a real
        // coherence violation (a rogue copy the protocol never cleaned
        // up). Sorted for deterministic output.
        let mut stale: Vec<(Cycle, flash_check::Violation)> =
            check.provisional_rogues.drain().map(|(_, v)| v).collect();
        stale.sort_by_key(|(at, v)| (*at, v.node, v.line));
        for (at, mut v) in stale {
            v.detail = format!("{} (observed at cycle {at}, never invalidated)", v.detail);
            check.violations.push(v);
        }
        for node in 0..self.cfg.nodes {
            let diraddrs: Vec<u64> = touched
                .iter()
                .filter(|&&l| self.cfg.placement.home_of(Addr::new(l), self.cfg.nodes).0 == node)
                .map(|&l| dir_addr(Addr::new(l)))
                .collect();
            let mem = self.chips[node as usize].proto_mem();
            check.violations.extend(flash_check::check_pointer_store(
                mem,
                diraddrs.iter(),
                flash_protocol::dir::DEFAULT_PS_CAPACITY,
                node,
            ));
        }
        for chip in &self.chips {
            if let Some(mdc) = chip.mdc() {
                if let Err(e) = mdc.audit() {
                    check.violations.push(flash_check::Violation {
                        kind: "mdc-integrity",
                        node: chip.node().0,
                        line: 0,
                        detail: e,
                    });
                }
            }
        }
        self.check = Some(check);
    }

    /// Latest processor finish time.
    pub fn exec_cycles(&self) -> u64 {
        self.finish.iter().map(|c| c.raw()).max().unwrap_or(0)
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The machine's processors (stats inspection).
    pub fn procs(&self) -> &[Processor] {
        &self.procs
    }

    /// The machine's MAGIC chips (stats inspection).
    pub fn chips(&self) -> &[MagicChip] {
        &self.chips
    }

    /// The network model (stats inspection; traffic totals merged over
    /// all shards).
    pub fn network(&self) -> &NetModel {
        &self.net
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The shard count this machine actually runs with (the configured
    /// knob clamped to the node count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Wheel-vs-heap push routing summed over every shard queue (event
    /// scheduler health at scale).
    pub fn queue_push_routing(&self) -> (u64, u64) {
        let mut wheel = 0;
        let mut heap = 0;
        for st in &self.shards {
            let (w, h) = st.queue.push_routing();
            wheel += w;
            heap += h;
        }
        (wheel, heap)
    }

    /// Interventions that had to be deferred waiting for in-flight data.
    pub fn interv_deferrals(&self) -> u64 {
        self.interv_deferrals
    }

    /// Cumulative fault-injection statistics, when a plan is armed
    /// (summed over shards).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        let mut acc: Option<FaultStats> = None;
        for st in &self.shards {
            if let Some(inj) = &st.injector {
                acc.get_or_insert_with(FaultStats::default)
                    .absorb(inj.stats());
            }
        }
        acc
    }

    /// Assembles a structured diagnosis of the machine's current state:
    /// who is waiting on what, which directory lines are PENDING, which
    /// links the fault layer holds, and the recent messages touching the
    /// suspect lines. The watchdog calls this to build
    /// [`RunResult::Wedged`]; callers can also invoke it after
    /// `Deadlocked` or `BudgetExhausted` to render the same report.
    pub fn diagnose(&self, reason: &str) -> WedgeReport {
        let n = self.procs.len();
        let mut inbox_queued = vec![0usize; n];
        let mut proc_queued = vec![0usize; n];
        let mut net_held = vec![0usize; n];
        // Suspect lines: anything queued, outstanding in an MSHR, or
        // recently observed by the trace ring.
        let mut suspects: BTreeSet<u64> = BTreeSet::new();
        for st in &self.shards {
            for (_, ev) in st.queue.iter() {
                match ev {
                    Ev::ProcRun(_) | Ev::Arrival { .. } => {}
                    Ev::MagicIn { node, wire, .. } => {
                        inbox_queued[*node as usize] += 1;
                        suspects.insert(wire.addr.line().raw());
                    }
                    Ev::ProcDeliver { node, pm, .. } => {
                        proc_queued[*node as usize] += 1;
                        suspects.insert(pm.addr.line().raw());
                    }
                    Ev::NetSend { msg } => {
                        net_held[msg.src.index()] += 1;
                        suspects.insert(msg.addr.line().raw());
                    }
                }
            }
        }
        let nodes: Vec<NodeWedge> = (0..n)
            .map(|i| {
                let mshrs: Vec<MshrSnap> = self.procs[i]
                    .mshr_entries()
                    .map(|m| {
                        suspects.insert(m.line.line().raw());
                        MshrSnap {
                            line: m.line.line().raw(),
                            kind: match m.kind {
                                flash_cpu::MissKind::Read => "Read",
                                flash_cpu::MissKind::Write => "Write",
                                flash_cpu::MissKind::Upgrade => "Upgrade",
                            },
                            issued_at: m.issued_at.raw(),
                        }
                    })
                    .collect();
                NodeWedge {
                    node: i as u16,
                    state: match self.parked[i] {
                        Park::Scheduled => "scheduled",
                        Park::WaitReply => "wait-reply",
                        Park::WaitSync => "wait-sync",
                        Park::WaitWork => "wait-work",
                        Park::Done => "done",
                    },
                    mshrs,
                    inbox_queued: inbox_queued[i],
                    proc_queued: proc_queued[i],
                    net_held: net_held[i],
                    // Arrived-but-unadmitted open-loop references. A big
                    // backlog with quiet queues is overload; a big
                    // backlog with a PENDING line is a protocol wedge
                    // starving admission.
                    arrivals_backlog: self.feeds[i].as_ref().map_or(0, |f| f.backlog.len()),
                }
            })
            .collect();
        suspects.extend(self.ring.lines());
        let pending_lines: Vec<PendingLine> = suspects
            .iter()
            .filter_map(|&raw| {
                let line = Addr::new(raw);
                let home = self.cfg.placement.home_of(line, self.cfg.nodes);
                let header = self.chips[home.index()].peek_header(dir_addr(line));
                header.pending().then_some(PendingLine {
                    line: raw,
                    home: home.0,
                    header: header.0,
                })
            })
            .collect();
        // Recent traffic: everything touching a PENDING line when one
        // stands out, otherwise the overall tail.
        let recent: Vec<TraceEntry> = if pending_lines.is_empty() {
            let all = self.ring.entries();
            all[all.len().saturating_sub(RECENT_TAIL)..].to_vec()
        } else {
            let hot: BTreeSet<u64> = pending_lines.iter().map(|p| p.line).collect();
            self.ring
                .entries()
                .into_iter()
                .filter(|e| hot.contains(&e.line))
                .collect()
        };
        WedgeReport {
            at: self.now.raw(),
            window: self.cfg.watchdog_window,
            last_progress_at: self.last_progress.raw(),
            reason: reason.to_string(),
            done: self.done,
            total: n,
            nodes,
            pending_lines,
            stalled_links: {
                let mut links = Vec::new();
                for st in &self.shards {
                    if let Some(inj) = &st.injector {
                        links.extend(inj.held_links());
                    }
                }
                links
            },
            fault_stats: self.fault_stats(),
            recent,
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::node_addr;
    use flash_cpu::{SliceStream, WorkItem};

    fn machine_with(cfg: MachineConfig, per_proc: Vec<Vec<WorkItem>>) -> Machine {
        let streams = per_proc
            .into_iter()
            .map(|v| Box::new(SliceStream::new(v)) as Box<dyn RefStream>)
            .collect();
        Machine::new(cfg, streams)
    }

    fn idle(n: usize) -> Vec<Vec<WorkItem>> {
        vec![vec![WorkItem::Busy(4)]; n]
    }

    /// Runs to completion or panics with the full structured diagnosis
    /// (the `WedgeReport` path) instead of a bare "stuck".
    fn must_complete(m: &mut Machine, budget: u64) -> u64 {
        match m.run(budget) {
            RunResult::Completed { exec_cycles } => exec_cycles,
            RunResult::Wedged { report } => panic!("{report}"),
            other => panic!("{}", m.diagnose(&format!("{other:?}"))),
        }
    }

    #[test]
    fn open_loop_machine_completes_and_accounts_admissions() {
        let spec = flash_traffic::TrafficSpec::poisson(4, 64, 300, 50, 42);
        let mut m = Machine::new_open_loop(MachineConfig::flash(4), spec.sources());
        let cycles = must_complete(&mut m, 50_000_000);
        assert!(cycles > 0);
        let stats = m.traffic_stats().expect("open-loop machine");
        assert_eq!(stats.len(), 4);
        for (node, t) in stats {
            assert_eq!(t.arrivals, 300, "node {node} must see every arrival");
            assert_eq!(t.admitted, 300, "node {node} must admit every arrival");
            assert!(
                t.peak_backlog >= 1,
                "every arrival passes through the backlog"
            );
        }
        // Every admitted reference executed: per-node reads + writes
        // equal the spec's per-node budget.
        for p in m.procs() {
            let s = p.stats();
            assert_eq!(s.reads + s.writes, 300);
        }
    }

    #[test]
    fn open_loop_reports_identical_across_shard_counts() {
        let spec = flash_traffic::TrafficSpec::poisson(8, 128, 150, 40, 7);
        let run = |shards: usize| {
            let cfg = MachineConfig::flash(8)
                .with_shards(shards)
                .with_observe(true);
            let mut m = Machine::new_open_loop(cfg, spec.sources());
            let cycles = must_complete(&mut m, 50_000_000);
            let latency = m.latency_report().expect("observed").to_json();
            (cycles, latency, m.traffic_stats())
        };
        let base = run(1);
        assert_eq!(run(2), base, "2 shards must be byte-identical");
        assert_eq!(run(4), base, "4 shards must be byte-identical");
    }

    #[test]
    fn overload_backlog_is_visible_in_diagnose() {
        // One reference per cycle over an object set far larger than the
        // cache: nearly every reference is a multi-ten-cycle miss, so
        // offered load sits far beyond capacity and arrivals outpace
        // admission — the backlog must grow.
        let mut spec = flash_traffic::TrafficSpec::poisson(2, 65_536, 50_000, 1, 3);
        spec.write_permille = 0;
        let mut m = Machine::new_open_loop(MachineConfig::flash(2), spec.sources());
        match m.run(20_000) {
            RunResult::BudgetExhausted => {}
            r => panic!("expected budget exhaustion under overload, got {r:?}"),
        }
        let report = m.diagnose("offered load exceeds capacity");
        assert!(
            report.nodes.iter().any(|n| n.arrivals_backlog > 100),
            "overload must surface as admission backlog:\n{report}"
        );
        let stats = m.traffic_stats().expect("open-loop machine");
        assert!(
            stats.iter().any(|(_, t)| t.admitted < t.arrivals),
            "arrivals must outpace admission under overload"
        );
    }

    #[test]
    fn empty_open_loop_source_retires_immediately() {
        struct Empty;
        impl flash_traffic::ArrivalSource for Empty {
            fn next_arrival(&mut self) -> Option<(Cycle, WorkItem)> {
                None
            }
        }
        let sources: Vec<Box<dyn flash_traffic::ArrivalSource>> =
            (0..2).map(|_| Box::new(Empty) as _).collect();
        let mut m = Machine::new_open_loop(MachineConfig::flash(2), sources);
        let cycles = must_complete(&mut m, 10_000);
        assert!(cycles <= 1, "nothing to do, nothing to charge: {cycles}");
        let stats = m.traffic_stats().expect("feeds attached");
        assert!(stats.iter().all(|(_, t)| t.arrivals == 0));
    }

    #[test]
    fn mixed_open_and_closed_loop_nodes_coexist() {
        let spec = flash_traffic::TrafficSpec::poisson(4, 64, 200, 30, 9);
        let mut m = machine_with(
            MachineConfig::flash(4),
            vec![
                vec![WorkItem::Busy(4)], // replaced by the feed below
                vec![WorkItem::Read(node_addr(NodeId(0), 0)), WorkItem::Busy(400)],
                vec![WorkItem::Busy(40)],
                vec![WorkItem::Write(node_addr(NodeId(1), 256))],
            ],
        );
        m.attach_open_loop(NodeId(0), spec.source_for(0));
        must_complete(&mut m, 50_000_000);
        let stats = m.traffic_stats().expect("one fed node");
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, 0);
        assert_eq!(stats[0].1.admitted, 200);
    }

    #[test]
    fn open_loop_latency_report_has_percentiles_per_class() {
        let spec = flash_traffic::TrafficSpec::poisson(4, 64, 120, 25, 5);
        let cfg = MachineConfig::flash(4).with_observe(true);
        let mut m = Machine::new_open_loop(cfg, spec.sources());
        must_complete(&mut m, 50_000_000);
        let report = m.latency_report().expect("observed");
        let all = report.rows.last().expect("merged row");
        assert_eq!(all.class, "all");
        assert!(all.count > 0, "misses must have been tracked");
        assert!(all.p50 <= all.p99 && all.p99 <= all.p999 && all.p999 <= all.max);
        let class_sum: u64 = report.rows[..report.rows.len() - 1]
            .iter()
            .map(|r| r.count)
            .sum();
        assert_eq!(class_sum, all.count, "the merged row is the class sum");
        assert_eq!(
            report.traffic.len(),
            4,
            "per-node admission stats ride along"
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"flash-latency-v1\""));
        assert!(json.contains("\"admission_wait_sum\""));
    }

    #[test]
    fn empty_machine_completes() {
        for cfg in [
            MachineConfig::flash(4),
            MachineConfig::ideal(4),
            MachineConfig::flash_cost_table(4),
        ] {
            let mut m = machine_with(cfg, idle(4));
            match m.run(10_000) {
                RunResult::Completed { exec_cycles } => assert_eq!(exec_cycles, 1),
                r => panic!("unexpected {r:?}"),
            }
        }
    }

    /// Read stall of the final read in `items` relative to `warm_items`
    /// (which excludes it), isolating warm-path latency from cold MAGIC
    /// cache effects — the paper's Table 3.3 assumes warm steady state.
    fn marginal_read_stall(
        cfg: &MachineConfig,
        procs: u16,
        warm_items: Vec<WorkItem>,
        items: Vec<WorkItem>,
    ) -> f64 {
        let idle: Vec<WorkItem> = vec![WorkItem::Busy(1)];
        let run = |it: Vec<WorkItem>| {
            let mut streams = vec![it];
            for _ in 1..procs {
                streams.push(idle.clone());
            }
            let mut m = machine_with(cfg.clone(), streams);
            must_complete(&mut m, 1_000_000);
            m.procs()[0].stats().read_stall_q as f64 / 4.0
        };
        run(items) - run(warm_items)
    }

    #[test]
    fn single_local_read_latency_matches_table_3_3() {
        // Warm-up read to a neighbouring line (same MDC header line), then
        // a timed read: ~27 cycles on FLASH, 24 on ideal (paper Table 3.3).
        let a = node_addr(NodeId(0), 0x2000);
        let warm = node_addr(NodeId(0), 0x2080);
        let warm_items = vec![WorkItem::Read(warm), WorkItem::Busy(4000)];
        let mut items = warm_items.clone();
        items.push(WorkItem::Read(a));
        for (cfg, expect) in [
            (MachineConfig::flash(1), 27u64),
            (MachineConfig::ideal(1), 24u64),
        ] {
            let per_miss = marginal_read_stall(&cfg, 1, warm_items.clone(), items.clone());
            assert!(
                (per_miss - expect as f64).abs() <= 3.0,
                "per-miss read stall {per_miss:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn remote_read_latency_roughly_matches_table_3_3() {
        // Processor 0 reads a line homed on node 1 (clean): FLASH 111,
        // ideal 92 (paper Table 3.3), measured after warming the remote
        // handler paths and MDC header line.
        let a = node_addr(NodeId(1), 0x4000);
        let warm = node_addr(NodeId(1), 0x4080);
        let warm_items = vec![WorkItem::Read(warm), WorkItem::Busy(8000)];
        let mut items = warm_items.clone();
        items.push(WorkItem::Read(a));
        // Small machines have shorter meshes; pin the paper's 16-node
        // 22-cycle average transit for comparability with Table 3.3.
        let mut fcfg = MachineConfig::flash(2);
        fcfg.net.transit_override = Some(22);
        let mut icfg = MachineConfig::ideal(2);
        icfg.net.transit_override = Some(22);
        for (cfg, expect, tol) in [(fcfg, 111.0, 15.0), (icfg, 92.0, 12.0)] {
            let stall = marginal_read_stall(&cfg, 2, warm_items.clone(), items.clone());
            assert!(
                (stall - expect).abs() <= tol,
                "remote clean read stall {stall:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn dirty_remote_transfer_works() {
        // P1 writes a line homed on node 0; P0 then reads it (local read,
        // dirty remote). Both machines must complete with correct traffic.
        let a = node_addr(NodeId(0), 0x8000);
        let w = vec![WorkItem::Write(a), WorkItem::Barrier, WorkItem::Busy(4)];
        let r = vec![WorkItem::Barrier, WorkItem::Read(a), WorkItem::Busy(4)];
        for cfg in [
            MachineConfig::flash(2),
            MachineConfig::ideal(2),
            MachineConfig::flash_cost_table(2),
        ] {
            let kind = cfg.controller;
            let mut m = machine_with(cfg, vec![r.clone(), w.clone()]);
            match m.run(1_000_000) {
                RunResult::Completed { exec_cycles } => {
                    assert!(exec_cycles > 100, "{kind:?}: too fast ({exec_cycles})");
                }
                r => panic!("{kind:?}: {r:?}"),
            }
            // The read was classified local-dirty-remote at the home.
            let class = m.chips()[0].stats().read_class;
            assert_eq!(class.local_dirty_remote, 1, "{kind:?}");
        }
    }

    #[test]
    fn barrier_synchronizes_all_processors() {
        let a = |n: u16| node_addr(NodeId(n), 0x100);
        let mk = |n: u16| {
            vec![
                WorkItem::Busy(400 * (n as u64 + 1)), // staggered arrival
                WorkItem::Barrier,
                WorkItem::Read(a(n)),
                WorkItem::Busy(4),
            ]
        };
        let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
        let exec_cycles = must_complete(&mut m, 1_000_000);
        // The fastest processor waited for the slowest: sync stall > 0.
        assert!(m.procs()[0].stats().sync_stall_q > 0);
        assert_eq!(m.procs()[3].stats().sync_stall_q, 0);
        assert!(exec_cycles >= 400);
    }

    #[test]
    fn locks_serialize_critical_sections() {
        let mk = |_n: u16| {
            vec![
                WorkItem::Lock(7),
                WorkItem::Busy(400),
                WorkItem::Unlock(7),
                WorkItem::Busy(4),
            ]
        };
        let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
        let exec_cycles = must_complete(&mut m, 1_000_000);
        // Four 100-cycle critical sections must serialize.
        assert!(exec_cycles >= 400, "exec {exec_cycles}");
        let total_sync: u64 = m.procs().iter().map(|p| p.stats().sync_stall_q).sum();
        assert!(total_sync > 0);
    }

    #[test]
    fn sharing_and_invalidation_round_trip() {
        // All processors read a line homed on node 0, then P1 writes it.
        let a = node_addr(NodeId(0), 0xc000);
        let mk = |n: u16| {
            let mut v = vec![WorkItem::Read(a), WorkItem::Barrier];
            if n == 1 {
                v.push(WorkItem::Write(a));
            }
            v.push(WorkItem::Barrier);
            v.push(WorkItem::Busy(4));
            v
        };
        for cfg in [MachineConfig::flash(4), MachineConfig::ideal(4)] {
            let kind = cfg.controller;
            let mut m = machine_with(cfg, (0..4).map(mk).collect());
            match m.run(1_000_000) {
                RunResult::Completed { .. } => {}
                r => panic!("{kind:?}: {r:?}"),
            }
            let invals: u64 = m.procs().iter().map(|p| p.stats().invals_received).sum();
            assert!(
                invals >= 2,
                "{kind:?}: sharers must be invalidated, got {invals}"
            );
        }
    }

    #[test]
    fn dma_write_invalidates_cached_copies() {
        let a = node_addr(NodeId(0), 0x3000);
        let items = vec![
            WorkItem::Read(a),
            WorkItem::Busy(40_000),
            WorkItem::Read(a),
            WorkItem::Busy(4),
        ];
        let mut m = machine_with(
            MachineConfig::flash(2),
            vec![items, vec![WorkItem::Busy(1)]],
        );
        m.add_dma_write(Cycle::new(2_000), NodeId(0), a);
        must_complete(&mut m, 1_000_000);
        assert_eq!(m.procs()[0].stats().invals_received, 1);
        // Second read misses again after the DMA invalidation.
        assert_eq!(m.procs()[0].stats().read_misses, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = node_addr(NodeId(1), 0x9000);
        let mk = |n: u16| {
            vec![
                WorkItem::Read(node_addr(NodeId(n), 0x100)),
                WorkItem::Write(a),
                WorkItem::Barrier,
                WorkItem::Read(a),
                WorkItem::Busy(8),
            ]
        };
        let run_once = || {
            let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
            match m.run(1_000_000) {
                RunResult::Completed { exec_cycles } => exec_cycles,
                r => panic!("{r:?}"),
            }
        };
        assert_eq!(run_once(), run_once());
    }

    /// A small sharing workload with remote traffic on every path.
    fn sharing_workload(n: u16) -> Vec<Vec<WorkItem>> {
        let a = node_addr(NodeId(0), 0xc000);
        (0..n)
            .map(|i| {
                let mut v = vec![WorkItem::Read(a), WorkItem::Barrier];
                if i == 1 {
                    v.push(WorkItem::Write(a));
                }
                v.push(WorkItem::Barrier);
                v.push(WorkItem::Read(node_addr(NodeId(i), 0x100)));
                v.push(WorkItem::Busy(8));
                v
            })
            .collect()
    }

    #[test]
    fn armed_but_zeroed_fault_plan_is_timing_invisible() {
        // The acceptance pin: with every rate zeroed, the injector is
        // constructed and every hook is called — yet no RNG draw happens
        // and the schedule is cycle-identical to a disarmed machine.
        let run = |faults: crate::FaultPlan| {
            let cfg = MachineConfig::flash(4).with_faults(faults);
            let mut m = machine_with(cfg, sharing_workload(4));
            let exec = must_complete(&mut m, 1_000_000);
            (exec, m.fault_stats())
        };
        let (base, none_stats) = run(crate::FaultPlan::none());
        let (armed, zero_stats) = run(crate::FaultPlan::zeroed(7));
        assert_eq!(base, armed, "zeroed plan perturbed timing");
        assert_eq!(none_stats, None);
        assert_eq!(zero_stats, Some(flash_fault::FaultStats::default()));
    }

    #[test]
    fn light_faults_delay_but_converge() {
        let base = {
            let mut m = machine_with(MachineConfig::flash(4), sharing_workload(4));
            must_complete(&mut m, 10_000_000)
        };
        let cfg = MachineConfig::flash(4).with_faults(crate::FaultPlan::stress(11));
        let mut m = machine_with(cfg, sharing_workload(4));
        let exec = must_complete(&mut m, 10_000_000);
        assert!(
            exec >= base,
            "faults may only slow the machine down ({exec} < {base})"
        );
        let stats = m.fault_stats().expect("injector armed");
        assert!(
            stats.hop_spikes + stats.link_stalls + stats.ni_freezes + stats.pp_bursts > 0,
            "stress plan injected nothing: {stats:?}"
        );
    }

    #[test]
    fn fault_schedules_replay_byte_identically() {
        let run = |seed: u64| {
            let cfg = MachineConfig::flash(4).with_faults(crate::FaultPlan::stress(seed));
            let mut m = machine_with(cfg, sharing_workload(4));
            let exec = must_complete(&mut m, 10_000_000);
            (exec, m.fault_stats().unwrap())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0, "different seeds, different schedule");
    }

    #[test]
    fn permanent_link_outage_wedges_with_diagnosis() {
        // Node 2 takes dirty ownership of a line homed on node 1; then
        // the 1->2 link goes down for good. Node 0's read reaches the
        // home, which marks the line PENDING and forwards to node 2 —
        // where the forward is held forever. The watchdog must diagnose
        // exactly that: a wedge with the held link, the PENDING line,
        // and node 0 waiting on its read MSHR.
        let a = node_addr(NodeId(1), 0x4000);
        let streams = vec![
            vec![WorkItem::Busy(20_000), WorkItem::Read(a), WorkItem::Busy(4)],
            vec![WorkItem::Busy(4)],
            vec![WorkItem::Write(a), WorkItem::Busy(4)],
        ];
        // Busy items are quarter-cycles: node 0 reads at ~cycle 5_000,
        // after the outage begins at 1_000 (node 2's write completed by
        // ~250, before it).
        let faults = crate::FaultPlan::zeroed(0).with_link_down(1, 2, 1_000, None);
        let cfg = MachineConfig::flash(3)
            .with_faults(faults)
            .with_watchdog(100_000);
        let mut m = machine_with(cfg, streams);
        let RunResult::Wedged { report } = m.run(10_000_000) else {
            panic!("expected a wedge");
        };
        assert_eq!(report.window, 100_000);
        assert!(report.at > report.last_progress_at);
        assert_eq!(report.total, 3);
        // The held link is named, and it is the scripted permanent one.
        assert_eq!(report.stalled_links.len(), 1);
        let l = &report.stalled_links[0];
        assert_eq!((l.src, l.dst), (1, 2));
        assert!(l.permanent);
        assert!(l.holds > 0);
        // The line is PENDING at its home.
        assert!(
            report
                .pending_lines
                .iter()
                .any(|p| p.home == 1 && p.line == a.line().raw()),
            "pending lines: {:?}",
            report.pending_lines
        );
        // Node 0 is blocked on its read of that line.
        let n0 = &report.nodes[0];
        assert_eq!(n0.state, "wait-reply");
        assert!(n0
            .mshrs
            .iter()
            .any(|s| s.line == a.line().raw() && s.kind == "Read"));
        // The rendered report names the essentials.
        let text = report.to_string();
        assert!(text.contains("WEDGE"));
        assert!(text.contains("1->2"));
        assert!(text.contains("PENDING directory lines"));
        // Recent traffic on the suspect line was captured.
        assert!(report.recent.iter().any(|e| e.line == a.line().raw()));
    }

    #[test]
    fn finite_link_outage_releases_and_completes() {
        let a = node_addr(NodeId(1), 0x4000);
        let streams = vec![
            vec![WorkItem::Busy(20_000), WorkItem::Read(a), WorkItem::Busy(4)],
            vec![WorkItem::Busy(4)],
            vec![WorkItem::Write(a), WorkItem::Busy(4)],
        ];
        let faults = crate::FaultPlan::zeroed(0).with_link_down(1, 2, 1_000, Some(60_000));
        let cfg = MachineConfig::flash(3)
            .with_faults(faults)
            .with_watchdog(100_000);
        let mut m = machine_with(cfg, streams);
        let exec = must_complete(&mut m, 10_000_000);
        assert!(exec >= 60_000, "the read had to wait out the outage");
        assert!(m.fault_stats().unwrap().link_holds > 0);
    }

    #[test]
    fn diagnose_is_available_without_faults() {
        let mut m = machine_with(MachineConfig::flash(2), idle(2));
        must_complete(&mut m, 10_000);
        let report = m.diagnose("post-run inspection");
        assert_eq!(report.done, 2);
        assert!(report.pending_lines.is_empty());
        assert!(report.stalled_links.is_empty());
        assert_eq!(report.fault_stats, None);
    }

    #[test]
    fn ideal_never_slower_than_flash() {
        let a = node_addr(NodeId(1), 0x9000);
        let mk = |n: u16| {
            let mut v = Vec::new();
            for i in 0..50u64 {
                v.push(WorkItem::Read(node_addr(NodeId(n), i * 128)));
                v.push(WorkItem::Write(
                    a.offset(((n as u64 * 50 + i) % 64) * 2 * 128),
                ));
                v.push(WorkItem::Busy(16));
            }
            v.push(WorkItem::Barrier);
            v
        };
        let time = |cfg: MachineConfig| {
            let mut m = machine_with(cfg, (0..4).map(mk).collect());
            match m.run(10_000_000) {
                RunResult::Completed { exec_cycles } => exec_cycles,
                r => panic!("{r:?}"),
            }
        };
        let flash = time(MachineConfig::flash(4));
        let ideal = time(MachineConfig::ideal(4));
        assert!(
            ideal <= flash,
            "ideal ({ideal}) must not be slower than FLASH ({flash})"
        );
    }

    // ---- sharded execution ----------------------------------------------

    #[test]
    fn shard_partition_is_consistent() {
        for &nodes in &[1u16, 2, 3, 4, 16, 64, 255, 1024] {
            for want in 1..=9usize {
                let shards = want.min(nodes as usize);
                let mut seen = 0u32;
                for s in 0..shards {
                    let (lo, hi) = shard_bounds(nodes, shards, s);
                    assert!(lo <= hi, "empty-or-negative shard");
                    for n in lo..hi {
                        assert_eq!(shard_of(nodes, shards, n), s);
                        let (s2, li) = locate(nodes, shards, n);
                        assert_eq!((s2, li), (s, (n - lo) as usize));
                        seen += 1;
                    }
                }
                assert_eq!(seen, u32::from(nodes), "partition must cover every node");
            }
        }
    }

    /// Everything externally visible about a finished run, as one string.
    fn fingerprint(m: &Machine) -> String {
        let procs: Vec<String> = m
            .procs()
            .iter()
            .map(|p| format!("{:?}", p.stats()))
            .collect();
        format!(
            "exec={} now={} msgs={} hops={:.6} interv={} procs={procs:?}",
            m.exec_cycles(),
            m.now().raw(),
            m.network().messages(),
            m.network().mean_hops(),
            m.interv_deferrals(),
        )
    }

    #[test]
    fn results_are_invariant_across_shard_counts() {
        let run = |s: usize| {
            let mut m = machine_with(MachineConfig::flash(4).with_shards(s), sharing_workload(4));
            assert!(matches!(m.run(1_000_000), RunResult::Completed { .. }));
            fingerprint(&m)
        };
        let base = run(1);
        for s in [2, 3, 4, 7] {
            assert_eq!(run(s), base, "shards={s} diverged from the serial run");
        }
    }

    #[test]
    fn locks_and_observation_are_shard_invariant() {
        let workload = |n: u16| -> Vec<Vec<WorkItem>> {
            let hot = node_addr(NodeId(0), 0xd000);
            (0..n)
                .map(|i| {
                    vec![
                        WorkItem::Busy(4 * u64::from(i)),
                        WorkItem::Lock(3),
                        WorkItem::Read(hot),
                        WorkItem::Write(hot),
                        WorkItem::Unlock(3),
                        WorkItem::Barrier,
                        WorkItem::Read(node_addr(NodeId(i), 0x80)),
                    ]
                })
                .collect()
        };
        let run = |s: usize| {
            let cfg = MachineConfig::flash(4)
                .with_check(true)
                .with_observe(true)
                .with_shards(s);
            let mut m = machine_with(cfg, workload(4));
            assert!(matches!(m.run(2_000_000), RunResult::Completed { .. }));
            assert_eq!(m.check_violations(), vec![], "shards={s}");
            let trace = m.trace_json().expect("observing");
            (fingerprint(&m), trace)
        };
        let base = run(1);
        for s in [2, 3, 4] {
            assert_eq!(run(s), base, "shards={s} diverged from the serial run");
        }
    }

    #[test]
    fn fault_stress_is_shard_invariant() {
        let run = |s: usize| {
            let cfg = MachineConfig::flash(4)
                .with_faults(crate::FaultPlan::stress(11))
                .with_shards(s);
            let mut m = machine_with(cfg, sharing_workload(4));
            assert!(matches!(m.run(4_000_000), RunResult::Completed { .. }));
            let stats = format!("{:?}", m.fault_stats().expect("armed"));
            (fingerprint(&m), stats)
        };
        let base = run(1);
        for s in [2, 4] {
            assert_eq!(run(s), base, "shards={s} diverged from the serial run");
        }
    }

    #[test]
    fn dma_writes_are_shard_invariant() {
        let run = |s: usize| {
            let mk = |i: u16| {
                let a = node_addr(NodeId(2), 0x400);
                vec![
                    WorkItem::Read(a),
                    WorkItem::Busy(40 + u64::from(i)),
                    WorkItem::Read(a),
                ]
            };
            let mut m = machine_with(
                MachineConfig::flash(4).with_shards(s),
                (0..4).map(mk).collect(),
            );
            m.add_dma_write(Cycle::new(60), NodeId(2), node_addr(NodeId(2), 0x400));
            assert!(matches!(m.run(1_000_000), RunResult::Completed { .. }));
            fingerprint(&m)
        };
        let base = run(1);
        for s in [2, 3, 4] {
            assert_eq!(run(s), base, "shards={s} diverged from the serial run");
        }
    }
}
