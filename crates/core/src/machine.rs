//! The machine: nodes, network, and the event loop (the FlashLite role).

use crate::config::MachineConfig;
use flash_cpu::{CpuOut, Processor, RefStream, RunOutcome};
use flash_engine::{Addr, Cycle, EventQueue, NodeId};
use flash_magic::{ControllerKind, Emission, MagicChip};
use flash_net::{Mesh, NetModel};
use flash_protocol::fields::aux;
use flash_protocol::{dir_addr, InMsg, JumpTable, Msg, MsgType, ProcMsg};
use std::collections::{HashMap, VecDeque};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Resume a processor's reference stream.
    ProcRun(u16),
    /// A message is ready at a node's inbox (inbound latency paid).
    MagicIn { node: u16, wire: Wire },
    /// MAGIC delivers a message to its local processor.
    ProcDeliver { node: u16, pm: ProcMsg, tries: u32 },
}

/// A message on the wire (or on a node's internal buses).
#[derive(Debug, Clone, Copy)]
struct Wire {
    mtype: MsgType,
    src: NodeId,
    addr: Addr,
    aux: u64,
    with_data: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Park {
    Scheduled,
    WaitReply,
    WaitSync,
    Done,
}

#[derive(Debug, Default)]
struct LockState {
    held: bool,
    waiters: VecDeque<(u16, Cycle)>,
}

/// Checked-mode bookkeeping (allocated only when `cfg.check`).
#[derive(Debug, Default)]
struct CheckCtx {
    /// Every 128-byte line that ever saw protocol activity.
    touched: std::collections::BTreeSet<u64>,
    /// Invariant violations detected so far (machine-level checks; the
    /// per-chip differential oracle keeps its own list).
    violations: Vec<flash_check::Violation>,
    /// In-flight `PInval` deliveries, keyed by (node, line address).
    ///
    /// The protocol acknowledges an invalidation as soon as the sharer's
    /// MAGIC processes `NInval` — the bus-side `PInval` rides a later
    /// `ProcDeliver` event, so the stale copy legitimately outlives the
    /// directory's PENDING window (the paper's relaxed-consistency
    /// ordering, §2). A copy with a queued `PInval` is logically dead and
    /// exempt from the coherence checks; one still queued at quiescence
    /// is a message-conservation violation.
    inflight_invals: std::collections::HashMap<(u16, u64), u32>,
    /// In-flight `PIntervGet`/`PIntervGetX` deliveries, keyed the same
    /// way. A copy with a queued intervention is mid-handoff: the home
    /// may have already granted (exclusive) ownership to the requester
    /// while this bus transaction — possibly deferred for many retries —
    /// has yet to invalidate or downgrade the old owner's copy. Such a
    /// copy is exempt from the coherence checks until the intervention
    /// executes; one still queued at quiescence is a conservation
    /// violation.
    inflight_intervs: std::collections::HashMap<(u16, u64), u32>,
    /// Rogue-copy observations (`shared-under-dirty`, `copy-not-listed`)
    /// awaiting repair, keyed by (copy node, line address), with the
    /// cycle of first observation.
    ///
    /// The stale-transfer self-repair race (DESIGN.md, race rule 2) makes
    /// these states legal transiently: a deferred intervention can answer
    /// a forward the home has since abandoned, granting a rogue shared
    /// copy via a stale `NPut`; the home's `ni_swb` stale branch repairs
    /// it with fire-and-forget `NInval`s. Between the rogue copy
    /// installing and the repair `PInval` reaching the bus there is
    /// nothing local to exempt on — the header is neither `PENDING` nor
    /// is a `PInval` queued yet — so the observation is held here as
    /// *provisional*: discharged when a `PInval` for that (node, line)
    /// delivers, and promoted to a real violation if it survives to
    /// quiescence. (Whether the rogue shows up as `shared-under-dirty` or
    /// `copy-not-listed` depends only on what the header looks like when
    /// the checker happens to observe the window.)
    provisional_rogues: std::collections::HashMap<(u16, u64), (Cycle, flash_check::Violation)>,
}

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// Every processor finished its stream.
    Completed {
        /// Latest processor finish time = application execution time.
        exec_cycles: u64,
    },
    /// The cycle budget was exhausted first.
    BudgetExhausted,
    /// The event queue drained with processors still unfinished — a
    /// protocol or workload deadlock (e.g. unbalanced barriers).
    Deadlocked {
        /// Number of processors that never finished.
        stuck: usize,
    },
}

/// A full machine instance: processors, MAGIC chips, memory, network.
pub struct Machine {
    cfg: MachineConfig,
    procs: Vec<Processor>,
    chips: Vec<MagicChip>,
    net: NetModel,
    events: EventQueue<Ev>,
    now: Cycle,
    parked: Vec<Park>,
    barrier_waiters: Vec<(u16, Cycle)>,
    locks: HashMap<u32, LockState>,
    done: usize,
    finish: Vec<Cycle>,
    interv_deferrals: u64,
    check: Option<CheckCtx>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nodes", &self.cfg.nodes)
            .field("now", &self.now)
            .field("done", &self.done)
            .finish()
    }
}

/// Deferrals allowed for one intervention while the target's in-flight
/// grant lands (16 cycles apart). Beyond this the transaction is assumed
/// to be a request/forward cycle: the intervention reports a miss (the
/// home abandons the pending transaction) and the target's eventual grant
/// is poisoned so no stale copy is cached.
const MAX_INTERV_DEFERRALS: u32 = 64;

/// Line address to trace (set `FLASH_TRACE_ADDR=0x...` to dump every
/// message touching that 128-byte line to stderr).
fn trace_addr() -> Option<u64> {
    static TRACE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| {
        std::env::var("FLASH_TRACE_ADDR")
            .ok()
            .and_then(|t| u64::from_str_radix(t.trim_start_matches("0x"), 16).ok())
            .map(|a| a & !127)
    })
}

impl Machine {
    /// Builds a machine running one reference stream per node.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != cfg.nodes`.
    pub fn new(cfg: MachineConfig, streams: Vec<Box<dyn RefStream>>) -> Self {
        assert_eq!(streams.len(), cfg.nodes as usize, "one stream per node");
        // Handler modules are immutable once scheduled; they are compiled
        // at most once per (codegen, monitoring) variant for the whole
        // process and shared across nodes, machines, and worker threads.
        let program = match (cfg.controller, cfg.monitoring) {
            (ControllerKind::FlashEmulated, false) => {
                Some(flash_protocol::handlers::compile_shared(cfg.codegen))
            }
            (ControllerKind::FlashEmulated, true) => Some(
                flash_protocol::handlers::compile_monitoring_shared(cfg.codegen),
            ),
            _ => None,
        };
        let jump = if cfg.monitoring && cfg.controller == ControllerKind::FlashEmulated {
            JumpTable::dpa_with_monitoring()
        } else {
            JumpTable::dpa_protocol()
        };
        let mut chips: Vec<MagicChip> = (0..cfg.nodes)
            .map(|i| {
                MagicChip::new(
                    cfg.controller,
                    NodeId(i),
                    program.clone(),
                    jump.clone(),
                    cfg.mem_timing,
                    cfg.speculation,
                    cfg.mdc_enabled,
                )
            })
            .collect();
        // Checked mode: the differential oracle replays every emulated
        // handler through the native protocol. The monitoring protocol
        // writes per-line counters the native oracle does not model, so
        // the oracle stays off there (invariant checks still run).
        if cfg.check && !cfg.monitoring {
            for chip in &mut chips {
                chip.enable_oracle();
            }
        }
        let procs: Vec<Processor> = streams
            .into_iter()
            .map(|s| Processor::new(cfg.cache_bytes, cfg.mshrs, s))
            .collect();
        let net = NetModel::new(Mesh::for_nodes(cfg.nodes), cfg.net);
        let mut events = EventQueue::new();
        for i in 0..cfg.nodes {
            events.push(Cycle::ZERO, Ev::ProcRun(i));
        }
        let n = cfg.nodes as usize;
        let check_enabled = cfg.check;
        Machine {
            cfg,
            procs,
            chips,
            net,
            events,
            now: Cycle::ZERO,
            parked: vec![Park::Scheduled; n],
            barrier_waiters: Vec::new(),
            locks: HashMap::new(),
            done: 0,
            finish: vec![Cycle::ZERO; n],
            interv_deferrals: 0,
            check: check_enabled.then(CheckCtx::default),
        }
    }

    /// Schedules a DMA write into `node`'s memory at time `at` (the OS
    /// workload's zero-latency disk, paper §3.4).
    pub fn add_dma_write(&mut self, at: Cycle, node: NodeId, addr: Addr) {
        self.events.push(
            at,
            Ev::MagicIn {
                node: node.0,
                wire: Wire {
                    mtype: MsgType::IoDmaWrite,
                    src: node,
                    addr: addr.line(),
                    aux: 0,
                    with_data: true,
                },
            },
        );
    }

    /// Runs until every processor finishes or `budget_cycles` elapse.
    pub fn run(&mut self, budget_cycles: u64) -> RunResult {
        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if t.raw() > budget_cycles {
                return RunResult::BudgetExhausted;
            }
            let ev_line = match &ev {
                Ev::ProcRun(_) => None,
                Ev::MagicIn { wire, .. } => Some(wire.addr.line()),
                Ev::ProcDeliver { pm, .. } => Some(pm.addr.line()),
            };
            match ev {
                Ev::ProcRun(n) => self.ev_proc_run(n),
                Ev::MagicIn { node, wire } => self.ev_magic_in(node, wire),
                Ev::ProcDeliver { node, pm, tries } => self.ev_proc_deliver(node, pm, tries),
            }
            if self.check.is_some() {
                if let Some(line) = ev_line {
                    self.check_line(line);
                }
            }
            if self.done == self.procs.len() && self.events.is_empty() {
                break;
            }
        }
        if self.done < self.procs.len() {
            return RunResult::Deadlocked {
                stuck: self.procs.len() - self.done,
            };
        }
        self.finalize_check();
        RunResult::Completed {
            exec_cycles: self.exec_cycles(),
        }
    }

    // ---- checked mode ----------------------------------------------------

    /// Whether checked mode is on.
    pub fn checked_mode(&self) -> bool {
        self.check.is_some()
    }

    /// Handler invocations the differential oracle has diffed so far,
    /// summed over all chips (0 when checked mode or the oracle is off).
    pub fn oracle_checked(&self) -> u64 {
        self.chips.iter().map(|c| c.oracle_checked()).sum()
    }

    /// All invariant violations detected so far: machine-level checks
    /// (coherence, directory audits, conservation) plus every chip's
    /// differential-oracle divergences. Empty on a healthy checked run —
    /// and always empty when checked mode is off.
    pub fn check_violations(&self) -> Vec<flash_check::Violation> {
        let mut out: Vec<flash_check::Violation> = self
            .check
            .as_ref()
            .map(|c| c.violations.clone())
            .unwrap_or_default();
        for chip in &self.chips {
            out.extend(chip.oracle_violations().iter().cloned());
        }
        out
    }

    /// Checks every invariant visible for one line right now: SWMR across
    /// all processor caches, directory structural audit, and cache/
    /// directory agreement at the line's home.
    fn check_line(&mut self, line: Addr) {
        let Some(ctx) = self.check.as_mut() else {
            return;
        };
        ctx.touched.insert(line.raw());
        let mut copies = Vec::new();
        for (i, p) in self.procs.iter().enumerate() {
            // A copy with a queued `PInval` is logically dead (the
            // sharer's MAGIC already acknowledged the invalidation), and
            // one with a queued `PIntervGet`/`PIntervGetX` is mid-handoff
            // (the requester may install before the bus transaction
            // lands). Both are exempt from SWMR/agreement.
            let key = (i as u16, line.raw());
            let doomed =
                ctx.inflight_invals.contains_key(&key) || ctx.inflight_intervs.contains_key(&key);
            if let Some(state) = p.cache().state_of(line) {
                if !doomed {
                    copies.push(flash_check::CachedCopy {
                        node: i as u16,
                        exclusive: state == flash_cpu::LineState::Exclusive,
                    });
                }
            }
            let in_use = p.outstanding_misses();
            if in_use > self.cfg.mshrs {
                ctx.violations.push(flash_check::Violation {
                    kind: "mshr-over",
                    node: i as u16,
                    line: line.raw(),
                    detail: format!("{in_use} MSHRs in use, limit {}", self.cfg.mshrs),
                });
            }
        }
        let home = self.cfg.placement.home_of(line, self.cfg.nodes);
        let da = dir_addr(line);
        let mem = self.chips[home.index()].proto_mem();
        ctx.violations
            .extend(flash_check::audit_directory(mem, da, home.0, false));
        if let Ok(sharers) = flash_check::walk_sharers(mem, da) {
            let h = flash_protocol::DirHeader(mem.load64(da));
            let now = self.now;
            for v in flash_check::check_line_coherence(h, &sharers, home.0, &copies, line.raw()) {
                // Per-copy cache/directory disagreements are legal for a
                // bounded window (stale-transfer self-repair) and are
                // attributed to the copy holder; held provisionally until
                // the copy is invalidated. See
                // `CheckCtx::provisional_rogues`. Everything else
                // (aggregate swmr, structural audits) reports
                // immediately.
                let provisional = matches!(
                    v.kind,
                    "shared-under-dirty"
                        | "copy-not-listed"
                        | "excl-wrong-owner"
                        | "excl-not-dirty"
                        | "excl-home-not-local"
                        | "home-copy-not-local"
                );
                if provisional {
                    ctx.provisional_rogues
                        .entry((v.node, v.line))
                        .or_insert((now, v));
                } else {
                    ctx.violations.push(v);
                }
            }
        }
    }

    /// End-of-run audits, called once the machine is quiescent (all
    /// processors done, event queue drained): every touched line must
    /// have retired its transactions (no `PENDING`, no residual acks,
    /// caches and directory in agreement), every MSHR must have drained,
    /// each node's pointer store must conserve entries, and the MAGIC
    /// cache tag stores must be internally consistent.
    fn finalize_check(&mut self) {
        if self.check.is_none() {
            return;
        }
        let touched: Vec<u64> = self
            .check
            .as_ref()
            .map(|c| c.touched.iter().copied().collect())
            .unwrap_or_default();
        for &raw in &touched {
            let line = Addr::new(raw);
            let home = self.cfg.placement.home_of(line, self.cfg.nodes);
            let da = dir_addr(line);
            let mem = self.chips[home.index()].proto_mem();
            let mut found = flash_check::audit_directory(mem, da, home.0, true);
            let ctx = self.check.as_mut().expect("checked mode");
            ctx.violations.append(&mut found);
            self.check_line(line);
        }
        let ctx = self.check.as_mut().expect("checked mode");
        for (i, p) in self.procs.iter().enumerate() {
            let n = p.outstanding_misses();
            if n != 0 {
                ctx.violations.push(flash_check::Violation {
                    kind: "mshr-leak",
                    node: i as u16,
                    line: 0,
                    detail: format!("{n} MSHRs still allocated at quiescence"),
                });
            }
        }
        // Message conservation: every scheduled `PInval` must have been
        // delivered by the time the event queue drains.
        let leaked: Vec<((u16, u64), u32)> =
            ctx.inflight_invals.iter().map(|(&k, &v)| (k, v)).collect();
        for ((node, l), n) in leaked {
            ctx.violations.push(flash_check::Violation {
                kind: "inval-leak",
                node,
                line: l,
                detail: format!("{n} PInval(s) still queued at quiescence"),
            });
        }
        let leaked_intervs: Vec<((u16, u64), u32)> =
            ctx.inflight_intervs.iter().map(|(&k, &v)| (k, v)).collect();
        for ((node, l), n) in leaked_intervs {
            ctx.violations.push(flash_check::Violation {
                kind: "interv-leak",
                node,
                line: l,
                detail: format!("{n} bus intervention(s) still queued at quiescence"),
            });
        }
        // Provisional rogue-copy observations had to be repaired by an
        // invalidation before quiescence; any survivor is a real
        // coherence violation (a rogue copy the protocol never cleaned
        // up). Sorted for deterministic output.
        let mut stale: Vec<(Cycle, flash_check::Violation)> =
            ctx.provisional_rogues.drain().map(|(_, v)| v).collect();
        stale.sort_by_key(|(at, v)| (*at, v.node, v.line));
        for (at, mut v) in stale {
            v.detail = format!("{} (observed at cycle {at}, never invalidated)", v.detail);
            ctx.violations.push(v);
        }
        for node in 0..self.cfg.nodes {
            let diraddrs: Vec<u64> = touched
                .iter()
                .filter(|&&l| self.cfg.placement.home_of(Addr::new(l), self.cfg.nodes).0 == node)
                .map(|&l| dir_addr(Addr::new(l)))
                .collect();
            let mem = self.chips[node as usize].proto_mem();
            let mut found = flash_check::check_pointer_store(
                mem,
                diraddrs.iter(),
                flash_protocol::dir::DEFAULT_PS_CAPACITY,
                node,
            );
            let ctx = self.check.as_mut().expect("checked mode");
            ctx.violations.append(&mut found);
        }
        for chip in &self.chips {
            if let Some(mdc) = chip.mdc() {
                if let Err(e) = mdc.audit() {
                    let node = chip.node().0;
                    let ctx = self.check.as_mut().expect("checked mode");
                    ctx.violations.push(flash_check::Violation {
                        kind: "mdc-integrity",
                        node,
                        line: 0,
                        detail: e,
                    });
                }
            }
        }
    }

    /// Latest processor finish time.
    pub fn exec_cycles(&self) -> u64 {
        self.finish.iter().map(|c| c.raw()).max().unwrap_or(0)
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The machine's processors (stats inspection).
    pub fn procs(&self) -> &[Processor] {
        &self.procs
    }

    /// The machine's MAGIC chips (stats inspection).
    pub fn chips(&self) -> &[MagicChip] {
        &self.chips
    }

    /// The network model (stats inspection).
    pub fn network(&self) -> &NetModel {
        &self.net
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Interventions that had to be deferred waiting for in-flight data.
    pub fn interv_deferrals(&self) -> u64 {
        self.interv_deferrals
    }

    // ---- event handlers --------------------------------------------------

    fn ev_proc_run(&mut self, n: u16) {
        let i = n as usize;
        if self.parked[i] != Park::Scheduled {
            return; // stale wakeup
        }
        let mut outs = Vec::new();
        let outcome = self.procs[i].run(self.now, &mut outs);
        self.post_cpu_outs(n, &outs);
        match outcome {
            RunOutcome::BlockedRead | RunOutcome::BlockedWrite => {
                self.parked[i] = Park::WaitReply;
            }
            RunOutcome::Barrier => {
                // Processors run ahead of the event clock; synchronization
                // uses each processor's own arrival time.
                let pt = self.procs[i].now().max(self.now);
                self.parked[i] = Park::WaitSync;
                self.barrier_waiters.push((n, pt));
                self.maybe_release_barrier();
            }
            RunOutcome::Lock(id) => {
                let pt = self.procs[i].now().max(self.now);
                let grant = self.cfg.lat.lock_grant;
                let lock = self.locks.entry(id).or_default();
                if lock.held {
                    lock.waiters.push_back((n, pt));
                    self.parked[i] = Park::WaitSync;
                } else {
                    lock.held = true;
                    self.schedule_run(n, pt + grant);
                }
            }
            RunOutcome::Unlock(id) => {
                let pt = self.procs[i].now().max(self.now);
                let grant = self.cfg.lat.lock_grant;
                let next = {
                    let lock = self.locks.entry(id).or_default();
                    match lock.waiters.pop_front() {
                        Some(w) => Some(w),
                        None => {
                            lock.held = false;
                            None
                        }
                    }
                };
                if let Some((w, wt)) = next {
                    self.schedule_run(w, pt.max(wt) + grant);
                }
                self.schedule_run(n, pt);
            }
            RunOutcome::Quantum => {
                let at = self.procs[i].now();
                self.schedule_run(n, at.max(self.now));
            }
            RunOutcome::Finished => {
                if self.parked[i] != Park::Done {
                    self.parked[i] = Park::Done;
                    self.finish[i] = self.procs[i].finish_time();
                    self.done += 1;
                    self.maybe_release_barrier();
                }
            }
        }
    }

    fn schedule_run(&mut self, n: u16, at: Cycle) {
        self.parked[n as usize] = Park::Scheduled;
        self.events.push(at, Ev::ProcRun(n));
    }

    fn wake_if_waiting(&mut self, n: u16, at: Cycle) {
        if self.parked[n as usize] == Park::WaitReply {
            self.schedule_run(n, at);
        }
    }

    fn maybe_release_barrier(&mut self) {
        let active = self.procs.len() - self.done;
        if active > 0 && self.barrier_waiters.len() == active {
            let waiters = std::mem::take(&mut self.barrier_waiters);
            let release = waiters.iter().map(|&(_, t)| t).fold(self.now, Cycle::max);
            for (w, _) in waiters {
                self.schedule_run(w, release);
            }
        }
    }

    /// Converts processor requests into PI messages at the MAGIC inbox.
    fn post_cpu_outs(&mut self, n: u16, outs: &[(Cycle, CpuOut)]) {
        let lat = self.cfg.lat;
        for &(t, o) in outs {
            let (mtype, addr, extra) = match o {
                CpuOut::Get(a) => (MsgType::PiGet, a, lat.miss_to_bus),
                CpuOut::GetX(a) => (MsgType::PiGetX, a, lat.miss_to_bus),
                CpuOut::Upgrade(a) => (MsgType::PiUpgrade, a, lat.miss_to_bus),
                CpuOut::Writeback(a) => (MsgType::PiWriteback, a, 0),
                CpuOut::Hint(a) => (MsgType::PiRplHint, a, 0),
            };
            self.events.push(
                t + extra + lat.bus + lat.pi_in,
                Ev::MagicIn {
                    node: n,
                    wire: Wire {
                        mtype,
                        src: NodeId(n),
                        addr,
                        aux: 0,
                        with_data: mtype.carries_data(),
                    },
                },
            );
        }
    }

    fn ev_magic_in(&mut self, node: u16, wire: Wire) {
        if trace_addr() == Some(wire.addr.line().raw()) {
            let home = self.cfg.placement.home_of(wire.addr, self.cfg.nodes);
            eprintln!(
                "[{}] magic_in node{} {:?} src={} aux={:#x} hdr={:#x}",
                self.now,
                node,
                wire.mtype,
                wire.src,
                wire.aux,
                self.chips[home.index()]
                    .peek_header(flash_protocol::dir_addr(wire.addr))
                    .0
            );
        }
        let home = self.cfg.placement.home_of(wire.addr, self.cfg.nodes);
        let msg = InMsg {
            mtype: wire.mtype,
            src: wire.src,
            addr: wire.addr,
            aux: wire.aux,
            spec: false,
            self_node: NodeId(node),
            home,
            diraddr: dir_addr(wire.addr),
            with_data: wire.with_data,
        };
        // Read-miss classification at the home (paper Tables 4.1/4.2).
        let chip = &mut self.chips[node as usize];
        match wire.mtype {
            MsgType::PiGet if home == NodeId(node) => chip.classify_read(&msg, NodeId(node)),
            MsgType::NGet => chip.classify_read(&msg, aux::requester(wire.aux)),
            _ => {}
        }
        let emissions = chip.process(msg, self.now);
        for em in emissions {
            match em {
                Emission::Net { at, msg } => self.post_net(at, msg),
                Emission::Proc { at, msg } => {
                    if let Some(ctx) = self.check.as_mut() {
                        let key = (node, msg.addr.line().raw());
                        match msg.mtype {
                            // The copy is logically dead from the moment
                            // the invalidation is queued on the bus.
                            MsgType::PInval => {
                                *ctx.inflight_invals.entry(key).or_insert(0) += 1;
                            }
                            // The copy is mid-handoff: the new owner may
                            // install its (exclusive) copy before this bus
                            // transaction invalidates or downgrades ours.
                            MsgType::PIntervGet | MsgType::PIntervGetX => {
                                *ctx.inflight_intervs.entry(key).or_insert(0) += 1;
                            }
                            _ => {}
                        }
                    }
                    self.events.push(
                        at,
                        Ev::ProcDeliver {
                            node,
                            pm: msg,
                            tries: 0,
                        },
                    );
                }
            }
        }
    }

    fn post_net(&mut self, at: Cycle, msg: Msg) {
        if trace_addr() == Some(msg.addr.line().raw()) {
            eprintln!(
                "[{}] post_net at={} {:?} {}->{} aux={:#x}",
                self.now, at, msg.mtype, msg.src, msg.dst, msg.aux
            );
        }
        let arrival = self.net.send(at, msg.src, msg.dst);
        self.events.push(
            arrival + self.cfg.lat.ni_in,
            Ev::MagicIn {
                node: msg.dst.0,
                wire: Wire {
                    mtype: msg.mtype,
                    src: msg.src,
                    addr: msg.addr,
                    aux: msg.aux,
                    with_data: msg.with_data,
                },
            },
        );
    }

    fn ev_proc_deliver(&mut self, node: u16, pm: ProcMsg, tries: u32) {
        let i = node as usize;
        let lat = self.cfg.lat;
        match pm.mtype {
            MsgType::PPut | MsgType::PPutX | MsgType::PUpgAck => {
                let excl = pm.mtype != MsgType::PPut;
                let mut outs = Vec::new();
                self.procs[i].deliver_reply(pm.addr, excl, self.now, &mut outs);
                self.post_cpu_outs(node, &outs);
                self.wake_if_waiting(node, self.now);
            }
            MsgType::PInval => {
                self.procs[i].inval(pm.addr, self.now);
                if let Some(ctx) = self.check.as_mut() {
                    let key = (node, pm.addr.line().raw());
                    if let Some(n) = ctx.inflight_invals.get_mut(&key) {
                        *n -= 1;
                        if *n == 0 {
                            ctx.inflight_invals.remove(&key);
                        }
                    }
                    // An invalidation reaching this copy discharges any
                    // provisional rogue-copy observation: the self-repair
                    // completed.
                    ctx.provisional_rogues.remove(&key);
                }
            }
            MsgType::PIntervGet | MsgType::PIntervGetX => {
                let excl = pm.mtype == MsgType::PIntervGetX;
                let mut give_up = false;
                if self.procs[i].has_mshr(pm.addr) {
                    if tries < MAX_INTERV_DEFERRALS {
                        // Data for this line is in flight; the bus
                        // transaction retries until it lands.
                        self.interv_deferrals += 1;
                        self.events.push(
                            self.now + 16,
                            Ev::ProcDeliver {
                                node,
                                pm,
                                tries: tries + 1,
                            },
                        );
                        return;
                    }
                    // Request/forward cycle: break it. The miss report
                    // makes the home abandon the transaction; poisoning
                    // keeps the eventual grant from caching a stale copy.
                    self.procs[i].poison_pending(pm.addr);
                    give_up = true;
                }
                // The intervention is being consumed (not re-deferred):
                // the copy's handoff window closes here.
                if let Some(ctx) = self.check.as_mut() {
                    let key = (node, pm.addr.line().raw());
                    if let Some(n) = ctx.inflight_intervs.get_mut(&key) {
                        *n -= 1;
                        if *n == 0 {
                            ctx.inflight_intervs.remove(&key);
                        }
                    }
                }
                let found = !give_up && self.procs[i].intervention(pm.addr, excl, self.now);
                let (mtype, delay) = if found {
                    (MsgType::PiIntervReply, lat.cache_data)
                } else {
                    (MsgType::PiIntervMiss, lat.cache_state)
                };
                self.events.push(
                    self.now + delay + lat.bus + lat.pi_in,
                    Ev::MagicIn {
                        node,
                        wire: Wire {
                            mtype,
                            src: NodeId(node),
                            addr: pm.addr,
                            aux: pm.aux,
                            with_data: found,
                        },
                    },
                );
            }
            MsgType::PNackRetry => {
                if let Some(o) = self.procs[i].nack_retry(pm.addr) {
                    // Bus retry: the miss was already detected, so only
                    // the retry delay plus bus/PI path applies.
                    let (mtype, addr) = match o {
                        flash_cpu::CpuOut::Get(a) => (MsgType::PiGet, a),
                        flash_cpu::CpuOut::GetX(a) => (MsgType::PiGetX, a),
                        flash_cpu::CpuOut::Upgrade(a) => (MsgType::PiUpgrade, a),
                        other => unreachable!("{other:?} is not retryable"),
                    };
                    self.events.push(
                        self.now + lat.retry + lat.bus + lat.pi_in,
                        Ev::MagicIn {
                            node,
                            wire: Wire {
                                mtype,
                                src: NodeId(node),
                                addr,
                                aux: 0,
                                with_data: false,
                            },
                        },
                    );
                }
            }
            MsgType::PIoData => {}
            other => unreachable!("{other:?} is not a processor-bound message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::node_addr;
    use flash_cpu::{SliceStream, WorkItem};

    fn machine_with(cfg: MachineConfig, per_proc: Vec<Vec<WorkItem>>) -> Machine {
        let streams = per_proc
            .into_iter()
            .map(|v| Box::new(SliceStream::new(v)) as Box<dyn RefStream>)
            .collect();
        Machine::new(cfg, streams)
    }

    fn idle(n: usize) -> Vec<Vec<WorkItem>> {
        vec![vec![WorkItem::Busy(4)]; n]
    }

    #[test]
    fn empty_machine_completes() {
        for cfg in [
            MachineConfig::flash(4),
            MachineConfig::ideal(4),
            MachineConfig::flash_cost_table(4),
        ] {
            let mut m = machine_with(cfg, idle(4));
            match m.run(10_000) {
                RunResult::Completed { exec_cycles } => assert_eq!(exec_cycles, 1),
                r => panic!("unexpected {r:?}"),
            }
        }
    }

    /// Read stall of the final read in `items` relative to `warm_items`
    /// (which excludes it), isolating warm-path latency from cold MAGIC
    /// cache effects — the paper's Table 3.3 assumes warm steady state.
    fn marginal_read_stall(
        cfg: &MachineConfig,
        procs: u16,
        warm_items: Vec<WorkItem>,
        items: Vec<WorkItem>,
    ) -> f64 {
        let idle: Vec<WorkItem> = vec![WorkItem::Busy(1)];
        let run = |it: Vec<WorkItem>| {
            let mut streams = vec![it];
            for _ in 1..procs {
                streams.push(idle.clone());
            }
            let mut m = machine_with(cfg.clone(), streams);
            let RunResult::Completed { .. } = m.run(1_000_000) else {
                panic!("stuck");
            };
            m.procs()[0].stats().read_stall_q as f64 / 4.0
        };
        run(items) - run(warm_items)
    }

    #[test]
    fn single_local_read_latency_matches_table_3_3() {
        // Warm-up read to a neighbouring line (same MDC header line), then
        // a timed read: ~27 cycles on FLASH, 24 on ideal (paper Table 3.3).
        let a = node_addr(NodeId(0), 0x2000);
        let warm = node_addr(NodeId(0), 0x2080);
        let warm_items = vec![WorkItem::Read(warm), WorkItem::Busy(4000)];
        let mut items = warm_items.clone();
        items.push(WorkItem::Read(a));
        for (cfg, expect) in [
            (MachineConfig::flash(1), 27u64),
            (MachineConfig::ideal(1), 24u64),
        ] {
            let per_miss = marginal_read_stall(&cfg, 1, warm_items.clone(), items.clone());
            assert!(
                (per_miss - expect as f64).abs() <= 3.0,
                "per-miss read stall {per_miss:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn remote_read_latency_roughly_matches_table_3_3() {
        // Processor 0 reads a line homed on node 1 (clean): FLASH 111,
        // ideal 92 (paper Table 3.3), measured after warming the remote
        // handler paths and MDC header line.
        let a = node_addr(NodeId(1), 0x4000);
        let warm = node_addr(NodeId(1), 0x4080);
        let warm_items = vec![WorkItem::Read(warm), WorkItem::Busy(8000)];
        let mut items = warm_items.clone();
        items.push(WorkItem::Read(a));
        // Small machines have shorter meshes; pin the paper's 16-node
        // 22-cycle average transit for comparability with Table 3.3.
        let mut fcfg = MachineConfig::flash(2);
        fcfg.net.transit_override = Some(22);
        let mut icfg = MachineConfig::ideal(2);
        icfg.net.transit_override = Some(22);
        for (cfg, expect, tol) in [(fcfg, 111.0, 15.0), (icfg, 92.0, 12.0)] {
            let stall = marginal_read_stall(&cfg, 2, warm_items.clone(), items.clone());
            assert!(
                (stall - expect).abs() <= tol,
                "remote clean read stall {stall:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn dirty_remote_transfer_works() {
        // P1 writes a line homed on node 0; P0 then reads it (local read,
        // dirty remote). Both machines must complete with correct traffic.
        let a = node_addr(NodeId(0), 0x8000);
        let w = vec![WorkItem::Write(a), WorkItem::Barrier, WorkItem::Busy(4)];
        let r = vec![WorkItem::Barrier, WorkItem::Read(a), WorkItem::Busy(4)];
        for cfg in [
            MachineConfig::flash(2),
            MachineConfig::ideal(2),
            MachineConfig::flash_cost_table(2),
        ] {
            let kind = cfg.controller;
            let mut m = machine_with(cfg, vec![r.clone(), w.clone()]);
            match m.run(1_000_000) {
                RunResult::Completed { exec_cycles } => {
                    assert!(exec_cycles > 100, "{kind:?}: too fast ({exec_cycles})");
                }
                r => panic!("{kind:?}: {r:?}"),
            }
            // The read was classified local-dirty-remote at the home.
            let class = m.chips()[0].stats().read_class;
            assert_eq!(class.local_dirty_remote, 1, "{kind:?}");
        }
    }

    #[test]
    fn barrier_synchronizes_all_processors() {
        let a = |n: u16| node_addr(NodeId(n), 0x100);
        let mk = |n: u16| {
            vec![
                WorkItem::Busy(400 * (n as u64 + 1)), // staggered arrival
                WorkItem::Barrier,
                WorkItem::Read(a(n)),
                WorkItem::Busy(4),
            ]
        };
        let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
        let RunResult::Completed { exec_cycles } = m.run(1_000_000) else {
            panic!("stuck");
        };
        // The fastest processor waited for the slowest: sync stall > 0.
        assert!(m.procs()[0].stats().sync_stall_q > 0);
        assert_eq!(m.procs()[3].stats().sync_stall_q, 0);
        assert!(exec_cycles >= 400);
    }

    #[test]
    fn locks_serialize_critical_sections() {
        let mk = |_n: u16| {
            vec![
                WorkItem::Lock(7),
                WorkItem::Busy(400),
                WorkItem::Unlock(7),
                WorkItem::Busy(4),
            ]
        };
        let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
        let RunResult::Completed { exec_cycles } = m.run(1_000_000) else {
            panic!("stuck");
        };
        // Four 100-cycle critical sections must serialize.
        assert!(exec_cycles >= 400, "exec {exec_cycles}");
        let total_sync: u64 = m.procs().iter().map(|p| p.stats().sync_stall_q).sum();
        assert!(total_sync > 0);
    }

    #[test]
    fn sharing_and_invalidation_round_trip() {
        // All processors read a line homed on node 0, then P1 writes it.
        let a = node_addr(NodeId(0), 0xc000);
        let mk = |n: u16| {
            let mut v = vec![WorkItem::Read(a), WorkItem::Barrier];
            if n == 1 {
                v.push(WorkItem::Write(a));
            }
            v.push(WorkItem::Barrier);
            v.push(WorkItem::Busy(4));
            v
        };
        for cfg in [MachineConfig::flash(4), MachineConfig::ideal(4)] {
            let kind = cfg.controller;
            let mut m = machine_with(cfg, (0..4).map(mk).collect());
            match m.run(1_000_000) {
                RunResult::Completed { .. } => {}
                r => panic!("{kind:?}: {r:?}"),
            }
            let invals: u64 = m.procs().iter().map(|p| p.stats().invals_received).sum();
            assert!(
                invals >= 2,
                "{kind:?}: sharers must be invalidated, got {invals}"
            );
        }
    }

    #[test]
    fn dma_write_invalidates_cached_copies() {
        let a = node_addr(NodeId(0), 0x3000);
        let items = vec![
            WorkItem::Read(a),
            WorkItem::Busy(40_000),
            WorkItem::Read(a),
            WorkItem::Busy(4),
        ];
        let mut m = machine_with(
            MachineConfig::flash(2),
            vec![items, vec![WorkItem::Busy(1)]],
        );
        m.add_dma_write(Cycle::new(2_000), NodeId(0), a);
        let RunResult::Completed { .. } = m.run(1_000_000) else {
            panic!("stuck");
        };
        assert_eq!(m.procs()[0].stats().invals_received, 1);
        // Second read misses again after the DMA invalidation.
        assert_eq!(m.procs()[0].stats().read_misses, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = node_addr(NodeId(1), 0x9000);
        let mk = |n: u16| {
            vec![
                WorkItem::Read(node_addr(NodeId(n), 0x100)),
                WorkItem::Write(a),
                WorkItem::Barrier,
                WorkItem::Read(a),
                WorkItem::Busy(8),
            ]
        };
        let run_once = || {
            let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
            match m.run(1_000_000) {
                RunResult::Completed { exec_cycles } => exec_cycles,
                r => panic!("{r:?}"),
            }
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn ideal_never_slower_than_flash() {
        let a = node_addr(NodeId(1), 0x9000);
        let mk = |n: u16| {
            let mut v = Vec::new();
            for i in 0..50u64 {
                v.push(WorkItem::Read(node_addr(NodeId(n), i * 128)));
                v.push(WorkItem::Write(
                    a.offset(((n as u64 * 50 + i) % 64) * 2 * 128),
                ));
                v.push(WorkItem::Busy(16));
            }
            v.push(WorkItem::Barrier);
            v
        };
        let time = |cfg: MachineConfig| {
            let mut m = machine_with(cfg, (0..4).map(mk).collect());
            match m.run(10_000_000) {
                RunResult::Completed { exec_cycles } => exec_cycles,
                r => panic!("{r:?}"),
            }
        };
        let flash = time(MachineConfig::flash(4));
        let ideal = time(MachineConfig::ideal(4));
        assert!(
            ideal <= flash,
            "ideal ({ideal}) must not be slower than FLASH ({flash})"
        );
    }
}
