//! The machine: nodes, network, and the event loop (the FlashLite role).

use crate::config::MachineConfig;
use crate::observe::{ObserveReport, Observer, ReqKind};
use flash_cpu::{CpuOut, Processor, RefStream, RunOutcome};
use flash_engine::{Addr, Cycle, EventQueue, NodeId, Segment};
use flash_fault::{
    FaultInjector, FaultStats, LinkVerdict, MsgRing, MshrSnap, NiDir, NodeWedge, PendingLine,
    TraceEntry, WedgeReport,
};
use flash_magic::{ControllerKind, Emission, MagicChip};
use flash_net::{Mesh, NetModel};
use flash_protocol::fields::aux;
use flash_protocol::{dir_addr, InMsg, JumpTable, Msg, MsgType, ProcMsg};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Resume a processor's reference stream.
    ProcRun(u16),
    /// A message is ready at a node's inbox (inbound latency paid).
    MagicIn { node: u16, wire: Wire },
    /// MAGIC delivers a message to its local processor.
    ProcDeliver { node: u16, pm: ProcMsg, tries: u32 },
    /// Re-offer a message the fault layer held (scripted link outage).
    /// Processing one is *not* forward progress: a permanently held
    /// message loops here until the watchdog diagnoses the wedge.
    NetSend { msg: Msg },
}

/// A message on the wire (or on a node's internal buses).
#[derive(Debug, Clone, Copy)]
struct Wire {
    mtype: MsgType,
    src: NodeId,
    addr: Addr,
    aux: u64,
    with_data: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Park {
    Scheduled,
    WaitReply,
    WaitSync,
    Done,
}

#[derive(Debug, Default)]
struct LockState {
    held: bool,
    waiters: VecDeque<(u16, Cycle)>,
}

/// Checked-mode bookkeeping (allocated only when `cfg.check`).
#[derive(Debug, Default)]
struct CheckCtx {
    /// Every 128-byte line that ever saw protocol activity.
    touched: std::collections::BTreeSet<u64>,
    /// Invariant violations detected so far (machine-level checks; the
    /// per-chip differential oracle keeps its own list).
    violations: Vec<flash_check::Violation>,
    /// In-flight `PInval` deliveries, keyed by (node, line address).
    ///
    /// The protocol acknowledges an invalidation as soon as the sharer's
    /// MAGIC processes `NInval` — the bus-side `PInval` rides a later
    /// `ProcDeliver` event, so the stale copy legitimately outlives the
    /// directory's PENDING window (the paper's relaxed-consistency
    /// ordering, §2). A copy with a queued `PInval` is logically dead and
    /// exempt from the coherence checks; one still queued at quiescence
    /// is a message-conservation violation.
    inflight_invals: std::collections::HashMap<(u16, u64), u32>,
    /// In-flight `PIntervGet`/`PIntervGetX` deliveries, keyed the same
    /// way. A copy with a queued intervention is mid-handoff: the home
    /// may have already granted (exclusive) ownership to the requester
    /// while this bus transaction — possibly deferred for many retries —
    /// has yet to invalidate or downgrade the old owner's copy. Such a
    /// copy is exempt from the coherence checks until the intervention
    /// executes; one still queued at quiescence is a conservation
    /// violation.
    inflight_intervs: std::collections::HashMap<(u16, u64), u32>,
    /// Rogue-copy observations (`shared-under-dirty`, `copy-not-listed`)
    /// awaiting repair, keyed by (copy node, line address), with the
    /// cycle of first observation.
    ///
    /// The stale-transfer self-repair race (DESIGN.md, race rule 2) makes
    /// these states legal transiently: a deferred intervention can answer
    /// a forward the home has since abandoned, granting a rogue shared
    /// copy via a stale `NPut`; the home's `ni_swb` stale branch repairs
    /// it with fire-and-forget `NInval`s. Between the rogue copy
    /// installing and the repair `PInval` reaching the bus there is
    /// nothing local to exempt on — the header is neither `PENDING` nor
    /// is a `PInval` queued yet — so the observation is held here as
    /// *provisional*: discharged when a `PInval` for that (node, line)
    /// delivers, and promoted to a real violation if it survives to
    /// quiescence. (Whether the rogue shows up as `shared-under-dirty` or
    /// `copy-not-listed` depends only on what the header looks like when
    /// the checker happens to observe the window.)
    provisional_rogues: std::collections::HashMap<(u16, u64), (Cycle, flash_check::Violation)>,
}

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum RunResult {
    /// Every processor finished its stream.
    Completed {
        /// Latest processor finish time = application execution time.
        exec_cycles: u64,
    },
    /// The cycle budget was exhausted first.
    BudgetExhausted,
    /// The event queue drained with processors still unfinished — a
    /// protocol or workload deadlock (e.g. unbalanced barriers).
    Deadlocked {
        /// Number of processors that never finished.
        stuck: usize,
    },
    /// The forward-progress watchdog fired: events kept flowing but no
    /// retirement, message delivery, or handler invocation advanced for a
    /// whole watchdog window — a livelock or a held link. The report
    /// says who is waiting on what.
    Wedged {
        /// Structured diagnosis (boxed: reports are large and rare).
        report: Box<WedgeReport>,
    },
}

/// A full machine instance: processors, MAGIC chips, memory, network.
pub struct Machine {
    cfg: MachineConfig,
    procs: Vec<Processor>,
    chips: Vec<MagicChip>,
    net: NetModel,
    events: EventQueue<Ev>,
    now: Cycle,
    parked: Vec<Park>,
    barrier_waiters: Vec<(u16, Cycle)>,
    locks: HashMap<u32, LockState>,
    done: usize,
    finish: Vec<Cycle>,
    interv_deferrals: u64,
    check: Option<CheckCtx>,
    /// Fault-injection runtime (`None` when `cfg.faults` is disarmed; a
    /// disarmed machine takes none of the injection branches).
    injector: Option<FaultInjector>,
    /// Ring of recent message observations (wedge diagnostics; the
    /// in-memory counterpart of `FLASH_TRACE_ADDR`).
    ring: MsgRing,
    /// Last cycle a retirement, message delivery, or handler invocation
    /// advanced (the forward-progress watchdog's reference point).
    last_progress: Cycle,
    /// Cycle-attribution observer (`None` when `cfg.observe` is off; a
    /// disarmed machine takes none of the observation branches).
    observe: Option<Box<Observer>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nodes", &self.cfg.nodes)
            .field("now", &self.now)
            .field("done", &self.done)
            .finish()
    }
}

/// Deferrals allowed for one intervention while the target's in-flight
/// grant lands (16 cycles apart). Beyond this the transaction is assumed
/// to be a request/forward cycle: the intervention reports a miss (the
/// home abandons the pending transaction) and the target's eventual grant
/// is poisoned so no stale copy is cached.
const MAX_INTERV_DEFERRALS: u32 = 64;

/// Capacity of the wedge-diagnostics message ring. Deep enough to cover
/// the full protocol exchange on the handful of lines a wedge involves;
/// each entry is a few words, so the ring is cheap to keep always-on.
const RING_CAPACITY: usize = 64;

/// How many ring entries a wedge report keeps when no suspect line
/// stands out.
const RECENT_TAIL: usize = 8;

/// Line address to trace (set `FLASH_TRACE_ADDR=0x...` to dump every
/// message touching that 128-byte line to stderr).
fn trace_addr() -> Option<u64> {
    static TRACE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| {
        std::env::var("FLASH_TRACE_ADDR")
            .ok()
            .and_then(|t| u64::from_str_radix(t.trim_start_matches("0x"), 16).ok())
            .map(|a| a & !127)
    })
}

/// File to write the Chrome-trace event export to when a run with
/// observation on completes (set `FLASH_TRACE_OUT=trace.json`; view in
/// Perfetto or `chrome://tracing`). Mirrors the `FLASH_TRACE_ADDR`
/// plumbing: read once per process.
fn trace_out() -> Option<&'static str> {
    static OUT: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    OUT.get_or_init(|| {
        std::env::var("FLASH_TRACE_OUT")
            .ok()
            .filter(|s| !s.is_empty())
    })
    .as_deref()
}

impl Machine {
    /// Builds a machine running one reference stream per node.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != cfg.nodes`.
    pub fn new(cfg: MachineConfig, streams: Vec<Box<dyn RefStream>>) -> Self {
        assert_eq!(streams.len(), cfg.nodes as usize, "one stream per node");
        // Handler modules are immutable once scheduled; they are compiled
        // at most once per (codegen, monitoring) variant for the whole
        // process and shared across nodes, machines, and worker threads.
        let program = match (cfg.controller, cfg.monitoring) {
            (ControllerKind::FlashEmulated, false) => {
                Some(flash_protocol::handlers::compile_shared(cfg.codegen))
            }
            (ControllerKind::FlashEmulated, true) => Some(
                flash_protocol::handlers::compile_monitoring_shared(cfg.codegen),
            ),
            _ => None,
        };
        let jump = if cfg.monitoring && cfg.controller == ControllerKind::FlashEmulated {
            JumpTable::dpa_with_monitoring()
        } else {
            JumpTable::dpa_protocol()
        };
        let mut chips: Vec<MagicChip> = (0..cfg.nodes)
            .map(|i| {
                MagicChip::new(
                    cfg.controller,
                    NodeId(i),
                    program.clone(),
                    jump.clone(),
                    cfg.mem_timing,
                    cfg.speculation,
                    cfg.mdc_enabled,
                )
            })
            .collect();
        // Apply the configured PP backend (a host-performance knob;
        // timing is backend-invariant, so this never changes results).
        for chip in &mut chips {
            chip.set_pp_backend(cfg.pp_backend);
        }
        // Checked mode: the differential oracle replays every emulated
        // handler through the native protocol. The monitoring protocol
        // writes per-line counters the native oracle does not model, so
        // the oracle stays off there (invariant checks still run).
        if cfg.check && !cfg.monitoring {
            for chip in &mut chips {
                chip.enable_oracle();
            }
        }
        // Observed mode: chips record per-emission attributions
        // (timing-invisible side buffers).
        if cfg.observe {
            for chip in &mut chips {
                chip.set_observe(true);
            }
        }
        let procs: Vec<Processor> = streams
            .into_iter()
            .map(|s| Processor::new(cfg.cache_bytes, cfg.mshrs, s))
            .collect();
        let net = NetModel::new(Mesh::for_nodes(cfg.nodes), cfg.net);
        let mut events = EventQueue::new();
        for i in 0..cfg.nodes {
            events.push(Cycle::ZERO, Ev::ProcRun(i));
        }
        let n = cfg.nodes as usize;
        let check_enabled = cfg.check;
        let injector = FaultInjector::new(&cfg.faults);
        let observe = cfg
            .observe
            .then(|| Box::new(Observer::new(jump.handler_names())));
        Machine {
            cfg,
            procs,
            chips,
            net,
            events,
            now: Cycle::ZERO,
            parked: vec![Park::Scheduled; n],
            barrier_waiters: Vec::new(),
            locks: HashMap::new(),
            done: 0,
            finish: vec![Cycle::ZERO; n],
            interv_deferrals: 0,
            check: check_enabled.then(CheckCtx::default),
            injector,
            ring: MsgRing::new(RING_CAPACITY),
            last_progress: Cycle::ZERO,
            observe,
        }
    }

    /// Schedules a DMA write into `node`'s memory at time `at` (the OS
    /// workload's zero-latency disk, paper §3.4).
    pub fn add_dma_write(&mut self, at: Cycle, node: NodeId, addr: Addr) {
        self.events.push(
            at,
            Ev::MagicIn {
                node: node.0,
                wire: Wire {
                    mtype: MsgType::IoDmaWrite,
                    src: node,
                    addr: addr.line(),
                    aux: 0,
                    with_data: true,
                },
            },
        );
    }

    /// Runs until every processor finishes or `budget_cycles` elapse.
    pub fn run(&mut self, budget_cycles: u64) -> RunResult {
        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if t.raw() > budget_cycles {
                return RunResult::BudgetExhausted;
            }
            let ev_line = match &ev {
                Ev::ProcRun(_) => None,
                Ev::MagicIn { wire, .. } => Some(wire.addr.line()),
                Ev::ProcDeliver { pm, .. } => Some(pm.addr.line()),
                Ev::NetSend { msg } => Some(msg.addr.line()),
            };
            match ev {
                Ev::ProcRun(n) => self.ev_proc_run(n),
                Ev::MagicIn { node, wire } => self.ev_magic_in(node, wire),
                Ev::ProcDeliver { node, pm, tries } => self.ev_proc_deliver(node, pm, tries),
                Ev::NetSend { msg } => self.post_net(self.now, msg),
            }
            if self.check.is_some() {
                if let Some(line) = ev_line {
                    self.check_line(line);
                }
            }
            // Forward-progress watchdog, checked *after* the event so an
            // event that itself makes progress (a retirement landing 10 ms
            // after a long barrier, say) can never false-trigger.
            if self.cfg.watchdog_window > 0
                && self.now.raw() - self.last_progress.raw() > self.cfg.watchdog_window
            {
                return RunResult::Wedged {
                    report: Box::new(
                        self.diagnose("no forward progress within the watchdog window"),
                    ),
                };
            }
            if self.done == self.procs.len() && self.events.is_empty() {
                break;
            }
        }
        if self.done < self.procs.len() {
            return RunResult::Deadlocked {
                stuck: self.procs.len() - self.done,
            };
        }
        self.finalize_check();
        self.maybe_write_trace();
        RunResult::Completed {
            exec_cycles: self.exec_cycles(),
        }
    }

    // ---- observed mode ---------------------------------------------------

    /// Whether the cycle-attribution observer is on.
    pub fn observed_mode(&self) -> bool {
        self.observe.is_some()
    }

    /// The structured cycle-attribution report (`None` unless the machine
    /// was built with [`MachineConfig::with_observe`]). Per-handler rows
    /// aggregate invocation counts and occupancy over all chips.
    ///
    /// [`MachineConfig::with_observe`]: crate::MachineConfig::with_observe
    pub fn observe_report(&self) -> Option<ObserveReport> {
        let obs = self.observe.as_ref()?;
        let mut handlers: std::collections::BTreeMap<&'static str, (u64, u64)> = Default::default();
        for chip in &self.chips {
            for (&name, &(n, cyc)) in &chip.stats().handlers {
                let e = handlers.entry(name).or_insert((0, 0));
                e.0 += n;
                e.1 += cyc;
            }
        }
        Some(obs.report(&handlers))
    }

    /// The event trace as Chrome `trace_event` JSON (`None` unless
    /// observing).
    pub fn trace_json(&self) -> Option<String> {
        self.observe.as_ref().map(|o| o.trace_json())
    }

    /// Writes the Chrome-trace JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be written, or
    /// `InvalidInput` if the machine is not observing.
    pub fn write_trace(&self, path: &str) -> std::io::Result<()> {
        let Some(json) = self.trace_json() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "machine is not observing (enable MachineConfig::with_observe)",
            ));
        };
        std::fs::write(path, json)
    }

    /// `FLASH_TRACE_OUT` handling on successful completion: best-effort,
    /// a write failure is reported on stderr but never fails the run.
    fn maybe_write_trace(&self) {
        if self.observe.is_none() {
            return;
        }
        if let Some(path) = trace_out() {
            if let Err(e) = self.write_trace(path) {
                eprintln!("FLASH_TRACE_OUT: failed to write {path}: {e}");
            }
        }
    }

    /// Resolves the tracked request (if any) that `wire`, arriving at
    /// `node`'s inbox, belongs to — plus the segment its frontier gap is
    /// charged to (PI for bus-side messages, mesh for network-side, which
    /// folds the receiving NI input stage into mesh transit).
    ///
    /// Requests and forwards carry the requester in their aux field;
    /// replies from third-party owners carry the responder, so replies
    /// also try the receiving node (replies terminate at the requester's
    /// own chip). Messages that never continue a request path (invals,
    /// acks, writebacks, sharing writebacks) resolve to `None`.
    fn observe_key(&self, node: u16, wire: &Wire) -> Option<((u16, u64), Segment)> {
        let obs = self.observe.as_ref()?;
        let line = wire.addr.line().raw();
        let (candidates, seg): ([Option<u16>; 2], Segment) = match wire.mtype {
            MsgType::PiGet | MsgType::PiGetX | MsgType::PiUpgrade => {
                ([Some(wire.src.0), None], Segment::Pi)
            }
            MsgType::PiIntervReply | MsgType::PiIntervMiss => {
                ([Some(aux::requester(wire.aux).0), None], Segment::Pi)
            }
            MsgType::NGet
            | MsgType::NGetX
            | MsgType::NUpgrade
            | MsgType::NFwdGet
            | MsgType::NFwdGetX => ([Some(aux::requester(wire.aux).0), None], Segment::Mesh),
            MsgType::NPut
            | MsgType::NPutX
            | MsgType::NUpgAck
            | MsgType::NNack
            | MsgType::NIntervMiss => (
                [Some(aux::requester(wire.aux).0), Some(node)],
                Segment::Mesh,
            ),
            _ => return None,
        };
        candidates
            .into_iter()
            .flatten()
            .find(|&c| obs.is_pending((c, line)))
            .map(|c| ((c, line), seg))
    }

    /// Whether a chip emission continues the tracked request `key`
    /// (first match wins when applying per-emission attributions).
    fn emission_continues(em: &Emission, key: (u16, u64), node: u16) -> bool {
        match em {
            Emission::Proc { msg: pm, .. } => {
                pm.addr.line().raw() == key.1
                    && match pm.mtype {
                        MsgType::PPut | MsgType::PPutX | MsgType::PUpgAck | MsgType::PNackRetry => {
                            key.0 == node
                        }
                        MsgType::PIntervGet | MsgType::PIntervGetX => {
                            aux::requester(pm.aux).0 == key.0
                        }
                        _ => false,
                    }
            }
            Emission::Net { msg: m, .. } => {
                m.addr.line().raw() == key.1
                    && matches!(
                        m.mtype,
                        MsgType::NGet
                            | MsgType::NGetX
                            | MsgType::NUpgrade
                            | MsgType::NFwdGet
                            | MsgType::NFwdGetX
                            | MsgType::NPut
                            | MsgType::NPutX
                            | MsgType::NUpgAck
                            | MsgType::NNack
                            | MsgType::NIntervMiss
                    )
                    && (aux::requester(m.aux).0 == key.0 || m.dst.0 == key.0)
            }
        }
    }

    /// Resolves the tracked request a network message continues (the
    /// network-side subset of [`Machine::emission_continues`], used to
    /// charge NI-wait and mesh-transit cycles in `post_net`).
    fn net_msg_key(&self, msg: &Msg) -> Option<(u16, u64)> {
        let obs = self.observe.as_ref()?;
        if !matches!(
            msg.mtype,
            MsgType::NGet
                | MsgType::NGetX
                | MsgType::NUpgrade
                | MsgType::NFwdGet
                | MsgType::NFwdGetX
                | MsgType::NPut
                | MsgType::NPutX
                | MsgType::NUpgAck
                | MsgType::NNack
                | MsgType::NIntervMiss
        ) {
            return None;
        }
        let line = msg.addr.line().raw();
        [aux::requester(msg.aux).0, msg.dst.0]
            .into_iter()
            .find(|&c| obs.is_pending((c, line)))
            .map(|c| (c, line))
    }

    // ---- checked mode ----------------------------------------------------

    /// Whether checked mode is on.
    pub fn checked_mode(&self) -> bool {
        self.check.is_some()
    }

    /// Handler invocations the differential oracle has diffed so far,
    /// summed over all chips (0 when checked mode or the oracle is off).
    pub fn oracle_checked(&self) -> u64 {
        self.chips.iter().map(|c| c.oracle_checked()).sum()
    }

    /// All invariant violations detected so far: machine-level checks
    /// (coherence, directory audits, conservation) plus every chip's
    /// differential-oracle divergences. Empty on a healthy checked run —
    /// and always empty when checked mode is off.
    pub fn check_violations(&self) -> Vec<flash_check::Violation> {
        let mut out: Vec<flash_check::Violation> = self
            .check
            .as_ref()
            .map(|c| c.violations.clone())
            .unwrap_or_default();
        for chip in &self.chips {
            out.extend(chip.oracle_violations().iter().cloned());
        }
        out
    }

    /// Checks every invariant visible for one line right now: SWMR across
    /// all processor caches, directory structural audit, and cache/
    /// directory agreement at the line's home.
    fn check_line(&mut self, line: Addr) {
        let Some(ctx) = self.check.as_mut() else {
            return;
        };
        ctx.touched.insert(line.raw());
        let mut copies = Vec::new();
        for (i, p) in self.procs.iter().enumerate() {
            // A copy with a queued `PInval` is logically dead (the
            // sharer's MAGIC already acknowledged the invalidation), and
            // one with a queued `PIntervGet`/`PIntervGetX` is mid-handoff
            // (the requester may install before the bus transaction
            // lands). Both are exempt from SWMR/agreement.
            let key = (i as u16, line.raw());
            let doomed =
                ctx.inflight_invals.contains_key(&key) || ctx.inflight_intervs.contains_key(&key);
            if let Some(state) = p.cache().state_of(line) {
                if !doomed {
                    copies.push(flash_check::CachedCopy {
                        node: i as u16,
                        exclusive: state == flash_cpu::LineState::Exclusive,
                    });
                }
            }
            let in_use = p.outstanding_misses();
            if in_use > self.cfg.mshrs {
                ctx.violations.push(flash_check::Violation {
                    kind: "mshr-over",
                    node: i as u16,
                    line: line.raw(),
                    detail: format!("{in_use} MSHRs in use, limit {}", self.cfg.mshrs),
                });
            }
        }
        let home = self.cfg.placement.home_of(line, self.cfg.nodes);
        let da = dir_addr(line);
        let mem = self.chips[home.index()].proto_mem();
        ctx.violations
            .extend(flash_check::audit_directory(mem, da, home.0, false));
        if let Ok(sharers) = flash_check::walk_sharers(mem, da) {
            let h = flash_protocol::DirHeader(mem.load64(da));
            let now = self.now;
            for v in flash_check::check_line_coherence(h, &sharers, home.0, &copies, line.raw()) {
                // Per-copy cache/directory disagreements are legal for a
                // bounded window (stale-transfer self-repair) and are
                // attributed to the copy holder; held provisionally until
                // the copy is invalidated. See
                // `CheckCtx::provisional_rogues`. Everything else
                // (aggregate swmr, structural audits) reports
                // immediately.
                let provisional = matches!(
                    v.kind,
                    "shared-under-dirty"
                        | "copy-not-listed"
                        | "excl-wrong-owner"
                        | "excl-not-dirty"
                        | "excl-home-not-local"
                        | "home-copy-not-local"
                );
                if provisional {
                    ctx.provisional_rogues
                        .entry((v.node, v.line))
                        .or_insert((now, v));
                } else {
                    ctx.violations.push(v);
                }
            }
        }
    }

    /// End-of-run audits, called once the machine is quiescent (all
    /// processors done, event queue drained): every touched line must
    /// have retired its transactions (no `PENDING`, no residual acks,
    /// caches and directory in agreement), every MSHR must have drained,
    /// each node's pointer store must conserve entries, and the MAGIC
    /// cache tag stores must be internally consistent.
    fn finalize_check(&mut self) {
        if self.check.is_none() {
            return;
        }
        let touched: Vec<u64> = self
            .check
            .as_ref()
            .map(|c| c.touched.iter().copied().collect())
            .unwrap_or_default();
        for &raw in &touched {
            let line = Addr::new(raw);
            let home = self.cfg.placement.home_of(line, self.cfg.nodes);
            let da = dir_addr(line);
            let mem = self.chips[home.index()].proto_mem();
            let mut found = flash_check::audit_directory(mem, da, home.0, true);
            let ctx = self.check.as_mut().expect("checked mode");
            ctx.violations.append(&mut found);
            self.check_line(line);
        }
        let ctx = self.check.as_mut().expect("checked mode");
        for (i, p) in self.procs.iter().enumerate() {
            let n = p.outstanding_misses();
            if n != 0 {
                ctx.violations.push(flash_check::Violation {
                    kind: "mshr-leak",
                    node: i as u16,
                    line: 0,
                    detail: format!("{n} MSHRs still allocated at quiescence"),
                });
            }
        }
        // Message conservation: every scheduled `PInval` must have been
        // delivered by the time the event queue drains.
        let leaked: Vec<((u16, u64), u32)> =
            ctx.inflight_invals.iter().map(|(&k, &v)| (k, v)).collect();
        for ((node, l), n) in leaked {
            ctx.violations.push(flash_check::Violation {
                kind: "inval-leak",
                node,
                line: l,
                detail: format!("{n} PInval(s) still queued at quiescence"),
            });
        }
        let leaked_intervs: Vec<((u16, u64), u32)> =
            ctx.inflight_intervs.iter().map(|(&k, &v)| (k, v)).collect();
        for ((node, l), n) in leaked_intervs {
            ctx.violations.push(flash_check::Violation {
                kind: "interv-leak",
                node,
                line: l,
                detail: format!("{n} bus intervention(s) still queued at quiescence"),
            });
        }
        // Provisional rogue-copy observations had to be repaired by an
        // invalidation before quiescence; any survivor is a real
        // coherence violation (a rogue copy the protocol never cleaned
        // up). Sorted for deterministic output.
        let mut stale: Vec<(Cycle, flash_check::Violation)> =
            ctx.provisional_rogues.drain().map(|(_, v)| v).collect();
        stale.sort_by_key(|(at, v)| (*at, v.node, v.line));
        for (at, mut v) in stale {
            v.detail = format!("{} (observed at cycle {at}, never invalidated)", v.detail);
            ctx.violations.push(v);
        }
        for node in 0..self.cfg.nodes {
            let diraddrs: Vec<u64> = touched
                .iter()
                .filter(|&&l| self.cfg.placement.home_of(Addr::new(l), self.cfg.nodes).0 == node)
                .map(|&l| dir_addr(Addr::new(l)))
                .collect();
            let mem = self.chips[node as usize].proto_mem();
            let mut found = flash_check::check_pointer_store(
                mem,
                diraddrs.iter(),
                flash_protocol::dir::DEFAULT_PS_CAPACITY,
                node,
            );
            let ctx = self.check.as_mut().expect("checked mode");
            ctx.violations.append(&mut found);
        }
        for chip in &self.chips {
            if let Some(mdc) = chip.mdc() {
                if let Err(e) = mdc.audit() {
                    let node = chip.node().0;
                    let ctx = self.check.as_mut().expect("checked mode");
                    ctx.violations.push(flash_check::Violation {
                        kind: "mdc-integrity",
                        node,
                        line: 0,
                        detail: e,
                    });
                }
            }
        }
    }

    /// Latest processor finish time.
    pub fn exec_cycles(&self) -> u64 {
        self.finish.iter().map(|c| c.raw()).max().unwrap_or(0)
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The machine's processors (stats inspection).
    pub fn procs(&self) -> &[Processor] {
        &self.procs
    }

    /// The machine's MAGIC chips (stats inspection).
    pub fn chips(&self) -> &[MagicChip] {
        &self.chips
    }

    /// The network model (stats inspection).
    pub fn network(&self) -> &NetModel {
        &self.net
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Interventions that had to be deferred waiting for in-flight data.
    pub fn interv_deferrals(&self) -> u64 {
        self.interv_deferrals
    }

    /// Cumulative fault-injection statistics, when a plan is armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.as_ref().map(|i| *i.stats())
    }

    /// Assembles a structured diagnosis of the machine's current state:
    /// who is waiting on what, which directory lines are PENDING, which
    /// links the fault layer holds, and the recent messages touching the
    /// suspect lines. The watchdog calls this to build
    /// [`RunResult::Wedged`]; callers can also invoke it after
    /// `Deadlocked` or `BudgetExhausted` to render the same report.
    pub fn diagnose(&self, reason: &str) -> WedgeReport {
        let n = self.procs.len();
        let mut inbox_queued = vec![0usize; n];
        let mut proc_queued = vec![0usize; n];
        let mut net_held = vec![0usize; n];
        // Suspect lines: anything queued, outstanding in an MSHR, or
        // recently observed by the trace ring.
        let mut suspects: BTreeSet<u64> = BTreeSet::new();
        for (_, ev) in self.events.iter() {
            match ev {
                Ev::ProcRun(_) => {}
                Ev::MagicIn { node, wire } => {
                    inbox_queued[*node as usize] += 1;
                    suspects.insert(wire.addr.line().raw());
                }
                Ev::ProcDeliver { node, pm, .. } => {
                    proc_queued[*node as usize] += 1;
                    suspects.insert(pm.addr.line().raw());
                }
                Ev::NetSend { msg } => {
                    net_held[msg.src.index()] += 1;
                    suspects.insert(msg.addr.line().raw());
                }
            }
        }
        let nodes: Vec<NodeWedge> = (0..n)
            .map(|i| {
                let mshrs: Vec<MshrSnap> = self.procs[i]
                    .mshr_entries()
                    .map(|m| {
                        suspects.insert(m.line.line().raw());
                        MshrSnap {
                            line: m.line.line().raw(),
                            kind: match m.kind {
                                flash_cpu::MissKind::Read => "Read",
                                flash_cpu::MissKind::Write => "Write",
                                flash_cpu::MissKind::Upgrade => "Upgrade",
                            },
                            issued_at: m.issued_at.raw(),
                        }
                    })
                    .collect();
                NodeWedge {
                    node: i as u16,
                    state: match self.parked[i] {
                        Park::Scheduled => "scheduled",
                        Park::WaitReply => "wait-reply",
                        Park::WaitSync => "wait-sync",
                        Park::Done => "done",
                    },
                    mshrs,
                    inbox_queued: inbox_queued[i],
                    proc_queued: proc_queued[i],
                    net_held: net_held[i],
                }
            })
            .collect();
        suspects.extend(self.ring.lines());
        let pending_lines: Vec<PendingLine> = suspects
            .iter()
            .filter_map(|&raw| {
                let line = Addr::new(raw);
                let home = self.cfg.placement.home_of(line, self.cfg.nodes);
                let header = self.chips[home.index()].peek_header(dir_addr(line));
                header.pending().then_some(PendingLine {
                    line: raw,
                    home: home.0,
                    header: header.0,
                })
            })
            .collect();
        // Recent traffic: everything touching a PENDING line when one
        // stands out, otherwise the overall tail.
        let recent: Vec<TraceEntry> = if pending_lines.is_empty() {
            let all = self.ring.entries();
            all[all.len().saturating_sub(RECENT_TAIL)..].to_vec()
        } else {
            let hot: BTreeSet<u64> = pending_lines.iter().map(|p| p.line).collect();
            self.ring
                .entries()
                .into_iter()
                .filter(|e| hot.contains(&e.line))
                .collect()
        };
        WedgeReport {
            at: self.now.raw(),
            window: self.cfg.watchdog_window,
            last_progress_at: self.last_progress.raw(),
            reason: reason.to_string(),
            done: self.done,
            total: n,
            nodes,
            pending_lines,
            stalled_links: self
                .injector
                .as_ref()
                .map(|i| i.held_links())
                .unwrap_or_default(),
            fault_stats: self.fault_stats(),
            recent,
        }
    }

    // ---- event handlers --------------------------------------------------

    fn mark_progress(&mut self) {
        self.last_progress = self.now;
    }

    fn ev_proc_run(&mut self, n: u16) {
        let i = n as usize;
        if self.parked[i] != Park::Scheduled {
            return; // stale wakeup (not forward progress)
        }
        self.mark_progress();
        let mut outs = Vec::new();
        let outcome = self.procs[i].run(self.now, &mut outs);
        self.post_cpu_outs(n, &outs);
        match outcome {
            RunOutcome::BlockedRead | RunOutcome::BlockedWrite => {
                self.parked[i] = Park::WaitReply;
            }
            RunOutcome::Barrier => {
                // Processors run ahead of the event clock; synchronization
                // uses each processor's own arrival time.
                let pt = self.procs[i].now().max(self.now);
                self.parked[i] = Park::WaitSync;
                self.barrier_waiters.push((n, pt));
                self.maybe_release_barrier();
            }
            RunOutcome::Lock(id) => {
                let pt = self.procs[i].now().max(self.now);
                let grant = self.cfg.lat.lock_grant;
                let lock = self.locks.entry(id).or_default();
                if lock.held {
                    lock.waiters.push_back((n, pt));
                    self.parked[i] = Park::WaitSync;
                } else {
                    lock.held = true;
                    self.schedule_run(n, pt + grant);
                }
            }
            RunOutcome::Unlock(id) => {
                let pt = self.procs[i].now().max(self.now);
                let grant = self.cfg.lat.lock_grant;
                let next = {
                    let lock = self.locks.entry(id).or_default();
                    match lock.waiters.pop_front() {
                        Some(w) => Some(w),
                        None => {
                            lock.held = false;
                            None
                        }
                    }
                };
                if let Some((w, wt)) = next {
                    self.schedule_run(w, pt.max(wt) + grant);
                }
                self.schedule_run(n, pt);
            }
            RunOutcome::Quantum => {
                let at = self.procs[i].now();
                self.schedule_run(n, at.max(self.now));
            }
            RunOutcome::Finished => {
                if self.parked[i] != Park::Done {
                    self.parked[i] = Park::Done;
                    self.finish[i] = self.procs[i].finish_time();
                    self.done += 1;
                    self.maybe_release_barrier();
                }
            }
        }
    }

    fn schedule_run(&mut self, n: u16, at: Cycle) {
        self.parked[n as usize] = Park::Scheduled;
        self.events.push(at, Ev::ProcRun(n));
    }

    fn wake_if_waiting(&mut self, n: u16, at: Cycle) {
        if self.parked[n as usize] == Park::WaitReply {
            self.schedule_run(n, at);
        }
    }

    fn maybe_release_barrier(&mut self) {
        let active = self.procs.len() - self.done;
        if active > 0 && self.barrier_waiters.len() == active {
            let waiters = std::mem::take(&mut self.barrier_waiters);
            let release = waiters.iter().map(|&(_, t)| t).fold(self.now, Cycle::max);
            for (w, _) in waiters {
                self.schedule_run(w, release);
            }
        }
    }

    /// Converts processor requests into PI messages at the MAGIC inbox.
    fn post_cpu_outs(&mut self, n: u16, outs: &[(Cycle, CpuOut)]) {
        let lat = self.cfg.lat;
        for &(t, o) in outs {
            let (mtype, addr, extra) = match o {
                CpuOut::Get(a) => (MsgType::PiGet, a, lat.miss_to_bus),
                CpuOut::GetX(a) => (MsgType::PiGetX, a, lat.miss_to_bus),
                CpuOut::Upgrade(a) => (MsgType::PiUpgrade, a, lat.miss_to_bus),
                CpuOut::Writeback(a) => (MsgType::PiWriteback, a, 0),
                CpuOut::Hint(a) => (MsgType::PiRplHint, a, 0),
            };
            // Observed mode: a miss leaving the processor starts a
            // tracked request at its issue time.
            if let Some(obs) = self.observe.as_mut() {
                let kind = match mtype {
                    MsgType::PiGet => Some(ReqKind::Read),
                    MsgType::PiGetX => Some(ReqKind::Write),
                    MsgType::PiUpgrade => Some(ReqKind::Upgrade),
                    _ => None,
                };
                if let Some(kind) = kind {
                    obs.begin(n, addr.line().raw(), t, kind);
                }
            }
            self.events.push(
                t + extra + lat.bus + lat.pi_in,
                Ev::MagicIn {
                    node: n,
                    wire: Wire {
                        mtype,
                        src: NodeId(n),
                        addr,
                        aux: 0,
                        with_data: mtype.carries_data(),
                    },
                },
            );
        }
    }

    fn ev_magic_in(&mut self, node: u16, wire: Wire) {
        if trace_addr() == Some(wire.addr.line().raw()) {
            let home = self.cfg.placement.home_of(wire.addr, self.cfg.nodes);
            eprintln!(
                "[{}] magic_in node{} {:?} src={} aux={:#x} hdr={:#x}",
                self.now,
                node,
                wire.mtype,
                wire.src,
                wire.aux,
                self.chips[home.index()]
                    .peek_header(flash_protocol::dir_addr(wire.addr))
                    .0
            );
        }
        let home = self.cfg.placement.home_of(wire.addr, self.cfg.nodes);
        self.mark_progress();
        self.ring.push(TraceEntry {
            at: self.now.raw(),
            node,
            kind: wire.mtype.name(),
            src: wire.src.0,
            line: wire.addr.line().raw(),
            aux: wire.aux,
        });
        let msg = InMsg {
            mtype: wire.mtype,
            src: wire.src,
            addr: wire.addr,
            aux: wire.aux,
            spec: false,
            self_node: NodeId(node),
            home,
            diraddr: dir_addr(wire.addr),
            with_data: wire.with_data,
        };
        // Fault hooks (taken only when an injector is armed): a PP
        // slowdown burst holds the protocol processor busy past `now`; a
        // handler running inside a DRAM refresh window finds its memory
        // controller blocked to the window's end.
        if let Some(inj) = self.injector.as_mut() {
            let burst = inj.pp_burst(self.now, node);
            if burst > 0 {
                self.chips[node as usize].stall_pp(self.now + burst);
            }
            if let Some(until) = inj.dram_block(self.now) {
                self.chips[node as usize].block_memory(until);
            }
        }
        // Observed mode: advance the tracked request's frontier to the
        // inbox arrival (bus/PI gap for processor-side messages, NI-input
        // gap for network-side).
        let obs_key = self.observe_key(node, &wire);
        if let Some((key, seg)) = obs_key {
            self.observe
                .as_mut()
                .expect("observe_key implies observer")
                .advance(key, self.now, seg);
        }
        // Read-miss classification at the home (paper Tables 4.1/4.2).
        let chip = &mut self.chips[node as usize];
        let class = match wire.mtype {
            MsgType::PiGet if home == NodeId(node) => chip.classify_read(&msg, NodeId(node)),
            MsgType::NGet => chip.classify_read(&msg, aux::requester(wire.aux)),
            _ => None,
        };
        let emissions = chip.process(msg, self.now);
        // Observed mode: record the handler invocation, note the read
        // class, and fold the chip's exact per-emission decomposition
        // into the tracked request the first continuing emission serves.
        if let Some(obs) = self.observe.as_mut() {
            if let Some(inv) = self.chips[node as usize].obs_invocation().copied() {
                obs.trace_handler(node, &inv);
            }
            if let Some((key, _)) = obs_key {
                if let Some(class) = class {
                    obs.note_class(key, class);
                }
                if let Some(i) = emissions
                    .iter()
                    .position(|em| Self::emission_continues(em, key, node))
                {
                    let parts = self.chips[node as usize].obs_parts()[i];
                    let net = matches!(emissions[i], Emission::Net { .. });
                    obs.apply_parts(key, emissions[i].at(), &parts, net);
                }
            }
        }
        for em in emissions {
            match em {
                Emission::Net { at, msg } => self.post_net(at, msg),
                Emission::Proc { at, msg } => {
                    if let Some(ctx) = self.check.as_mut() {
                        let key = (node, msg.addr.line().raw());
                        match msg.mtype {
                            // The copy is logically dead from the moment
                            // the invalidation is queued on the bus.
                            MsgType::PInval => {
                                *ctx.inflight_invals.entry(key).or_insert(0) += 1;
                            }
                            // The copy is mid-handoff: the new owner may
                            // install its (exclusive) copy before this bus
                            // transaction invalidates or downgrades ours.
                            MsgType::PIntervGet | MsgType::PIntervGetX => {
                                *ctx.inflight_intervs.entry(key).or_insert(0) += 1;
                            }
                            _ => {}
                        }
                    }
                    self.events.push(
                        at,
                        Ev::ProcDeliver {
                            node,
                            pm: msg,
                            tries: 0,
                        },
                    );
                }
            }
        }
    }

    fn post_net(&mut self, at: Cycle, msg: Msg) {
        if trace_addr() == Some(msg.addr.line().raw()) {
            eprintln!(
                "[{}] post_net at={} {:?} {}->{} aux={:#x}",
                self.now, at, msg.mtype, msg.src, msg.dst, msg.aux
            );
        }
        // Fault hooks on the outbound path: an output-queue freeze at the
        // source NI delays entry to the mesh; then the link verdict may
        // delay further (transient stall, hop spike) or hold the message
        // entirely (scripted outage — re-offered later, not progress).
        let mut at = at;
        if let Some(inj) = self.injector.as_mut() {
            if let Some(resume) = inj.ni_freeze(at, msg.src.0, NiDir::Out) {
                at = resume;
            }
            match inj.link_verdict(at, msg.src.0, msg.dst.0) {
                LinkVerdict::Clear => {}
                LinkVerdict::Delay(d) => at += d,
                LinkVerdict::Hold { resume } => {
                    self.events.push(resume, Ev::NetSend { msg });
                    return;
                }
            }
        }
        let arrival = self.net.send(at, msg.src, msg.dst);
        // Observed mode: source-side holds (fault layer) count as
        // NI-wait, the hop itself as mesh transit.
        if self.observe.is_some() {
            if let Some(key) = self.net_msg_key(&msg) {
                if let Some(obs) = self.observe.as_mut() {
                    obs.net_hop(key, at, arrival);
                }
            }
        }
        // An input-queue freeze at the destination NI delays dispatch
        // into the inbox.
        let mut deliver = arrival + self.cfg.lat.ni_in;
        if let Some(inj) = self.injector.as_mut() {
            if let Some(resume) = inj.ni_freeze(deliver, msg.dst.0, NiDir::In) {
                deliver = resume;
            }
        }
        self.events.push(
            deliver,
            Ev::MagicIn {
                node: msg.dst.0,
                wire: Wire {
                    mtype: msg.mtype,
                    src: msg.src,
                    addr: msg.addr,
                    aux: msg.aux,
                    with_data: msg.with_data,
                },
            },
        );
    }

    fn ev_proc_deliver(&mut self, node: u16, pm: ProcMsg, tries: u32) {
        let i = node as usize;
        let lat = self.cfg.lat;
        // Consuming a delivery is forward progress; the intervention
        // *deferral* path below re-queues without consuming and is
        // deliberately not counted (a deferral loop is a livelock).
        if !matches!(pm.mtype, MsgType::PIntervGet | MsgType::PIntervGetX) {
            self.mark_progress();
        }
        match pm.mtype {
            MsgType::PPut | MsgType::PPutX | MsgType::PUpgAck => {
                // Observed mode: the reply reaching the processor closes
                // the tracked request (before `deliver_reply`, whose
                // freed MSHR may immediately re-issue on this line).
                if let Some(obs) = self.observe.as_mut() {
                    obs.complete((node, pm.addr.line().raw()), self.now);
                }
                let excl = pm.mtype != MsgType::PPut;
                let mut outs = Vec::new();
                self.procs[i].deliver_reply(pm.addr, excl, self.now, &mut outs);
                self.post_cpu_outs(node, &outs);
                self.wake_if_waiting(node, self.now);
            }
            MsgType::PInval => {
                self.procs[i].inval(pm.addr, self.now);
                if let Some(ctx) = self.check.as_mut() {
                    let key = (node, pm.addr.line().raw());
                    if let Some(n) = ctx.inflight_invals.get_mut(&key) {
                        *n -= 1;
                        if *n == 0 {
                            ctx.inflight_invals.remove(&key);
                        }
                    }
                    // An invalidation reaching this copy discharges any
                    // provisional rogue-copy observation: the self-repair
                    // completed.
                    ctx.provisional_rogues.remove(&key);
                }
            }
            MsgType::PIntervGet | MsgType::PIntervGetX => {
                let excl = pm.mtype == MsgType::PIntervGetX;
                let mut give_up = false;
                if self.procs[i].has_mshr(pm.addr) {
                    if tries < MAX_INTERV_DEFERRALS {
                        // Data for this line is in flight; the bus
                        // transaction retries until it lands.
                        self.interv_deferrals += 1;
                        self.events.push(
                            self.now + 16,
                            Ev::ProcDeliver {
                                node,
                                pm,
                                tries: tries + 1,
                            },
                        );
                        return;
                    }
                    // Request/forward cycle: break it. The miss report
                    // makes the home abandon the transaction; poisoning
                    // keeps the eventual grant from caching a stale copy.
                    self.procs[i].poison_pending(pm.addr);
                    give_up = true;
                }
                // The intervention is being consumed (not re-deferred):
                // the copy's handoff window closes here.
                self.mark_progress();
                // Observed mode: the requester's frontier waited out the
                // owner's bus transaction (deferrals included) — PI time.
                if let Some(obs) = self.observe.as_mut() {
                    obs.advance(
                        (aux::requester(pm.aux).0, pm.addr.line().raw()),
                        self.now,
                        Segment::Pi,
                    );
                }
                if let Some(ctx) = self.check.as_mut() {
                    let key = (node, pm.addr.line().raw());
                    if let Some(n) = ctx.inflight_intervs.get_mut(&key) {
                        *n -= 1;
                        if *n == 0 {
                            ctx.inflight_intervs.remove(&key);
                        }
                    }
                }
                let found = !give_up && self.procs[i].intervention(pm.addr, excl, self.now);
                let (mtype, delay) = if found {
                    (MsgType::PiIntervReply, lat.cache_data)
                } else {
                    (MsgType::PiIntervMiss, lat.cache_state)
                };
                self.events.push(
                    self.now + delay + lat.bus + lat.pi_in,
                    Ev::MagicIn {
                        node,
                        wire: Wire {
                            mtype,
                            src: NodeId(node),
                            addr: pm.addr,
                            aux: pm.aux,
                            with_data: found,
                        },
                    },
                );
            }
            MsgType::PNackRetry => {
                // Observed mode: the NACK round trip ends on the
                // requester's bus; the retry gap is PI time.
                if let Some(obs) = self.observe.as_mut() {
                    obs.advance((node, pm.addr.line().raw()), self.now, Segment::Pi);
                }
                if let Some(o) = self.procs[i].nack_retry(pm.addr) {
                    // Bus retry: the miss was already detected, so only
                    // the retry delay plus bus/PI path applies.
                    let (mtype, addr) = match o {
                        flash_cpu::CpuOut::Get(a) => (MsgType::PiGet, a),
                        flash_cpu::CpuOut::GetX(a) => (MsgType::PiGetX, a),
                        flash_cpu::CpuOut::Upgrade(a) => (MsgType::PiUpgrade, a),
                        other => unreachable!("{other:?} is not retryable"),
                    };
                    self.events.push(
                        self.now + lat.retry + lat.bus + lat.pi_in,
                        Ev::MagicIn {
                            node,
                            wire: Wire {
                                mtype,
                                src: NodeId(node),
                                addr,
                                aux: 0,
                                with_data: false,
                            },
                        },
                    );
                }
            }
            MsgType::PIoData => {}
            other => unreachable!("{other:?} is not a processor-bound message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::node_addr;
    use flash_cpu::{SliceStream, WorkItem};

    fn machine_with(cfg: MachineConfig, per_proc: Vec<Vec<WorkItem>>) -> Machine {
        let streams = per_proc
            .into_iter()
            .map(|v| Box::new(SliceStream::new(v)) as Box<dyn RefStream>)
            .collect();
        Machine::new(cfg, streams)
    }

    fn idle(n: usize) -> Vec<Vec<WorkItem>> {
        vec![vec![WorkItem::Busy(4)]; n]
    }

    /// Runs to completion or panics with the full structured diagnosis
    /// (the `WedgeReport` path) instead of a bare "stuck".
    fn must_complete(m: &mut Machine, budget: u64) -> u64 {
        match m.run(budget) {
            RunResult::Completed { exec_cycles } => exec_cycles,
            RunResult::Wedged { report } => panic!("{report}"),
            other => panic!("{}", m.diagnose(&format!("{other:?}"))),
        }
    }

    #[test]
    fn empty_machine_completes() {
        for cfg in [
            MachineConfig::flash(4),
            MachineConfig::ideal(4),
            MachineConfig::flash_cost_table(4),
        ] {
            let mut m = machine_with(cfg, idle(4));
            match m.run(10_000) {
                RunResult::Completed { exec_cycles } => assert_eq!(exec_cycles, 1),
                r => panic!("unexpected {r:?}"),
            }
        }
    }

    /// Read stall of the final read in `items` relative to `warm_items`
    /// (which excludes it), isolating warm-path latency from cold MAGIC
    /// cache effects — the paper's Table 3.3 assumes warm steady state.
    fn marginal_read_stall(
        cfg: &MachineConfig,
        procs: u16,
        warm_items: Vec<WorkItem>,
        items: Vec<WorkItem>,
    ) -> f64 {
        let idle: Vec<WorkItem> = vec![WorkItem::Busy(1)];
        let run = |it: Vec<WorkItem>| {
            let mut streams = vec![it];
            for _ in 1..procs {
                streams.push(idle.clone());
            }
            let mut m = machine_with(cfg.clone(), streams);
            must_complete(&mut m, 1_000_000);
            m.procs()[0].stats().read_stall_q as f64 / 4.0
        };
        run(items) - run(warm_items)
    }

    #[test]
    fn single_local_read_latency_matches_table_3_3() {
        // Warm-up read to a neighbouring line (same MDC header line), then
        // a timed read: ~27 cycles on FLASH, 24 on ideal (paper Table 3.3).
        let a = node_addr(NodeId(0), 0x2000);
        let warm = node_addr(NodeId(0), 0x2080);
        let warm_items = vec![WorkItem::Read(warm), WorkItem::Busy(4000)];
        let mut items = warm_items.clone();
        items.push(WorkItem::Read(a));
        for (cfg, expect) in [
            (MachineConfig::flash(1), 27u64),
            (MachineConfig::ideal(1), 24u64),
        ] {
            let per_miss = marginal_read_stall(&cfg, 1, warm_items.clone(), items.clone());
            assert!(
                (per_miss - expect as f64).abs() <= 3.0,
                "per-miss read stall {per_miss:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn remote_read_latency_roughly_matches_table_3_3() {
        // Processor 0 reads a line homed on node 1 (clean): FLASH 111,
        // ideal 92 (paper Table 3.3), measured after warming the remote
        // handler paths and MDC header line.
        let a = node_addr(NodeId(1), 0x4000);
        let warm = node_addr(NodeId(1), 0x4080);
        let warm_items = vec![WorkItem::Read(warm), WorkItem::Busy(8000)];
        let mut items = warm_items.clone();
        items.push(WorkItem::Read(a));
        // Small machines have shorter meshes; pin the paper's 16-node
        // 22-cycle average transit for comparability with Table 3.3.
        let mut fcfg = MachineConfig::flash(2);
        fcfg.net.transit_override = Some(22);
        let mut icfg = MachineConfig::ideal(2);
        icfg.net.transit_override = Some(22);
        for (cfg, expect, tol) in [(fcfg, 111.0, 15.0), (icfg, 92.0, 12.0)] {
            let stall = marginal_read_stall(&cfg, 2, warm_items.clone(), items.clone());
            assert!(
                (stall - expect).abs() <= tol,
                "remote clean read stall {stall:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn dirty_remote_transfer_works() {
        // P1 writes a line homed on node 0; P0 then reads it (local read,
        // dirty remote). Both machines must complete with correct traffic.
        let a = node_addr(NodeId(0), 0x8000);
        let w = vec![WorkItem::Write(a), WorkItem::Barrier, WorkItem::Busy(4)];
        let r = vec![WorkItem::Barrier, WorkItem::Read(a), WorkItem::Busy(4)];
        for cfg in [
            MachineConfig::flash(2),
            MachineConfig::ideal(2),
            MachineConfig::flash_cost_table(2),
        ] {
            let kind = cfg.controller;
            let mut m = machine_with(cfg, vec![r.clone(), w.clone()]);
            match m.run(1_000_000) {
                RunResult::Completed { exec_cycles } => {
                    assert!(exec_cycles > 100, "{kind:?}: too fast ({exec_cycles})");
                }
                r => panic!("{kind:?}: {r:?}"),
            }
            // The read was classified local-dirty-remote at the home.
            let class = m.chips()[0].stats().read_class;
            assert_eq!(class.local_dirty_remote, 1, "{kind:?}");
        }
    }

    #[test]
    fn barrier_synchronizes_all_processors() {
        let a = |n: u16| node_addr(NodeId(n), 0x100);
        let mk = |n: u16| {
            vec![
                WorkItem::Busy(400 * (n as u64 + 1)), // staggered arrival
                WorkItem::Barrier,
                WorkItem::Read(a(n)),
                WorkItem::Busy(4),
            ]
        };
        let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
        let exec_cycles = must_complete(&mut m, 1_000_000);
        // The fastest processor waited for the slowest: sync stall > 0.
        assert!(m.procs()[0].stats().sync_stall_q > 0);
        assert_eq!(m.procs()[3].stats().sync_stall_q, 0);
        assert!(exec_cycles >= 400);
    }

    #[test]
    fn locks_serialize_critical_sections() {
        let mk = |_n: u16| {
            vec![
                WorkItem::Lock(7),
                WorkItem::Busy(400),
                WorkItem::Unlock(7),
                WorkItem::Busy(4),
            ]
        };
        let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
        let exec_cycles = must_complete(&mut m, 1_000_000);
        // Four 100-cycle critical sections must serialize.
        assert!(exec_cycles >= 400, "exec {exec_cycles}");
        let total_sync: u64 = m.procs().iter().map(|p| p.stats().sync_stall_q).sum();
        assert!(total_sync > 0);
    }

    #[test]
    fn sharing_and_invalidation_round_trip() {
        // All processors read a line homed on node 0, then P1 writes it.
        let a = node_addr(NodeId(0), 0xc000);
        let mk = |n: u16| {
            let mut v = vec![WorkItem::Read(a), WorkItem::Barrier];
            if n == 1 {
                v.push(WorkItem::Write(a));
            }
            v.push(WorkItem::Barrier);
            v.push(WorkItem::Busy(4));
            v
        };
        for cfg in [MachineConfig::flash(4), MachineConfig::ideal(4)] {
            let kind = cfg.controller;
            let mut m = machine_with(cfg, (0..4).map(mk).collect());
            match m.run(1_000_000) {
                RunResult::Completed { .. } => {}
                r => panic!("{kind:?}: {r:?}"),
            }
            let invals: u64 = m.procs().iter().map(|p| p.stats().invals_received).sum();
            assert!(
                invals >= 2,
                "{kind:?}: sharers must be invalidated, got {invals}"
            );
        }
    }

    #[test]
    fn dma_write_invalidates_cached_copies() {
        let a = node_addr(NodeId(0), 0x3000);
        let items = vec![
            WorkItem::Read(a),
            WorkItem::Busy(40_000),
            WorkItem::Read(a),
            WorkItem::Busy(4),
        ];
        let mut m = machine_with(
            MachineConfig::flash(2),
            vec![items, vec![WorkItem::Busy(1)]],
        );
        m.add_dma_write(Cycle::new(2_000), NodeId(0), a);
        must_complete(&mut m, 1_000_000);
        assert_eq!(m.procs()[0].stats().invals_received, 1);
        // Second read misses again after the DMA invalidation.
        assert_eq!(m.procs()[0].stats().read_misses, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = node_addr(NodeId(1), 0x9000);
        let mk = |n: u16| {
            vec![
                WorkItem::Read(node_addr(NodeId(n), 0x100)),
                WorkItem::Write(a),
                WorkItem::Barrier,
                WorkItem::Read(a),
                WorkItem::Busy(8),
            ]
        };
        let run_once = || {
            let mut m = machine_with(MachineConfig::flash(4), (0..4).map(mk).collect());
            match m.run(1_000_000) {
                RunResult::Completed { exec_cycles } => exec_cycles,
                r => panic!("{r:?}"),
            }
        };
        assert_eq!(run_once(), run_once());
    }

    /// A small sharing workload with remote traffic on every path.
    fn sharing_workload(n: u16) -> Vec<Vec<WorkItem>> {
        let a = node_addr(NodeId(0), 0xc000);
        (0..n)
            .map(|i| {
                let mut v = vec![WorkItem::Read(a), WorkItem::Barrier];
                if i == 1 {
                    v.push(WorkItem::Write(a));
                }
                v.push(WorkItem::Barrier);
                v.push(WorkItem::Read(node_addr(NodeId(i), 0x100)));
                v.push(WorkItem::Busy(8));
                v
            })
            .collect()
    }

    #[test]
    fn armed_but_zeroed_fault_plan_is_timing_invisible() {
        // The acceptance pin: with every rate zeroed, the injector is
        // constructed and every hook is called — yet no RNG draw happens
        // and the schedule is cycle-identical to a disarmed machine.
        let run = |faults: crate::FaultPlan| {
            let cfg = MachineConfig::flash(4).with_faults(faults);
            let mut m = machine_with(cfg, sharing_workload(4));
            let exec = must_complete(&mut m, 1_000_000);
            (exec, m.fault_stats())
        };
        let (base, none_stats) = run(crate::FaultPlan::none());
        let (armed, zero_stats) = run(crate::FaultPlan::zeroed(7));
        assert_eq!(base, armed, "zeroed plan perturbed timing");
        assert_eq!(none_stats, None);
        assert_eq!(zero_stats, Some(flash_fault::FaultStats::default()));
    }

    #[test]
    fn light_faults_delay_but_converge() {
        let base = {
            let mut m = machine_with(MachineConfig::flash(4), sharing_workload(4));
            must_complete(&mut m, 10_000_000)
        };
        let cfg = MachineConfig::flash(4).with_faults(crate::FaultPlan::stress(11));
        let mut m = machine_with(cfg, sharing_workload(4));
        let exec = must_complete(&mut m, 10_000_000);
        assert!(
            exec >= base,
            "faults may only slow the machine down ({exec} < {base})"
        );
        let stats = m.fault_stats().expect("injector armed");
        assert!(
            stats.hop_spikes + stats.link_stalls + stats.ni_freezes + stats.pp_bursts > 0,
            "stress plan injected nothing: {stats:?}"
        );
    }

    #[test]
    fn fault_schedules_replay_byte_identically() {
        let run = |seed: u64| {
            let cfg = MachineConfig::flash(4).with_faults(crate::FaultPlan::stress(seed));
            let mut m = machine_with(cfg, sharing_workload(4));
            let exec = must_complete(&mut m, 10_000_000);
            (exec, m.fault_stats().unwrap())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0, "different seeds, different schedule");
    }

    #[test]
    fn permanent_link_outage_wedges_with_diagnosis() {
        // Node 2 takes dirty ownership of a line homed on node 1; then
        // the 1->2 link goes down for good. Node 0's read reaches the
        // home, which marks the line PENDING and forwards to node 2 —
        // where the forward is held forever. The watchdog must diagnose
        // exactly that: a wedge with the held link, the PENDING line,
        // and node 0 waiting on its read MSHR.
        let a = node_addr(NodeId(1), 0x4000);
        let streams = vec![
            vec![WorkItem::Busy(20_000), WorkItem::Read(a), WorkItem::Busy(4)],
            vec![WorkItem::Busy(4)],
            vec![WorkItem::Write(a), WorkItem::Busy(4)],
        ];
        // Busy items are quarter-cycles: node 0 reads at ~cycle 5_000,
        // after the outage begins at 1_000 (node 2's write completed by
        // ~250, before it).
        let faults = crate::FaultPlan::zeroed(0).with_link_down(1, 2, 1_000, None);
        let cfg = MachineConfig::flash(3)
            .with_faults(faults)
            .with_watchdog(100_000);
        let mut m = machine_with(cfg, streams);
        let RunResult::Wedged { report } = m.run(10_000_000) else {
            panic!("expected a wedge");
        };
        assert_eq!(report.window, 100_000);
        assert!(report.at > report.last_progress_at);
        assert_eq!(report.total, 3);
        // The held link is named, and it is the scripted permanent one.
        assert_eq!(report.stalled_links.len(), 1);
        let l = &report.stalled_links[0];
        assert_eq!((l.src, l.dst), (1, 2));
        assert!(l.permanent);
        assert!(l.holds > 0);
        // The line is PENDING at its home.
        assert!(
            report
                .pending_lines
                .iter()
                .any(|p| p.home == 1 && p.line == a.line().raw()),
            "pending lines: {:?}",
            report.pending_lines
        );
        // Node 0 is blocked on its read of that line.
        let n0 = &report.nodes[0];
        assert_eq!(n0.state, "wait-reply");
        assert!(n0
            .mshrs
            .iter()
            .any(|s| s.line == a.line().raw() && s.kind == "Read"));
        // The rendered report names the essentials.
        let text = report.to_string();
        assert!(text.contains("WEDGE"));
        assert!(text.contains("1->2"));
        assert!(text.contains("PENDING directory lines"));
        // Recent traffic on the suspect line was captured.
        assert!(report.recent.iter().any(|e| e.line == a.line().raw()));
    }

    #[test]
    fn finite_link_outage_releases_and_completes() {
        let a = node_addr(NodeId(1), 0x4000);
        let streams = vec![
            vec![WorkItem::Busy(20_000), WorkItem::Read(a), WorkItem::Busy(4)],
            vec![WorkItem::Busy(4)],
            vec![WorkItem::Write(a), WorkItem::Busy(4)],
        ];
        let faults = crate::FaultPlan::zeroed(0).with_link_down(1, 2, 1_000, Some(60_000));
        let cfg = MachineConfig::flash(3)
            .with_faults(faults)
            .with_watchdog(100_000);
        let mut m = machine_with(cfg, streams);
        let exec = must_complete(&mut m, 10_000_000);
        assert!(exec >= 60_000, "the read had to wait out the outage");
        assert!(m.fault_stats().unwrap().link_holds > 0);
    }

    #[test]
    fn diagnose_is_available_without_faults() {
        let mut m = machine_with(MachineConfig::flash(2), idle(2));
        must_complete(&mut m, 10_000);
        let report = m.diagnose("post-run inspection");
        assert_eq!(report.done, 2);
        assert!(report.pending_lines.is_empty());
        assert!(report.stalled_links.is_empty());
        assert_eq!(report.fault_stats, None);
    }

    #[test]
    fn ideal_never_slower_than_flash() {
        let a = node_addr(NodeId(1), 0x9000);
        let mk = |n: u16| {
            let mut v = Vec::new();
            for i in 0..50u64 {
                v.push(WorkItem::Read(node_addr(NodeId(n), i * 128)));
                v.push(WorkItem::Write(
                    a.offset(((n as u64 * 50 + i) % 64) * 2 * 128),
                ));
                v.push(WorkItem::Busy(16));
            }
            v.push(WorkItem::Barrier);
            v
        };
        let time = |cfg: MachineConfig| {
            let mut m = machine_with(cfg, (0..4).map(mk).collect());
            match m.run(10_000_000) {
                RunResult::Completed { exec_cycles } => exec_cycles,
                r => panic!("{r:?}"),
            }
        };
        let flash = time(MachineConfig::flash(4));
        let ideal = time(MachineConfig::ideal(4));
        assert!(
            ideal <= flash,
            "ideal ({ideal}) must not be slower than FLASH ({flash})"
        );
    }
}
