//! Machine configuration.
//!
//! Defaults reproduce the paper's §3.2 common characteristics: 400-MIPS
//! processors, 1 MB two-way processor caches with 4 MSHRs, 128-byte lines,
//! 14-cycle memory, the 16-node mesh's 22-cycle average network transit,
//! and the MAGIC sub-operation latencies of Table 3.2.

use flash_engine::{Addr, NodeId};
use flash_fault::FaultPlan;
use flash_magic::{ControllerKind, PpBackend};
use flash_mem::MemTiming;
use flash_net::NetConfig;
use flash_pp::CodegenOptions;

/// Default forward-progress watchdog window, in cycles. At the paper's
/// 100 MHz clock this is 20 ms of simulated time with no retirement,
/// message delivery, or handler invocation — far beyond any legitimate
/// quiet period in the studied workloads (the worst NACK-retry storms
/// make progress every few hundred cycles).
pub const DEFAULT_WATCHDOG_WINDOW: u64 = 2_000_000;

/// Default watchdog window scaled with machine size. The 2M-cycle base
/// was tuned for the 16/64-node matrix; barrier quiet periods and NACK
/// storms both stretch with node count (more arrivals to wait for, more
/// retry traffic per line), so the window grows linearly beyond 64 nodes:
/// 64 nodes → 2M, 256 → 8M, 1024 → 32M.
pub fn default_watchdog_window(nodes: u16) -> u64 {
    DEFAULT_WATCHDOG_WINDOW * ((nodes as u64).div_ceil(64)).max(1)
}

/// Process-wide default shard count, read from `FLASH_SHARDS` (≥ 1;
/// unset, empty, or unparsable means 1 — the serial engine). Pinned the
/// same way `FLASH_JOBS` is: results are byte-identical for every value,
/// so this is a host-performance knob, never a model knob.
pub fn shards_from_env() -> usize {
    std::env::var("FLASH_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// How physical pages map to home nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The workload encodes the home node in address bits 32..48 —
    /// explicit data placement, as tuned parallel applications do.
    Explicit,
    /// Pages are allocated round-robin across node memories (the paper's
    /// OS workload policy, §3.4).
    RoundRobinPages {
        /// Page size in bytes.
        page_bytes: u64,
    },
    /// Every page lives on node 0 — the §4.3 hot-spot configurations
    /// ("allocated all of its memory from node zero"; the original IRIX
    /// port that "fills the memory of one node before going on").
    FirstNode,
}

impl Placement {
    /// Home node of an address under this policy.
    pub fn home_of(&self, addr: Addr, nodes: u16) -> NodeId {
        match *self {
            Placement::Explicit => NodeId(((addr.raw() >> 32) as u16) % nodes),
            Placement::RoundRobinPages { page_bytes } => {
                NodeId(((addr.raw() / page_bytes) % nodes as u64) as u16)
            }
            Placement::FirstNode => NodeId(0),
        }
    }
}

/// Helper for [`Placement::Explicit`] address construction: byte `offset`
/// within `node`'s memory.
///
/// # Examples
///
/// ```
/// use flash::config::{node_addr, Placement};
/// use flash_engine::NodeId;
///
/// let a = node_addr(NodeId(3), 0x100);
/// assert_eq!(Placement::Explicit.home_of(a, 16), NodeId(3));
/// ```
pub fn node_addr(node: NodeId, offset: u64) -> Addr {
    debug_assert!(offset < 1 << 32, "offset overflows the node field");
    Addr::new(((node.0 as u64) << 32) | offset)
}

/// Fixed path latencies outside the MAGIC chip, in cycles (Table 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLatencies {
    /// Miss detect to request on bus.
    pub miss_to_bus: u64,
    /// Bus transit.
    pub bus: u64,
    /// PI inbound processing.
    pub pi_in: u64,
    /// NI inbound processing.
    pub ni_in: u64,
    /// Retrieve state from the processor cache (state-only intervention).
    pub cache_state: u64,
    /// Retrieve the first double word of data from the processor cache.
    pub cache_data: u64,
    /// Processor bus retry delay after a NACK.
    pub retry: u64,
    /// Simulation-level lock hand-off time.
    pub lock_grant: u64,
}

impl Default for PathLatencies {
    fn default() -> Self {
        PathLatencies {
            miss_to_bus: 5,
            bus: 1,
            pi_in: 1,
            ni_in: 8,
            cache_state: 15,
            cache_data: 20,
            retry: 4,
            lock_grant: 2,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of nodes (= processors).
    pub nodes: u16,
    /// Controller kind: detailed FLASH, table-driven FLASH, or ideal.
    pub controller: ControllerKind,
    /// Processor cache capacity in bytes.
    pub cache_bytes: u64,
    /// Outstanding-miss registers per processor.
    pub mshrs: usize,
    /// Inbox speculative memory initiation (paper Table 5.1 knob).
    pub speculation: bool,
    /// PP code generation (paper §5.3 knob).
    pub codegen: CodegenOptions,
    /// Model the MDC (disable for the §5.2 no-penalty counterfactual).
    pub mdc_enabled: bool,
    /// Run the monitoring protocol variant: request handlers count
    /// accesses per line in protocol memory (a flexibility showcase with
    /// measurable PP overhead).
    pub monitoring: bool,
    /// Checked mode: run the `flash-check` correctness net (coherence
    /// invariants, directory audits, and — for emulated controllers
    /// running the base protocol — the native-vs-PP differential oracle)
    /// alongside the simulation. Off by default: checked mode never
    /// perturbs timing, but it costs a protocol-memory snapshot per
    /// handler invocation.
    pub check: bool,
    /// Page-placement policy.
    pub placement: Placement,
    /// DRAM timing.
    pub mem_timing: MemTiming,
    /// Network parameters.
    pub net: NetConfig,
    /// Off-chip path latencies.
    pub lat: PathLatencies,
    /// Deterministic fault-injection plan. [`FaultPlan::none()`] (the
    /// default) arms nothing and is timing-invisible: no injector is
    /// constructed and no RNG draw ever happens.
    pub faults: FaultPlan,
    /// Observed mode: run the cycle-attribution observability layer
    /// alongside the simulation. Every completed processor miss is
    /// decomposed into per-[`flash_engine::Segment`] cycles, accumulated
    /// per read class and per handler, and a bounded ring of trace events
    /// is kept for Chrome-trace export (`FLASH_TRACE_OUT`). Off by
    /// default; like checked and fault modes it never perturbs timing —
    /// `tests/observe.rs` pins cycle-identical schedules with it on.
    /// See `METRICS.md` for the exported schema.
    pub observe: bool,
    /// Forward-progress watchdog window in cycles: if no retirement,
    /// message delivery, or handler invocation happens for this many
    /// cycles, the run returns [`RunResult::Wedged`] with a structured
    /// report instead of spinning to the budget. `0` disables the
    /// watchdog.
    ///
    /// [`RunResult::Wedged`]: crate::machine::RunResult::Wedged
    pub watchdog_window: u64,
    /// PP execution backend for emulated controllers: the reference
    /// per-pair emulator or the pre-translated native fast path. The two
    /// are bit-identical in timing, statistics, and effects, so this is a
    /// host-performance knob, never a model knob. Defaults to the
    /// process-wide `FLASH_PP_BACKEND` setting (translated when unset).
    pub pp_backend: PpBackend,
    /// Shard count for the conservative-time-window parallel engine:
    /// mesh nodes are partitioned into this many contiguous shards, each
    /// stepping its own event queue, synchronized every
    /// minimum-cross-node-latency window. Clamped to the node count at
    /// run time. Like `pp_backend` this is a host-performance knob and
    /// never a model knob: every report, observation export, and repro
    /// line is byte-identical for any value (1 runs the same windowed
    /// engine serially, with no worker threads). Defaults to the
    /// process-wide `FLASH_SHARDS` setting (1 when unset).
    pub shards: usize,
    /// Host-time profiler: bracket every processed event with monotonic
    /// host-clock stamps and attribute the simulator's wall-clock time
    /// per subsystem (the host-time mirror of the cycle-attribution
    /// observer — see [`crate::hostprof`]). Off by default. A pure
    /// observer of the host clock: arming it never changes simulated
    /// timing or any report. Exported as `flash-hostprof-v1` JSON via
    /// `FLASH_HOSTPROF_OUT`; rendered by the `host_profile` bin.
    pub host_profile: bool,
    /// Hit fast path: a processor wakeup or quantum yield whose
    /// continuation is provably the shard's next event executes inline in
    /// the run loop instead of round-tripping through the event queue.
    /// The elision condition (`(at, sub) < queue head`, inside the
    /// current window and budget) makes the inlined execution exactly the
    /// pop the queue would have performed next, so every schedule,
    /// report, and export is byte-identical with it on or off — a host
    /// knob kept toggleable only so the equivalence stays pinned by test.
    pub inline_runs: bool,
}

impl MachineConfig {
    /// The detailed FLASH machine at `nodes` nodes.
    pub fn flash(nodes: u16) -> Self {
        MachineConfig {
            nodes,
            controller: ControllerKind::FlashEmulated,
            cache_bytes: 1 << 20,
            mshrs: 4,
            speculation: true,
            codegen: CodegenOptions::magic(),
            mdc_enabled: true,
            monitoring: false,
            check: false,
            placement: Placement::Explicit,
            mem_timing: MemTiming::default(),
            net: NetConfig::default(),
            lat: PathLatencies::default(),
            faults: FaultPlan::none(),
            observe: false,
            watchdog_window: default_watchdog_window(nodes),
            pp_backend: PpBackend::from_env(),
            shards: shards_from_env(),
            host_profile: false,
            inline_runs: true,
        }
    }

    /// The idealized hardwired machine at `nodes` nodes.
    pub fn ideal(nodes: u16) -> Self {
        MachineConfig {
            controller: ControllerKind::Ideal,
            ..Self::flash(nodes)
        }
    }

    /// The fast table-driven FLASH machine at `nodes` nodes.
    pub fn flash_cost_table(nodes: u16) -> Self {
        MachineConfig {
            controller: ControllerKind::FlashCostTable,
            ..Self::flash(nodes)
        }
    }

    /// Returns the config with a different processor cache size.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Returns the config with speculation enabled or disabled.
    pub fn with_speculation(mut self, on: bool) -> Self {
        self.speculation = on;
        self
    }

    /// Returns the config with a placement policy.
    pub fn with_placement(mut self, p: Placement) -> Self {
        self.placement = p;
        self
    }

    /// Returns the config with PP code-generation options.
    pub fn with_codegen(mut self, c: CodegenOptions) -> Self {
        self.codegen = c;
        self
    }

    /// Returns the config with the MDC model enabled or disabled.
    pub fn with_mdc(mut self, on: bool) -> Self {
        self.mdc_enabled = on;
        self
    }

    /// Returns the config with the monitoring protocol variant enabled.
    pub fn with_monitoring(mut self, on: bool) -> Self {
        self.monitoring = on;
        self
    }

    /// Returns the config with checked mode (the `flash-check`
    /// correctness net) enabled or disabled.
    pub fn with_check(mut self, on: bool) -> Self {
        self.check = on;
        self
    }

    /// Returns the config with a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Returns the config with the cycle-attribution observability layer
    /// enabled or disabled (see [`MachineConfig::observe`]).
    pub fn with_observe(mut self, on: bool) -> Self {
        self.observe = on;
        self
    }

    /// Returns the config with a watchdog window (`0` disables).
    pub fn with_watchdog(mut self, window: u64) -> Self {
        self.watchdog_window = window;
        self
    }

    /// Returns the config with a specific PP execution backend
    /// (overriding the `FLASH_PP_BACKEND` process default).
    pub fn with_pp_backend(mut self, backend: PpBackend) -> Self {
        self.pp_backend = backend;
        self
    }

    /// Returns the config with a specific shard count (overriding the
    /// `FLASH_SHARDS` process default; values below 1 are treated as 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Returns the config with the host-time profiler armed (see
    /// [`MachineConfig::host_profile`]). Timing-invisible: simulated
    /// results are identical with it on or off.
    pub fn with_host_profile(mut self, on: bool) -> Self {
        self.host_profile = on;
        self
    }

    /// Returns the config with the inline hit fast path enabled or
    /// disabled (see [`MachineConfig::inline_runs`]; results are
    /// byte-identical either way — the toggle exists to keep that
    /// equivalence testable).
    pub fn with_inline_runs(mut self, on: bool) -> Self {
        self.inline_runs = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_policies() {
        let rr = Placement::RoundRobinPages { page_bytes: 4096 };
        assert_eq!(rr.home_of(Addr::new(0), 16), NodeId(0));
        assert_eq!(rr.home_of(Addr::new(4096), 16), NodeId(1));
        assert_eq!(rr.home_of(Addr::new(16 * 4096), 16), NodeId(0));
        assert_eq!(
            Placement::FirstNode.home_of(Addr::new(1 << 40), 16),
            NodeId(0)
        );
        assert_eq!(
            Placement::Explicit.home_of(node_addr(NodeId(7), 123), 16),
            NodeId(7)
        );
        // Node field wraps at the machine size.
        assert_eq!(
            Placement::Explicit.home_of(node_addr(NodeId(17), 0), 16),
            NodeId(1)
        );
    }

    #[test]
    fn presets() {
        let f = MachineConfig::flash(16);
        assert_eq!(f.controller, ControllerKind::FlashEmulated);
        assert_eq!(f.cache_bytes, 1 << 20);
        let i = MachineConfig::ideal(16);
        assert_eq!(i.controller, ControllerKind::Ideal);
        let c = MachineConfig::flash(16)
            .with_cache_bytes(4 << 10)
            .with_speculation(false);
        assert_eq!(c.cache_bytes, 4 << 10);
        assert!(!c.speculation);
    }
}
