//! Machine-level statistics reports (the rows of the paper's tables).

use crate::machine::Machine;
use crate::observe::ObserveReport;
use flash_magic::{ControllerKind, ReadClassCounts};
use flash_pp::RunStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// No-contention read-miss latency per class, in cycles (paper Table 3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyTable {
    /// Local read miss, clean in local memory.
    pub local_clean: f64,
    /// Local read miss, dirty in a remote cache.
    pub local_dirty_remote: f64,
    /// Remote read miss, clean in home memory.
    pub remote_clean: f64,
    /// Remote read miss, dirty in the home node's cache.
    pub remote_dirty_home: f64,
    /// Remote read miss, dirty in a third node's cache.
    pub remote_dirty_remote: f64,
}

impl LatencyTable {
    /// The paper's published FLASH column.
    pub const fn paper_flash() -> Self {
        LatencyTable {
            local_clean: 27.0,
            local_dirty_remote: 143.0,
            remote_clean: 111.0,
            remote_dirty_home: 145.0,
            remote_dirty_remote: 191.0,
        }
    }

    /// The paper's published ideal-machine column.
    pub const fn paper_ideal() -> Self {
        LatencyTable {
            local_clean: 24.0,
            local_dirty_remote: 100.0,
            remote_clean: 92.0,
            remote_dirty_home: 100.0,
            remote_dirty_remote: 136.0,
        }
    }

    /// Latency for the classes in [`ReadClassCounts`] order.
    pub fn as_array(&self) -> [f64; 5] {
        [
            self.local_clean,
            self.local_dirty_remote,
            self.remote_clean,
            self.remote_dirty_home,
            self.remote_dirty_remote,
        ]
    }
}

/// MDC summary statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MdcSummary {
    /// Total MDC accesses.
    pub accesses: u64,
    /// Total MDC misses.
    pub misses: u64,
    /// Overall miss rate.
    pub miss_rate: f64,
    /// Read miss rate.
    pub read_miss_rate: f64,
    /// PP cycles lost to MDC misses.
    pub stall_cycles: u64,
}

/// Everything a paper table needs from one run.
///
/// Derives `PartialEq` so determinism tests can assert that a point
/// simulated serially and a point simulated on a worker thread produce
/// field-for-field identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineReport {
    /// Controller kind of the machine.
    pub controller: ControllerKind,
    /// Node count.
    pub nodes: u16,
    /// Application execution time in cycles.
    pub exec_cycles: u64,
    /// Execution-time fractions `[busy, cont, read, write, sync]`
    /// aggregated over processors (the Figure 4.1 buckets).
    pub breakdown: [f64; 5],
    /// Processor-cache miss rate (misses + upgrades over references).
    pub miss_rate: f64,
    /// Total references issued.
    pub references: u64,
    /// Read misses classified at homes.
    pub read_class: ReadClassCounts,
    /// Mean / maximum PP occupancy across nodes.
    pub pp_occupancy: (f64, f64),
    /// Mean / maximum memory occupancy across nodes.
    pub mem_occupancy: (f64, f64),
    /// Speculative reads issued and useless (Table 5.1).
    pub spec: (u64, u64),
    /// Aggregate PP instruction statistics (Table 5.2).
    pub pp_stats: RunStats,
    /// MDC summary (§5.2).
    pub mdc: MdcSummary,
    /// Per-handler `(invocations, occupancy cycles)`.
    pub handlers: BTreeMap<&'static str, (u64, u64)>,
    /// Network messages carried.
    pub messages: u64,
    /// Mean inbox wait per processed message (PP queueing delay, cycles).
    pub inbox_wait_mean: f64,
    /// Deferred interventions (race safety valve).
    pub interv_deferrals: u64,
    /// Cycle-attribution breakdown, present when the machine ran with
    /// [`MachineConfig::with_observe`](crate::MachineConfig::with_observe)
    /// (see `METRICS.md` for the exported schema).
    pub observe: Option<ObserveReport>,
}

impl MachineReport {
    /// Gathers the report from a finished machine.
    pub fn from_machine(m: &Machine) -> Self {
        let end = flash_engine::Cycle::new(m.exec_cycles().max(1));
        let mut breakdown_q = [0u64; 5];
        let mut references = 0;
        let mut miss_events = 0;
        for p in m.procs() {
            let s = p.stats();
            breakdown_q[0] += s.busy_q;
            breakdown_q[1] += s.cont_q;
            breakdown_q[2] += s.read_stall_q;
            breakdown_q[3] += s.write_stall_q;
            breakdown_q[4] += s.sync_stall_q;
            references += s.references();
            miss_events += s.read_misses + s.write_misses + s.upgrades;
        }
        let total_q: u64 = breakdown_q.iter().sum::<u64>().max(1);
        let breakdown = breakdown_q.map(|q| q as f64 / total_q as f64);

        let mut read_class = ReadClassCounts::default();
        let mut spec = (0u64, 0u64);
        let mut pp_stats = RunStats::default();
        let mut handlers: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        let mut pp_occ = Vec::new();
        let mut mem_occ = Vec::new();
        let mut mdc = MdcSummary::default();
        for c in m.chips() {
            let s = c.stats();
            let rc = s.read_class;
            read_class.local_clean += rc.local_clean;
            read_class.local_dirty_remote += rc.local_dirty_remote;
            read_class.remote_clean += rc.remote_clean;
            read_class.remote_dirty_home += rc.remote_dirty_home;
            read_class.remote_dirty_remote += rc.remote_dirty_remote;
            spec.0 += s.spec_issued;
            spec.1 += s.spec_useless;
            pp_stats.merge(&s.pp);
            for (name, (n, cyc)) in &s.handlers {
                let e = handlers.entry(name).or_default();
                e.0 += n;
                e.1 += cyc;
            }
            pp_occ.push(c.pp_occupancy(end));
            mem_occ.push(c.memory().occupancy(end));
            mdc.stall_cycles += s.mdc_stall_cycles;
            if let Some(cache) = c.mdc() {
                let acc = cache.read_hits()
                    + cache.read_misses()
                    + cache.write_hits()
                    + cache.write_misses();
                let miss = cache.read_misses() + cache.write_misses();
                mdc.accesses += acc;
                mdc.misses += miss;
            }
        }
        if mdc.accesses > 0 {
            mdc.miss_rate = mdc.misses as f64 / mdc.accesses as f64;
            let (mut rh, mut rm) = (0u64, 0u64);
            for c in m.chips() {
                if let Some(cache) = c.mdc() {
                    rh += cache.read_hits();
                    rm += cache.read_misses();
                }
            }
            if rh + rm > 0 {
                mdc.read_miss_rate = rm as f64 / (rh + rm) as f64;
            }
        }
        let mut inbox_wait = 0u64;
        let mut msgs = 0u64;
        for c in m.chips() {
            inbox_wait += c.stats().inbox_wait_cycles;
            msgs += c.stats().messages;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
        MachineReport {
            controller: m.config().controller,
            nodes: m.config().nodes,
            exec_cycles: m.exec_cycles(),
            breakdown,
            miss_rate: if references == 0 {
                0.0
            } else {
                miss_events as f64 / references as f64
            },
            references,
            read_class,
            pp_occupancy: (mean(&pp_occ), max(&pp_occ)),
            mem_occupancy: (mean(&mem_occ), max(&mem_occ)),
            spec,
            pp_stats,
            mdc,
            handlers,
            messages: m.network().messages(),
            inbox_wait_mean: inbox_wait as f64 / msgs.max(1) as f64,
            interv_deferrals: m.interv_deferrals(),
            observe: m.observe_report(),
        }
    }

    /// Fractions of classified read misses, in [`ReadClassCounts`] order.
    pub fn class_fractions(&self) -> [f64; 5] {
        let t = self.read_class.total().max(1) as f64;
        [
            self.read_class.local_clean as f64 / t,
            self.read_class.local_dirty_remote as f64 / t,
            self.read_class.remote_clean as f64 / t,
            self.read_class.remote_dirty_home as f64 / t,
            self.read_class.remote_dirty_remote as f64 / t,
        ]
    }

    /// Contentionless read miss time: the class distribution weighted by a
    /// per-class latency table (paper §4.1's CRMT).
    pub fn crmt(&self, lat: &LatencyTable) -> f64 {
        self.class_fractions()
            .iter()
            .zip(lat.as_array())
            .map(|(f, l)| f * l)
            .sum()
    }

    /// Fraction of useless speculative reads (Table 5.1).
    pub fn useless_spec_fraction(&self) -> f64 {
        if self.spec.0 == 0 {
            0.0
        } else {
            self.spec.1 as f64 / self.spec.0 as f64
        }
    }
}

/// A FLASH-vs-ideal comparison (the paper's headline measurement).
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// FLASH execution cycles.
    pub flash_cycles: u64,
    /// Ideal-machine execution cycles.
    pub ideal_cycles: u64,
    /// FLASH slowdown over ideal, in percent (the "2%–12%" result).
    pub slowdown_pct: f64,
}

/// Compares two runs of the same workload.
pub fn compare(flash: &MachineReport, ideal: &MachineReport) -> Comparison {
    let f = flash.exec_cycles as f64;
    let i = ideal.exec_cycles.max(1) as f64;
    Comparison {
        flash_cycles: flash.exec_cycles,
        ideal_cycles: ideal.exec_cycles,
        slowdown_pct: (f / i - 1.0) * 100.0,
    }
}

/// Formats a plain-text table with padded columns (for the table bins).
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: Vec<String>, out: &mut String| {
        for (i, c) in cells.iter().enumerate().take(cols) {
            let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(headers.iter().map(|s| s.to_string()).collect(), &mut out);
    line(widths.iter().map(|w| "-".repeat(*w)).collect(), &mut out);
    for r in rows {
        line(r.clone(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{node_addr, MachineConfig};
    use crate::machine::RunResult;
    use flash_cpu::{RefStream, SliceStream, WorkItem};
    use flash_engine::NodeId;

    fn small_run(cfg: MachineConfig) -> MachineReport {
        let mk = |n: u16| {
            let items = vec![
                WorkItem::Read(node_addr(NodeId(n), 0x100)),
                WorkItem::Read(node_addr(NodeId((n + 1) % 2), 0x100)),
                WorkItem::Busy(40),
            ];
            Box::new(SliceStream::new(items)) as Box<dyn RefStream>
        };
        let mut m = Machine::new(cfg, (0..2).map(mk).collect());
        let RunResult::Completed { .. } = m.run(1_000_000) else {
            panic!("stuck");
        };
        MachineReport::from_machine(&m)
    }

    #[test]
    fn report_totals_are_consistent() {
        let r = small_run(MachineConfig::flash(2));
        assert!(r.exec_cycles > 0);
        let sum: f64 = r.breakdown.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "breakdown must sum to 1, got {sum}"
        );
        assert_eq!(r.references, 4);
        assert_eq!(r.read_class.total(), 4);
        assert_eq!(r.read_class.local_clean, 2);
        assert_eq!(r.read_class.remote_clean, 2);
        assert!(r.miss_rate > 0.9);
        assert!(r.pp_occupancy.1 >= r.pp_occupancy.0);
        assert!(r.pp_stats.invocations > 0);
    }

    #[test]
    fn crmt_weights_classes() {
        let r = small_run(MachineConfig::flash(2));
        let crmt = r.crmt(&LatencyTable::paper_flash());
        // Half local clean (27), half remote clean (111): 69.
        assert!((crmt - 69.0).abs() < 1.0, "crmt {crmt}");
    }

    #[test]
    fn comparison_slowdown() {
        let f = small_run(MachineConfig::flash(2));
        let i = small_run(MachineConfig::ideal(2));
        let c = compare(&f, &i);
        assert!(c.slowdown_pct >= 0.0, "FLASH should not beat ideal: {c:?}");
        assert_eq!(c.flash_cycles, f.exec_cycles);
    }

    #[test]
    fn ideal_reports_zero_pp_occupancy() {
        let r = small_run(MachineConfig::ideal(2));
        assert_eq!(r.pp_occupancy, (0.0, 0.0));
        assert_eq!(r.spec, (0, 0));
    }

    #[test]
    fn format_table_pads_columns() {
        let t = format_table(
            &["App", "Cycles"],
            &[
                vec!["FFT".into(), "123".into()],
                vec!["Barnes".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[2].starts_with("FFT"));
        assert!(lines[3].starts_with("Barnes"));
    }
}
