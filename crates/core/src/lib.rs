//! # flash — the Stanford FLASH flexibility study, reproduced
//!
//! This crate assembles the full system of *"The Performance Impact of
//! Flexibility in the Stanford FLASH Multiprocessor"* (ASPLOS 1994): a
//! FLASH machine whose MAGIC node controllers execute real protocol
//! handler code on an emulated protocol processor, and the paper's
//! *idealized* hardwired machine whose controller processes every protocol
//! operation in zero time. Comparing application execution time between
//! the two measures the cost of flexibility.
//!
//! ```
//! use flash::{Machine, MachineConfig, RunResult};
//! use flash::config::node_addr;
//! use flash_cpu::{RefStream, SliceStream, WorkItem};
//! use flash_engine::NodeId;
//!
//! // One processor reading a remote line on a 2-node FLASH machine.
//! let items = vec![WorkItem::Read(node_addr(NodeId(1), 0)), WorkItem::Busy(4)];
//! let streams: Vec<Box<dyn RefStream>> = vec![
//!     Box::new(SliceStream::new(items)),
//!     Box::new(SliceStream::new(vec![WorkItem::Busy(4)])),
//! ];
//! let mut machine = Machine::new(MachineConfig::flash(2), streams);
//! let RunResult::Completed { exec_cycles } = machine.run(1_000_000) else {
//!     panic!("budget exhausted");
//! };
//! assert!(exec_cycles > 100, "a remote miss costs ~111 cycles");
//! ```

pub mod config;
pub mod hostprof;
pub mod machine;
pub mod observe;
pub mod report;
pub mod repro;

pub use config::{MachineConfig, PathLatencies, Placement, DEFAULT_WATCHDOG_WINDOW};
pub use flash_fault::{FaultPlan, FaultStats, LinkDown, WedgeReport};
pub use flash_magic::{ControllerKind, PpBackend};
pub use hostprof::{HostProfile, HOST_SEG_COUNT, HOST_SEG_NAMES};
pub use machine::{Machine, RunResult};
pub use observe::{ClassRow, HandlerRow, LatencyReport, LatencyRow, ObserveReport, TrafficStats};
pub use report::{compare, format_table, Comparison, LatencyTable, MachineReport};
pub use repro::{ReplayOutcome, Repro, REPRO_SCHEMA};

/// Protocol-memory address of the directory header for an address
/// (re-exported for machine-state inspection in tests and tools).
pub use flash_protocol::dir_addr as dir_addr_of;
