//! Self-contained, replayable failure reproducers (`flash-repro-v1`).
//!
//! A [`Repro`] is everything [`Machine`] needs to replay one run exactly:
//! the model-relevant configuration knobs, the fault plan as a seed plus
//! an editable [`FaultAtom`] list, the fully materialized per-processor
//! reference streams, scripted DMA writes, and the cycle budget. It
//! round-trips through a versioned JSON artifact, so a minimal
//! counterexample found by `flash-minimize` can be checked into the tree,
//! uploaded from CI, or pasted into a regression test, and replayed
//! bit-identically years later.
//!
//! What is deliberately **not** in the artifact: host-performance knobs
//! (`shards`, `pp_backend`, `inline_runs`, observers, the host profiler) —
//! those are pinned byte-identical by the determinism suite and must not
//! fragment reproducers — and the memory/network/path timing tables,
//! which v1 fixes at the paper's §3.2 defaults (every randomized net in
//! this tree runs the default tables; a future schema rev can add
//! overrides if a failure ever depends on them).
//!
//! The schema is documented in `METRICS.md`; the minimization pipeline
//! that emits these artifacts lives in `flash-minimize`.

use crate::config::{MachineConfig, Placement};
use crate::machine::{Machine, RunResult};
use flash_check::Violation;
use flash_cpu::{SliceStream, WorkItem};
use flash_engine::json::Json;
use flash_engine::{Addr, Cycle, NodeId};
use flash_fault::{FaultAtom, FaultPlan};
use flash_magic::ControllerKind;
use flash_pp::CodegenOptions;

/// Schema tag carried by every artifact.
pub const REPRO_SCHEMA: &str = "flash-repro-v1";

/// A self-contained failure reproducer: configuration, faults, streams,
/// DMA script, budget, and the predicate/fingerprint it was minimized
/// against.
///
/// # Examples
///
/// ```
/// use flash::repro::Repro;
/// use flash_cpu::WorkItem;
///
/// let mut r = Repro::flash(2);
/// r.streams = vec![vec![WorkItem::Busy(100)], vec![WorkItem::Busy(50)]];
/// r.budget = 100_000;
/// let text = r.to_json_string();
/// let back = Repro::parse(&text).unwrap();
/// assert_eq!(back, r);
/// assert!(back.replay().is_clean());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Node (= processor) count.
    pub nodes: u16,
    /// Controller kind.
    pub controller: ControllerKind,
    /// Processor cache capacity in bytes.
    pub cache_bytes: u64,
    /// MSHRs per processor.
    pub mshrs: usize,
    /// Inbox speculation knob.
    pub speculation: bool,
    /// PP code generation.
    pub codegen: CodegenOptions,
    /// MDC model knob.
    pub mdc_enabled: bool,
    /// Monitoring protocol variant.
    pub monitoring: bool,
    /// Checked mode (the `flash-check` net). Violation predicates need
    /// this on; wedge predicates usually leave it off.
    pub check: bool,
    /// Page-placement policy.
    pub placement: Placement,
    /// Watchdog window in cycles (0 disables).
    pub watchdog_window: u64,
    /// Fault-plan RNG seed (meaningful only with nonempty `fault_atoms`,
    /// but always carried so shrinks never change it).
    pub fault_seed: u64,
    /// Editable fault-plan ingredients; empty means no injector.
    pub fault_atoms: Vec<FaultAtom>,
    /// Run budget in cycles.
    pub budget: u64,
    /// Materialized reference stream per processor (no trailing `Done`).
    pub streams: Vec<Vec<WorkItem>>,
    /// Scripted DMA writes: `(cycle, node, addr)`.
    pub dma: Vec<(u64, u16, u64)>,
    /// The failure predicate this artifact was minimized against, in
    /// `flash-minimize` CLI syntax (e.g. `"wedge"`, `"violation"`).
    pub predicate: String,
    /// Expected failure fingerprint, when the predicate pinned one.
    pub expect: Option<String>,
    /// Free-form provenance line (original spec, shrink statistics).
    pub provenance: String,
}

impl Repro {
    /// A repro of the detailed FLASH machine at `nodes` nodes with empty
    /// streams, no faults, and the scaled default watchdog — the starting
    /// point minimizers and tests fill in.
    pub fn flash(nodes: u16) -> Self {
        let cfg = MachineConfig::flash(nodes);
        Repro {
            nodes,
            controller: cfg.controller,
            cache_bytes: cfg.cache_bytes,
            mshrs: cfg.mshrs,
            speculation: cfg.speculation,
            codegen: cfg.codegen,
            mdc_enabled: cfg.mdc_enabled,
            monitoring: cfg.monitoring,
            check: false,
            placement: cfg.placement,
            watchdog_window: cfg.watchdog_window,
            fault_seed: 0,
            fault_atoms: Vec::new(),
            budget: 2_000_000,
            streams: Vec::new(),
            dma: Vec::new(),
            predicate: String::new(),
            expect: None,
            provenance: String::new(),
        }
    }

    /// Captures the model-relevant knobs of an existing config. The
    /// timing tables must be the defaults (see the module docs); panics
    /// in debug builds otherwise so a minimizer can't silently emit an
    /// artifact that replays under different timing.
    pub fn from_config(cfg: &MachineConfig) -> Self {
        debug_assert_eq!(
            cfg.mem_timing,
            Default::default(),
            "flash-repro-v1 fixes the default memory timing"
        );
        debug_assert_eq!(
            cfg.net,
            Default::default(),
            "flash-repro-v1 fixes the default network config"
        );
        Repro {
            nodes: cfg.nodes,
            controller: cfg.controller,
            cache_bytes: cfg.cache_bytes,
            mshrs: cfg.mshrs,
            speculation: cfg.speculation,
            codegen: cfg.codegen,
            mdc_enabled: cfg.mdc_enabled,
            monitoring: cfg.monitoring,
            check: cfg.check,
            placement: cfg.placement,
            watchdog_window: cfg.watchdog_window,
            fault_seed: cfg.faults.seed,
            fault_atoms: cfg.faults.atoms(),
            ..Self::flash(cfg.nodes)
        }
    }

    /// The machine configuration this artifact replays under. Host knobs
    /// (`shards`, `pp_backend`) come from the process environment — they
    /// are byte-identity-pinned and not part of the artifact.
    pub fn config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::flash(self.nodes);
        cfg.controller = self.controller;
        cfg.cache_bytes = self.cache_bytes;
        cfg.mshrs = self.mshrs;
        cfg.speculation = self.speculation;
        cfg.codegen = self.codegen;
        cfg.mdc_enabled = self.mdc_enabled;
        cfg.monitoring = self.monitoring;
        cfg.check = self.check;
        cfg.placement = self.placement;
        cfg.watchdog_window = self.watchdog_window;
        cfg.faults = FaultPlan::from_atoms(self.fault_seed, &self.fault_atoms);
        cfg
    }

    /// Builds the machine: config plus one [`SliceStream`] per processor
    /// (missing trailing streams are empty) plus the DMA script.
    ///
    /// # Panics
    ///
    /// Panics if the artifact names more streams than nodes.
    pub fn build(&self) -> Machine {
        self.build_with(self.config())
    }

    /// [`Repro::build`] under a caller-adjusted configuration — the hook
    /// cross-shard-divergence predicates use to force a specific `shards`
    /// value. Only host knobs may differ from [`Repro::config`]; changing
    /// a model knob makes the artifact replay a different machine.
    pub fn build_with(&self, cfg: MachineConfig) -> Machine {
        assert!(
            self.streams.len() <= self.nodes as usize,
            "repro has {} streams for {} nodes",
            self.streams.len(),
            self.nodes
        );
        let mut streams: Vec<Box<dyn flash_cpu::RefStream>> = Vec::new();
        for p in 0..self.nodes as usize {
            let items = self.streams.get(p).cloned().unwrap_or_default();
            streams.push(Box::new(SliceStream::new(items)));
        }
        let mut m = Machine::new(cfg, streams);
        for &(at, node, addr) in &self.dma {
            m.add_dma_write(Cycle::new(at), NodeId(node), Addr::new(addr));
        }
        m
    }

    /// [`Repro::replay`] with a forced shard count (byte-identity across
    /// shard counts is the invariant the `shards:` predicate probes).
    pub fn replay_with_shards(&self, shards: usize) -> ReplayOutcome {
        let mut m = self.build_with(self.config().with_shards(shards));
        let result = m.run(self.budget);
        let violations = m.check_violations();
        let oracle_checked = m.oracle_checked();
        ReplayOutcome {
            result,
            violations,
            oracle_checked,
        }
    }

    /// Replays the artifact to completion (or wedge/deadlock/budget) and
    /// reports what happened.
    pub fn replay(&self) -> ReplayOutcome {
        let mut m = self.build();
        let result = m.run(self.budget);
        let violations = m.check_violations();
        let oracle_checked = m.oracle_checked();
        ReplayOutcome {
            result,
            violations,
            oracle_checked,
        }
    }

    /// Serializes the artifact. Deterministic: same repro → same bytes.
    pub fn to_json(&self) -> Json {
        let placement = match self.placement {
            Placement::Explicit => Json::obj(vec![("kind", Json::str("explicit"))]),
            Placement::RoundRobinPages { page_bytes } => Json::obj(vec![
                ("kind", Json::str("round_robin_pages")),
                ("page_bytes", Json::UInt(page_bytes)),
            ]),
            Placement::FirstNode => Json::obj(vec![("kind", Json::str("first_node"))]),
        };
        Json::obj(vec![
            ("schema", Json::str(REPRO_SCHEMA)),
            ("nodes", Json::UInt(self.nodes as u64)),
            (
                "controller",
                Json::str(match self.controller {
                    ControllerKind::FlashEmulated => "flash-emulated",
                    ControllerKind::FlashCostTable => "flash-cost-table",
                    ControllerKind::Ideal => "ideal",
                }),
            ),
            ("cache_bytes", Json::UInt(self.cache_bytes)),
            ("mshrs", Json::UInt(self.mshrs as u64)),
            ("speculation", Json::Bool(self.speculation)),
            ("special_instrs", Json::Bool(self.codegen.special_instrs)),
            ("dual_issue", Json::Bool(self.codegen.dual_issue)),
            ("mdc_enabled", Json::Bool(self.mdc_enabled)),
            ("monitoring", Json::Bool(self.monitoring)),
            ("check", Json::Bool(self.check)),
            ("placement", placement),
            ("watchdog_window", Json::UInt(self.watchdog_window)),
            ("fault_seed", Json::UInt(self.fault_seed)),
            (
                "fault_atoms",
                Json::Arr(self.fault_atoms.iter().map(FaultAtom::to_json).collect()),
            ),
            ("budget", Json::UInt(self.budget)),
            (
                "streams",
                Json::Arr(
                    self.streams
                        .iter()
                        .map(|s| Json::Arr(s.iter().map(item_to_json).collect()))
                        .collect(),
                ),
            ),
            (
                "dma",
                Json::Arr(
                    self.dma
                        .iter()
                        .map(|&(at, node, addr)| {
                            Json::Arr(vec![
                                Json::UInt(at),
                                Json::UInt(node as u64),
                                Json::UInt(addr),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("predicate", Json::str(self.predicate.clone())),
            (
                "expect",
                match &self.expect {
                    Some(fp) => Json::str(fp.clone()),
                    None => Json::Null,
                },
            ),
            ("provenance", Json::str(self.provenance.clone())),
        ])
    }

    /// [`Repro::to_json`] rendered to text with a trailing newline (the
    /// on-disk artifact form).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().render();
        s.push('\n');
        s
    }

    /// Parses an artifact from text.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }

    /// Deserializes an artifact from its JSON value form.
    pub fn from_json(v: &Json) -> Result<Repro, String> {
        match v.get("schema").and_then(Json::as_str) {
            Some(REPRO_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported repro schema `{other}`")),
            None => return Err("not a flash repro artifact (no `schema`)".into()),
        }
        let u = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("repro: missing `{key}`"))
        };
        let b = |key: &str| {
            v.get(key)
                .and_then(Json::as_bool)
                .ok_or(format!("repro: missing `{key}`"))
        };
        let controller = match v.get("controller").and_then(Json::as_str) {
            Some("flash-emulated") => ControllerKind::FlashEmulated,
            Some("flash-cost-table") => ControllerKind::FlashCostTable,
            Some("ideal") => ControllerKind::Ideal,
            other => return Err(format!("repro: bad `controller` {other:?}")),
        };
        let pv = v.get("placement").ok_or("repro: missing `placement`")?;
        let placement = match pv.get("kind").and_then(Json::as_str) {
            Some("explicit") => Placement::Explicit,
            Some("round_robin_pages") => Placement::RoundRobinPages {
                page_bytes: pv
                    .get("page_bytes")
                    .and_then(Json::as_u64)
                    .ok_or("repro: placement missing `page_bytes`")?,
            },
            Some("first_node") => Placement::FirstNode,
            other => return Err(format!("repro: bad placement {other:?}")),
        };
        let mut fault_atoms = Vec::new();
        for a in v
            .get("fault_atoms")
            .and_then(Json::as_arr)
            .ok_or("repro: missing `fault_atoms`")?
        {
            fault_atoms.push(FaultAtom::from_json(a)?);
        }
        let mut streams = Vec::new();
        for s in v
            .get("streams")
            .and_then(Json::as_arr)
            .ok_or("repro: missing `streams`")?
        {
            let items = s.as_arr().ok_or("repro: stream is not an array")?;
            streams.push(
                items
                    .iter()
                    .map(item_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        let mut dma = Vec::new();
        for d in v
            .get("dma")
            .and_then(Json::as_arr)
            .ok_or("repro: missing `dma`")?
        {
            match d.as_arr() {
                Some([at, node, addr]) => dma.push((
                    at.as_u64().ok_or("repro: bad dma cycle")?,
                    node.as_u64().ok_or("repro: bad dma node")? as u16,
                    addr.as_u64().ok_or("repro: bad dma addr")?,
                )),
                _ => return Err("repro: dma entry is not [at, node, addr]".into()),
            }
        }
        Ok(Repro {
            nodes: u("nodes")? as u16,
            controller,
            cache_bytes: u("cache_bytes")?,
            mshrs: u("mshrs")? as usize,
            speculation: b("speculation")?,
            codegen: CodegenOptions {
                special_instrs: b("special_instrs")?,
                dual_issue: b("dual_issue")?,
            },
            mdc_enabled: b("mdc_enabled")?,
            monitoring: b("monitoring")?,
            check: b("check")?,
            placement,
            watchdog_window: u("watchdog_window")?,
            fault_seed: u("fault_seed")?,
            fault_atoms,
            budget: u("budget")?,
            streams,
            dma,
            predicate: v
                .get("predicate")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            expect: v.get("expect").and_then(Json::as_str).map(str::to_string),
            provenance: v
                .get("provenance")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        })
    }

    /// Total reference count across all streams (`Busy` items included —
    /// each is one stream element the minimizer could have removed).
    pub fn reference_count(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }
}

impl MachineConfig {
    /// The configuration a [`Repro`] artifact replays under (see
    /// [`Repro::config`]).
    pub fn from_repro(repro: &Repro) -> Self {
        repro.config()
    }
}

impl Machine {
    /// Builds a machine replaying a [`Repro`] artifact exactly (see
    /// [`Repro::build`]).
    pub fn from_repro(repro: &Repro) -> Self {
        repro.build()
    }
}

/// What replaying a [`Repro`] produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// How the run ended.
    pub result: RunResult,
    /// Checker violations (empty when checked mode was off or clean).
    pub violations: Vec<Violation>,
    /// Handler invocations diffed by the differential oracle (0 when the
    /// oracle was off).
    pub oracle_checked: u64,
}

impl ReplayOutcome {
    /// The wedge fingerprint, when the run wedged.
    pub fn wedge_fingerprint(&self) -> Option<String> {
        match &self.result {
            RunResult::Wedged { report } => Some(report.fingerprint()),
            _ => None,
        }
    }

    /// Sorted, deduplicated violation fingerprints.
    pub fn violation_fingerprints(&self) -> Vec<String> {
        let mut v: Vec<String> = self.violations.iter().map(Violation::fingerprint).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Whether the run completed with no violations — the assertion a
    /// golden-reproducer regression test makes once the underlying bug is
    /// fixed.
    pub fn is_clean(&self) -> bool {
        matches!(self.result, RunResult::Completed { .. }) && self.violations.is_empty()
    }
}

fn item_to_json(item: &WorkItem) -> Json {
    match *item {
        WorkItem::Busy(n) => Json::Arr(vec![Json::str("b"), Json::UInt(n)]),
        WorkItem::Read(a) => Json::Arr(vec![Json::str("r"), Json::UInt(a.raw())]),
        WorkItem::Write(a) => Json::Arr(vec![Json::str("w"), Json::UInt(a.raw())]),
        WorkItem::Barrier => Json::Arr(vec![Json::str("bar")]),
        WorkItem::Lock(id) => Json::Arr(vec![Json::str("l"), Json::UInt(id as u64)]),
        WorkItem::Unlock(id) => Json::Arr(vec![Json::str("u"), Json::UInt(id as u64)]),
        WorkItem::Done => Json::Arr(vec![Json::str("done")]),
    }
}

fn item_from_json(v: &Json) -> Result<WorkItem, String> {
    let arr = v.as_arr().ok_or("repro: stream item is not an array")?;
    let tag = arr
        .first()
        .and_then(Json::as_str)
        .ok_or("repro: stream item has no tag")?;
    let arg = || {
        arr.get(1)
            .and_then(Json::as_u64)
            .ok_or(format!("repro: stream item `{tag}` missing argument"))
    };
    match tag {
        "b" => Ok(WorkItem::Busy(arg()?)),
        "r" => Ok(WorkItem::Read(Addr::new(arg()?))),
        "w" => Ok(WorkItem::Write(Addr::new(arg()?))),
        "bar" => Ok(WorkItem::Barrier),
        "l" => Ok(WorkItem::Lock(arg()? as u32)),
        "u" => Ok(WorkItem::Unlock(arg()? as u32)),
        "done" => Ok(WorkItem::Done),
        other => Err(format!("repro: unknown stream item tag `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::node_addr;

    fn sample() -> Repro {
        let a = node_addr(NodeId(1), 0x4000);
        let mut r = Repro::flash(3);
        r.check = true;
        r.cache_bytes = 64 << 10;
        r.watchdog_window = 100_000;
        r.fault_seed = 7;
        r.fault_atoms = vec![FaultAtom::LinkDown(flash_fault::LinkDown {
            src: 1,
            dst: 2,
            from: 1_000,
            until: None,
        })];
        r.budget = 400_000;
        r.streams = vec![
            vec![WorkItem::Busy(20_000), WorkItem::Read(a), WorkItem::Busy(4)],
            vec![WorkItem::Busy(4)],
            vec![WorkItem::Write(a), WorkItem::Busy(4)],
        ];
        r.dma = vec![(500, 2, node_addr(NodeId(2), 0x800).raw())];
        r.predicate = "wedge".into();
        r.expect = Some("wedge|links=[1->2!]|pending=[...]|waiters=[...]".into());
        r.provenance = "unit test".into();
        r
    }

    #[test]
    fn json_round_trip_is_lossless_and_deterministic() {
        let r = sample();
        let text = r.to_json_string();
        let back = Repro::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json_string(), text, "canonical form is stable");
    }

    #[test]
    fn every_work_item_kind_round_trips() {
        let items = vec![
            WorkItem::Busy(3),
            WorkItem::Read(Addr::new(0x2_0000_0080)),
            WorkItem::Write(Addr::new(0x80)),
            WorkItem::Barrier,
            WorkItem::Lock(5),
            WorkItem::Unlock(5),
            WorkItem::Done,
        ];
        for item in items {
            assert_eq!(item_from_json(&item_to_json(&item)).unwrap(), item);
        }
    }

    #[test]
    fn config_reconstruction_matches() {
        let r = sample();
        let cfg = MachineConfig::from_repro(&r);
        assert_eq!(cfg.nodes, 3);
        assert_eq!(cfg.cache_bytes, 64 << 10);
        assert!(cfg.check);
        assert_eq!(cfg.watchdog_window, 100_000);
        assert_eq!(cfg.faults.seed, 7);
        assert_eq!(cfg.faults.link_down.len(), 1);
        assert!(!cfg.faults.is_none());
        // Dropping every atom disarms the rebuilt plan.
        let mut bare = r.clone();
        bare.fault_atoms.clear();
        assert!(bare.config().faults.is_none());
    }

    #[test]
    fn replay_reproduces_the_canonical_crafted_wedge() {
        // The machine.rs `permanent_link_outage_wedges_with_diagnosis`
        // scenario, expressed as an artifact: the link 1->2 outage traps
        // the write-back/intervention path, node 0's read never completes.
        let mut r = sample();
        r.check = false; // wedge repro; checker not needed
        let out = r.replay();
        let fp = out.wedge_fingerprint().expect("run must wedge");
        assert!(fp.starts_with("wedge|links=[1->2!]|"), "{fp}");
        // Same artifact, same wedge — the identity the minimizer pins.
        assert_eq!(r.replay().wedge_fingerprint().unwrap(), fp);
    }

    #[test]
    fn clean_replay_is_clean() {
        let mut r = Repro::flash(2);
        r.check = true;
        r.budget = 1_000_000;
        r.streams = vec![
            vec![
                WorkItem::Read(node_addr(NodeId(0), 0x80)),
                WorkItem::Busy(4),
            ],
            vec![
                WorkItem::Write(node_addr(NodeId(0), 0x80)),
                WorkItem::Busy(4),
            ],
        ];
        let out = r.replay();
        assert!(out.is_clean(), "{:?}", out.result);
        assert!(out.wedge_fingerprint().is_none());
        assert!(out.violation_fingerprints().is_empty());
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(Repro::parse("{}").is_err());
        assert!(Repro::parse(r#"{"schema":"flash-observe-v1"}"#).is_err());
        assert!(Repro::parse("not json").is_err());
        let truncated = r#"{"schema":"flash-repro-v1","nodes":2}"#;
        assert!(Repro::parse(truncated).is_err());
    }

    #[test]
    fn extra_streams_panic_but_missing_streams_pad() {
        let mut r = Repro::flash(2);
        r.streams = vec![vec![WorkItem::Busy(10)]]; // one of two: pads
        r.budget = 100_000;
        assert!(r.replay().is_clean());
        r.streams = vec![vec![], vec![], vec![]]; // three for two nodes
        assert!(std::panic::catch_unwind(|| r.build()).is_err());
    }
}
