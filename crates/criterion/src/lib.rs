//! Minimal, dependency-free benchmarking shim.
//!
//! This workspace builds in fully offline environments where the real
//! `criterion` crate cannot be fetched from a registry. This crate
//! implements the API subset the workspace's benches use:
//!
//! * `black_box`,
//! * `Criterion::default().sample_size(n)`, `bench_function`,
//!   `benchmark_group` (with `sample_size`, `bench_function`, `finish`),
//! * `Bencher::iter`,
//! * `criterion_group! { name = ..; config = ..; targets = .. }` (and the
//!   positional form) plus `criterion_main!`.
//!
//! Measurement model: each benchmark closure is auto-calibrated to a
//! per-sample batch of iterations (~5 ms), then `sample_size` samples are
//! timed and the median/min/mean ns-per-iteration are printed in a
//! stable, machine-greppable one-line format:
//!
//! ```text
//! bench: <id> ... median 123 ns/iter (min 120, mean 125, N=20x438)
//! ```
//!
//! Set `CRITERION_QUICK=1` to cap calibration so CI smoke runs stay fast.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    /// Target wall-clock per sample during calibration.
    target_sample: Duration,
}

impl Settings {
    fn new() -> Self {
        let quick = std::env::var("CRITERION_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        Settings {
            sample_size: 20,
            target_sample: if quick {
                Duration::from_micros(500)
            } else {
                Duration::from_millis(5)
            },
        }
    }
}

/// One benchmark measurement result (also returned for programmatic use
/// by in-repo tools that shell into the bench binaries).
#[derive(Debug, Clone)]
pub struct Measurement {
    pub id: String,
    pub median_ns: f64,
    pub min_ns: f64,
    pub mean_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, settings: Settings, mut f: F) -> Measurement {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes at least `target_sample` (or growth caps out).
    let mut iters = 1u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    loop {
        b.iters = iters;
        f(&mut b);
        if b.elapsed >= settings.target_sample || iters >= 1 << 24 {
            break;
        }
        // Aim directly at the target using the observed rate, growing at
        // least 2x to escape timer-resolution noise.
        let per_iter = b.elapsed.as_nanos().max(1) as f64 / iters as f64;
        let want = (settings.target_sample.as_nanos() as f64 / per_iter).ceil() as u64;
        iters = want.max(iters * 2).min(1 << 24);
    }
    let iters_per_sample = b.iters;
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let m = Measurement {
        id: id.to_string(),
        median_ns: median,
        min_ns: min,
        mean_ns: mean,
        samples: per_iter_ns.len(),
        iters_per_sample,
    };
    println!(
        "bench: {:<44} median {:>12.1} ns/iter (min {:.1}, mean {:.1}, N={}x{})",
        m.id, m.median_ns, m.min_ns, m.mean_ns, m.samples, m.iters_per_sample
    );
    m
}

/// Top-level benchmark driver.
pub struct Criterion {
    settings: Settings,
    pub measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::new(),
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builder-style sample-size override (matches criterion's
    /// by-value signature on `Criterion`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.settings.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let m = run_bench(&id, self.settings, f);
        self.measurements.push(m);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            settings_override: None,
        }
    }
}

/// Named group of related benchmarks; ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    settings_override: Option<Settings>,
}

impl BenchmarkGroup<'_> {
    /// Mutating sample-size override (matches criterion's `&mut self`
    /// signature on `BenchmarkGroup`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        let mut s = self.settings_override.unwrap_or(self.parent.settings);
        s.sample_size = n;
        self.settings_override = Some(s);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let settings = self.settings_override.unwrap_or(self.parent.settings);
        let id = format!("{}/{}", self.name, id.into());
        let m = run_bench(&id, settings, f);
        self.parent.measurements.push(m);
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either the named-field or the
/// positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_groups_run() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("trivial_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                black_box(x)
            })
        });
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function(format!("{}_fmt", "id"), |b| b.iter(|| black_box(3u32 + 4)));
            g.finish();
        }
        assert_eq!(c.measurements.len(), 2);
        assert_eq!(c.measurements[1].id, "grp/id_fmt");
        assert!(c.measurements[0].median_ns >= 0.0);
    }
}
