//! Single-writer / multiple-reader exclusivity, cross-checked against the
//! directory.
//!
//! The machine collects, for one 128-byte line, the set of processor
//! caches actually holding a copy ([`CachedCopy`]) and the directory's
//! view (header + sharer list at the home node), and this module decides
//! whether the combination is legal.

use crate::Violation;
use flash_engine::NodeId;
use flash_protocol::DirHeader;

/// One processor cache's copy of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedCopy {
    /// Node whose processor cache holds the copy.
    pub node: u16,
    /// Whether the copy is held exclusively (writable).
    pub exclusive: bool,
}

/// Checks SWMR and directory/cache agreement for one line.
///
/// `header` and `sharers` are the home node's directory view; `copies`
/// is the ground truth gathered from every processor cache; `home` is
/// the line's home node.
///
/// SWMR is enforced in *decomposed* form: rather than one aggregate
/// "writer coexists with other copies" check, every copy is individually
/// compared against the directory. Under a dirty header every non-owner
/// copy is `shared-under-dirty` (or a rogue writer is
/// `excl-wrong-owner`); under a clean header every exclusive copy is
/// `excl-not-dirty`; a shared copy the sharer list cannot account for is
/// `copy-not-listed`. The decomposition is equivalent in coverage but
/// names the *offending copy* in each violation's `node` field, which is
/// what lets a caller that observes the machine over time treat the
/// protocol's self-repairing transient — a deferred intervention
/// answering a forward the home has since abandoned grants a rogue copy
/// via a stale `NPut`/`NPutX`; the home's `ni_swb`/`ni_ownx` stale
/// branches repair it with `NInval`s — as *provisional*: discharged if
/// the copy is invalidated, real if it survives to quiescence. The only
/// aggregate check kept is two simultaneous writers (`swmr`), and it
/// stands down exactly when the directory vouches for one of two writers
/// (the rogue being flagged per-copy instead).
///
/// The per-copy checks only run when the header is not `PENDING`: the
/// protocol grants exclusivity as soon as invalidations are *sent* (the
/// paper's relaxed consistency, §2), so mid-transaction the directory
/// intentionally leads or lags the caches. (Copies whose invalidation or
/// intervention has progressed to a queued bus-side delivery are
/// filtered out of `copies` by the machine before this function runs.)
/// Directory agreement tolerates stale sharers (directory ⊇ caches); the
/// converse — a cached copy the directory cannot account for — is a
/// violation.
pub fn check_line_coherence(
    header: DirHeader,
    sharers: &[NodeId],
    home: u16,
    copies: &[CachedCopy],
    line: u64,
) -> Vec<Violation> {
    let mut v = Vec::new();

    // A writer the directory can vouch for: the named owner of a dirty
    // line, or the home processor when LOCAL is set.
    let legit = |w: u16| (header.dirty() && header.owner().0 == w) || (w == home && header.local());
    let writers: Vec<u16> = copies
        .iter()
        .filter(|c| c.exclusive)
        .map(|c| c.node)
        .collect();
    if writers.len() > 1 {
        // Two writers where the directory vouches for exactly one is the
        // stale-transfer race: the other writer holds a rogue copy from a
        // stale `NPutX`, already condemned by the home's repair `NInval`.
        // The per-copy checks below flag that rogue individually (and
        // attributably), so the aggregate form only fires when the
        // directory cannot single out a legitimate owner — which no
        // transient of this protocol produces.
        if !(writers.len() == 2 && writers.iter().filter(|&&w| legit(w)).count() == 1) {
            v.push(Violation {
                kind: "swmr",
                node: home,
                line,
                detail: format!("multiple exclusive copies: nodes {writers:?}"),
            });
        }
    }
    // Note there is no aggregate writer-plus-readers check: it is implied
    // by the per-copy directory agreement below. Under a dirty header
    // every non-owner copy is `shared-under-dirty` (or the rogue writer
    // is `excl-wrong-owner`); under a clean header every exclusive copy
    // is `excl-not-dirty`. The decomposition matters because each piece
    // names the offending copy, which lets the machine discharge the
    // self-repairing transients and keep the rest.
    if header.pending() {
        return v;
    }

    for c in copies {
        if c.exclusive {
            if !header.dirty() {
                v.push(Violation {
                    kind: "excl-not-dirty",
                    node: c.node,
                    line,
                    detail: format!(
                        "n{} holds the line exclusively but header {:#x} is not dirty",
                        c.node, header.0
                    ),
                });
            } else if c.node != home && header.owner().0 != c.node {
                v.push(Violation {
                    kind: "excl-wrong-owner",
                    node: c.node,
                    line,
                    detail: format!(
                        "n{} holds the line exclusively but directory owner is {}",
                        c.node,
                        header.owner()
                    ),
                });
            }
            if c.node == home && !header.local() {
                v.push(Violation {
                    kind: "excl-home-not-local",
                    node: home,
                    line,
                    detail: format!(
                        "home processor holds the line exclusively but LOCAL is clear in {:#x}",
                        header.0
                    ),
                });
            }
        } else if c.node == home {
            if !header.local() {
                v.push(Violation {
                    kind: "home-copy-not-local",
                    node: home,
                    line,
                    detail: format!(
                        "home processor holds a shared copy but LOCAL is clear in {:#x}",
                        header.0
                    ),
                });
            }
        } else if header.dirty() {
            if header.owner().0 != c.node {
                // Reported against the node *holding* the copy (not the
                // home) so callers can track whether the copy is later
                // invalidated: the stale-transfer self-repair race makes
                // this state legal *transiently* — `ni_swb`'s repair
                // `NInval`s are already committed but still in the
                // network when the rogue copy becomes visible.
                v.push(Violation {
                    kind: "shared-under-dirty",
                    node: c.node,
                    line,
                    detail: format!(
                        "n{} holds a shared copy but header {:#x} says dirty at {}",
                        c.node,
                        header.0,
                        header.owner()
                    ),
                });
            }
        } else if !sharers.iter().any(|s| s.0 == c.node) {
            // Like `shared-under-dirty`, attributed to the copy holder:
            // the same stale-grant race produces this shape when the
            // header has already lost its dirty bit by the time the
            // checker observes the window.
            v.push(Violation {
                kind: "copy-not-listed",
                node: c.node,
                line,
                detail: format!(
                    "n{} holds a shared copy absent from the sharer list {sharers:?}",
                    c.node
                ),
            });
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> DirHeader {
        DirHeader::default()
    }

    #[test]
    fn clean_shared_state_passes() {
        let copies = [
            CachedCopy {
                node: 1,
                exclusive: false,
            },
            CachedCopy {
                node: 2,
                exclusive: false,
            },
        ];
        let sharers = [NodeId(1), NodeId(2), NodeId(5)]; // stale n5 tolerated
        assert!(check_line_coherence(hdr(), &sharers, 0, &copies, 0x80).is_empty());
    }

    #[test]
    fn two_writers_violate_swmr_even_when_pending() {
        let copies = [
            CachedCopy {
                node: 1,
                exclusive: true,
            },
            CachedCopy {
                node: 2,
                exclusive: true,
            },
        ];
        let h = hdr().with_pending(true);
        let v = check_line_coherence(h, &[], 0, &copies, 0x80);
        assert!(v.iter().any(|x| x.kind == "swmr"), "{v:?}");
    }

    #[test]
    fn writer_plus_reader_flags_the_reader() {
        // SWMR in decomposed form: the legitimate writer is vouched for
        // by the directory, so the violation lands on the reader's copy
        // (attributed to n2, so the machine can track its repair).
        let copies = [
            CachedCopy {
                node: 1,
                exclusive: true,
            },
            CachedCopy {
                node: 2,
                exclusive: false,
            },
        ];
        let h = hdr().with_dirty(true).with_owner(NodeId(1));
        let v = check_line_coherence(h, &[], 0, &copies, 0x80);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, "shared-under-dirty");
        assert_eq!(v[0].node, 2);
    }

    #[test]
    fn two_writers_with_one_vouched_owner_flag_only_the_rogue() {
        // The stale-NPutX race: directory says dirty at n1; n4 holds a
        // rogue exclusive copy. The aggregate swmr check stands down and
        // the rogue is flagged per-copy, attributed to n4.
        let copies = [
            CachedCopy {
                node: 1,
                exclusive: true,
            },
            CachedCopy {
                node: 4,
                exclusive: true,
            },
        ];
        let h = hdr().with_dirty(true).with_owner(NodeId(1));
        let v = check_line_coherence(h, &[], 0, &copies, 0x80);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, "excl-wrong-owner");
        assert_eq!(v[0].node, 4);
        // While PENDING the per-copy checks are gated, so the rogue
        // window is silent — but never reported as aggregate swmr.
        let v = check_line_coherence(h.with_pending(true), &[], 0, &copies, 0x80);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn exclusive_copy_requires_dirty_and_owner() {
        let copies = [CachedCopy {
            node: 3,
            exclusive: true,
        }];
        let v = check_line_coherence(hdr(), &[], 0, &copies, 0x80);
        assert!(v.iter().any(|x| x.kind == "excl-not-dirty"), "{v:?}");
        let h = hdr().with_dirty(true).with_owner(NodeId(7));
        let v = check_line_coherence(h, &[], 0, &copies, 0x80);
        assert!(v.iter().any(|x| x.kind == "excl-wrong-owner"), "{v:?}");
        let h = hdr().with_dirty(true).with_owner(NodeId(3));
        assert!(check_line_coherence(h, &[], 0, &copies, 0x80).is_empty());
    }

    #[test]
    fn unlisted_copy_is_flagged_unless_pending() {
        let copies = [CachedCopy {
            node: 4,
            exclusive: false,
        }];
        let v = check_line_coherence(hdr(), &[NodeId(1)], 0, &copies, 0x80);
        assert!(v.iter().any(|x| x.kind == "copy-not-listed"), "{v:?}");
        let h = hdr().with_pending(true);
        assert!(check_line_coherence(h, &[NodeId(1)], 0, &copies, 0x80).is_empty());
    }

    #[test]
    fn shared_under_dirty_names_the_copy_holder() {
        // Dirty at n1, but n2 holds a shared copy: the violation must be
        // attributed to n2 (the copy holder) so the machine can discharge
        // it when n2's copy is later invalidated.
        let copies = [CachedCopy {
            node: 2,
            exclusive: false,
        }];
        let h = hdr().with_dirty(true).with_owner(NodeId(1));
        let v = check_line_coherence(h, &[], 0, &copies, 0x80);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, "shared-under-dirty");
        assert_eq!(v[0].node, 2);
    }

    #[test]
    fn home_copy_uses_local_bit() {
        let copies = [CachedCopy {
            node: 0,
            exclusive: false,
        }];
        let v = check_line_coherence(hdr(), &[], 0, &copies, 0x80);
        assert!(v.iter().any(|x| x.kind == "home-copy-not-local"), "{v:?}");
        let h = hdr().with_local(true);
        assert!(check_line_coherence(h, &[], 0, &copies, 0x80).is_empty());
    }
}
