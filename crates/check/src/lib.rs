//! Opt-in runtime correctness net for the FLASH reproduction.
//!
//! The paper's comparison between the FLASH machine (PP handlers with real
//! occupancy) and the Ideal machine (zero-time controller) is only
//! meaningful if both run the *same* dynamic-pointer-allocation protocol
//! correctly. This crate is the mechanical safety net behind that claim:
//!
//! * [`coherence`] — single-writer / multiple-reader exclusivity across
//!   all processor caches, cross-checked against the directory state;
//! * [`audit`] — directory structural integrity: sharer-list
//!   well-formedness (termination, in-range indices), free-list health,
//!   and pointer-store conservation (no leaked or aliased entries);
//! * [`oracle`] — a differential oracle that replays every PP handler
//!   invocation through the native Rust protocol on a snapshot of the
//!   same protocol memory and diffs the directory mutation and outgoing
//!   message multiset;
//! * [`stress`] — a seeded random traffic generator ([`flash_engine::DetRng`])
//!   that drives the checks across mesh sizes.
//!
//! Everything here is *opt-in*: the machine runs these checks only when
//! checked mode is enabled, so default-mode runs are byte-identical to a
//! build without this crate.
//!
//! Invariants deliberately **not** enforced (all observed as legitimate
//! transients of this protocol):
//!
//! * duplicate node ids inside one sharer list — a node can re-request a
//!   line while its replacement hint is still in flight, and a hint that
//!   arrives during a `PENDING` window is dropped, so the duplicate may
//!   even persist;
//! * directory sharer lists are allowed to be a *superset* of the caches
//!   actually holding copies (hints are hints, and a NACKed/poisoned
//!   grant can leave a stale pointer) — the converse, a cached copy the
//!   directory does not know about, is a violation;
//! * anything while the header's `PENDING` bit is set, beyond structural
//!   well-formedness: mid-transaction the directory intentionally leads
//!   or lags the caches.

pub mod audit;
pub mod coherence;
pub mod oracle;
pub mod stress;

pub use audit::{audit_directory, check_pointer_store, walk_free_list, walk_sharers};
pub use coherence::{check_line_coherence, CachedCopy};
pub use oracle::{diff_invocation, encode, OracleState};
pub use stress::stress_streams;

use std::fmt;

/// One detected invariant violation.
///
/// `kind` is a stable machine-readable tag (e.g. `"swmr"`,
/// `"oracle-out"`, `"dir-list-cycle"`); `detail` is for humans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable tag naming the violated invariant.
    pub kind: &'static str,
    /// Node where the violation was observed (home node for directory
    /// checks, the chip's node for oracle checks).
    pub node: u16,
    /// Raw byte address of the 128-byte line concerned (0 when the
    /// violation is not line-specific).
    pub line: u64,
    /// Human-readable description.
    pub detail: String,
}

impl Violation {
    /// A stable structural identifier: invariant kind, node, and line —
    /// everything except the free-form `detail` text, which legitimately
    /// changes as a failing run is shrunk (it quotes cycle counts, sharer
    /// bitmaps, and queue contents). Minimization predicates and CI triage
    /// match on this instead of on the `Display` string.
    ///
    /// # Examples
    ///
    /// ```
    /// use flash_check::Violation;
    ///
    /// let v = Violation {
    ///     kind: "copy-not-listed",
    ///     node: 3,
    ///     line: 0x1_0000_4000,
    ///     detail: "cache holds Shared but directory bitmap is 0x2".into(),
    /// };
    /// assert_eq!(v.fingerprint(), "copy-not-listed@n3:0x100004000");
    /// ```
    pub fn fingerprint(&self) -> String {
        format!("{}@n{}:{:#x}", self.kind, self.node, self.line)
    }

    /// Serializes the violation (fingerprint embedded) for triage
    /// artifacts.
    pub fn to_json(&self) -> flash_engine::json::Json {
        use flash_engine::json::Json;
        Json::obj(vec![
            ("schema", Json::str("flash-violation-v1")),
            ("fingerprint", Json::str(self.fingerprint())),
            ("kind", Json::str(self.kind)),
            ("node", Json::UInt(self.node as u64)),
            ("line", Json::UInt(self.line)),
            ("detail", Json::str(self.detail.clone())),
        ])
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] node n{} line {:#x}: {}",
            self.kind, self.node, self.line, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_is_greppable() {
        let v = Violation {
            kind: "swmr",
            node: 3,
            line: 0x8000,
            detail: "two writers".into(),
        };
        let s = v.to_string();
        assert!(s.contains("[swmr]"));
        assert!(s.contains("n3"));
        assert!(s.contains("0x8000"));
    }

    #[test]
    fn violation_fingerprint_ignores_detail() {
        let a = Violation {
            kind: "swmr",
            node: 3,
            line: 0x8000,
            detail: "two writers at cycle 12345".into(),
        };
        let b = Violation {
            detail: "two writers at cycle 99".into(),
            ..a.clone()
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), "swmr@n3:0x8000");
        let c = Violation {
            kind: "copy-not-listed",
            ..a.clone()
        };
        assert_ne!(c.fingerprint(), a.fingerprint());
    }

    #[test]
    fn violation_json_round_trips() {
        use flash_engine::json::Json;
        let v = Violation {
            kind: "swmr",
            node: 3,
            line: 0x8000,
            detail: "two \"writers\"".into(),
        };
        let round = Json::parse(&v.to_json().render()).unwrap();
        assert_eq!(
            round.get("fingerprint").and_then(Json::as_str),
            Some("swmr@n3:0x8000")
        );
        assert_eq!(
            round.get("detail").and_then(Json::as_str),
            Some("two \"writers\"")
        );
    }
}
