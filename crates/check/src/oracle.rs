//! The native-vs-PP differential oracle.
//!
//! Every time the detailed FLASH machine runs a PP-assembly handler, the
//! oracle replays the *same* inbound message through the native Rust
//! protocol on a snapshot of the *same* protocol memory, then diffs:
//!
//! 1. the handler the jump table dispatched (names must agree),
//! 2. the multiset of outgoing actions (messages, memory operations),
//! 3. every 8-byte word of protocol memory (directory headers, pointer
//!    store, free list).
//!
//! A difference in any of the three is a [`Violation`] pinned to the
//! handler name and message type — exactly the information needed to
//! write a minimal regression test.

use crate::Violation;
use flash_protocol::native::{self, Outgoing};
use flash_protocol::{CostTable, InMsg, ProtoMem};

/// Per-chip oracle bookkeeping, owned by the MAGIC chip when checked
/// mode is on.
#[derive(Debug, Default)]
pub struct OracleState {
    /// Handler invocations diffed so far.
    pub checked: u64,
    /// Divergences found (empty on a healthy run).
    pub violations: Vec<Violation>,
}

/// Normalized encoding of an outgoing action for multiset comparison
/// (same scheme as the protocol crate's differential test).
pub fn encode(o: &Outgoing) -> String {
    match o {
        Outgoing::Net(m) => format!(
            "net:{:?}:{}:{}:{:#x}:{:#x}:{}",
            m.mtype,
            m.src,
            m.dst,
            m.addr.raw(),
            m.aux,
            m.with_data
        ),
        Outgoing::Proc(p) => format!(
            "proc:{:?}:{:#x}:{:#x}:{}",
            p.mtype,
            p.addr.raw(),
            p.aux,
            p.with_data
        ),
        Outgoing::MemRead(a) => format!("memrd:{:#x}", a.raw()),
        Outgoing::MemWrite(a) => format!("memwr:{:#x}", a.raw()),
    }
}

/// Diffs one emulated handler invocation against the native oracle.
///
/// `pre` is a snapshot of the chip's protocol memory taken *before* the
/// PP ran (consumed: the oracle mutates it in place); `post` is the
/// chip's protocol memory after; `emu_out` the actions the PP produced;
/// `emu_handler` the entry symbol the jump table chose. Returns the
/// first divergence found, if any.
pub fn diff_invocation(
    msg: &InMsg,
    mut pre: ProtoMem,
    post: &ProtoMem,
    emu_out: &[Outgoing],
    emu_handler: &str,
    node: u16,
) -> Option<Violation> {
    let costs = CostTable::paper();
    let mut native_out = Vec::new();
    let res = native::handle(msg, &mut pre, &costs, &mut native_out);
    let line = msg.addr.line().raw();

    if res.handler != emu_handler {
        return Some(Violation {
            kind: "oracle-handler",
            node,
            line,
            detail: format!(
                "{:?}: native dispatches {} but PP ran {}",
                msg.mtype, res.handler, emu_handler
            ),
        });
    }

    let mut enc_n: Vec<String> = native_out.iter().map(encode).collect();
    let mut enc_e: Vec<String> = emu_out.iter().map(encode).collect();
    enc_n.sort();
    enc_e.sort();
    if enc_n != enc_e {
        return Some(Violation {
            kind: "oracle-out",
            node,
            line,
            detail: format!(
                "{} on {:?}: outgoing actions diverge\n  native: {enc_n:?}\n  pp:     {enc_e:?}",
                emu_handler, msg.mtype
            ),
        });
    }

    if let Some(addr) = pre.first_difference(post) {
        return Some(Violation {
            kind: "oracle-mem",
            node,
            line,
            detail: format!(
                "{} on {:?}: protocol memory diverges at {:#x}: native {:#x} vs pp {:#x}",
                emu_handler,
                msg.mtype,
                addr,
                pre.load64(addr),
                post.load64(addr)
            ),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_engine::{Addr, NodeId};
    use flash_protocol::dir::{dir_addr, Directory};
    use flash_protocol::fields::aux;
    use flash_protocol::msg::MsgType;

    fn msg(mtype: MsgType, me: u16, home: u16, src: u16, req: u16, addr: Addr) -> InMsg {
        InMsg {
            mtype,
            src: NodeId(src),
            addr,
            aux: aux::pack(NodeId(req), mtype, NodeId(home)),
            spec: false,
            self_node: NodeId(me),
            home: NodeId(home),
            diraddr: dir_addr(addr),
            with_data: mtype.carries_data(),
        }
    }

    /// When "emulated" results are literally the native results, the diff
    /// must be clean.
    #[test]
    fn identical_runs_are_clean() {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, 16);
        let m = msg(MsgType::PiGet, 0, 0, 0, 0, Addr::new(0x1000));
        let pre = mem.clone();
        let mut out = Vec::new();
        let res = native::handle(&m, &mut mem, &CostTable::paper(), &mut out);
        assert_eq!(diff_invocation(&m, pre, &mem, &out, res.handler, 0), None);
    }

    #[test]
    fn dropped_message_is_reported() {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, 16);
        let m = msg(MsgType::PiGet, 0, 0, 0, 0, Addr::new(0x1000));
        let pre = mem.clone();
        let mut out = Vec::new();
        let res = native::handle(&m, &mut mem, &CostTable::paper(), &mut out);
        assert!(!out.is_empty());
        out.pop(); // "the PP lost an action"
        let v = diff_invocation(&m, pre, &mem, &out, res.handler, 0).expect("must diverge");
        assert_eq!(v.kind, "oracle-out");
    }

    #[test]
    fn directory_word_divergence_is_reported() {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, 16);
        let m = msg(MsgType::PiGet, 0, 0, 0, 0, Addr::new(0x1000));
        let pre = mem.clone();
        let mut out = Vec::new();
        let res = native::handle(&m, &mut mem, &CostTable::paper(), &mut out);
        // Corrupt one header word in the "emulated" post state.
        let da = dir_addr(Addr::new(0x1000));
        mem.store64(da, mem.load64(da) ^ 0x4);
        let v = diff_invocation(&m, pre, &mem, &out, res.handler, 0).expect("must diverge");
        assert_eq!(v.kind, "oracle-mem");
        assert!(v.detail.contains("pi_get_local"), "{}", v.detail);
    }

    #[test]
    fn wrong_handler_name_is_reported() {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, 16);
        let m = msg(MsgType::PiGet, 0, 0, 0, 0, Addr::new(0x1000));
        let pre = mem.clone();
        let mut out = Vec::new();
        native::handle(&m, &mut mem, &CostTable::paper(), &mut out);
        let v = diff_invocation(&m, pre, &mem, &out, "ni_get", 0).expect("must diverge");
        assert_eq!(v.kind, "oracle-handler");
    }
}
