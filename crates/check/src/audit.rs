//! Directory structural integrity audits.
//!
//! These walk the byte-level directory structures of one node's protocol
//! memory without panicking (unlike the test-oriented accessors in
//! `flash_protocol::dir`, which assert on malformed lists), so a corrupted
//! list becomes a reported [`Violation`] instead of a simulator abort.

use crate::Violation;
use flash_engine::NodeId;
use flash_protocol::dir::{entry_addr, DirHeader, PtrEntry, DEFAULT_PS_CAPACITY, FREE_HEAD_ADDR};
use flash_protocol::ProtoMem;
use std::collections::HashMap;

/// Walks the sharer list of the header at `diraddr`, bounded by the
/// pointer-store capacity. `Err` means the list does not terminate (a
/// cycle or runaway links).
pub fn walk_sharers(mem: &ProtoMem, diraddr: u64) -> Result<Vec<NodeId>, String> {
    let h = DirHeader(mem.load64(diraddr));
    let mut out = Vec::new();
    let mut idx = h.head();
    let mut steps: u32 = 0;
    while idx != 0 {
        let e = PtrEntry(mem.load64(entry_addr(idx)));
        out.push(e.node());
        idx = e.next();
        steps += 1;
        if steps > DEFAULT_PS_CAPACITY as u32 {
            return Err(format!(
                "sharer list at {diraddr:#x} exceeds {DEFAULT_PS_CAPACITY} entries (cycle?)"
            ));
        }
    }
    Ok(out)
}

/// Counts the free-list entries, bounded by capacity. `Err` on a
/// non-terminating free list.
pub fn walk_free_list(mem: &ProtoMem) -> Result<usize, String> {
    let mut n = 0usize;
    let mut idx = mem.load64(FREE_HEAD_ADDR) as u16;
    while idx != 0 {
        n += 1;
        idx = PtrEntry(mem.load64(entry_addr(idx))).next();
        if n > DEFAULT_PS_CAPACITY as usize {
            return Err(format!(
                "free list exceeds {DEFAULT_PS_CAPACITY} entries (cycle?)"
            ));
        }
    }
    Ok(n)
}

/// Audits one directory header for structural integrity.
///
/// Checked always: list termination and in-range entry indices. Checked
/// when the header is not `PENDING`: a dirty line has an empty sharer
/// list. Checked additionally at `end_of_run` (machine quiescent): the
/// `PENDING` bit is clear and the invalidation-ack count has drained —
/// together these are the "every request eventually retired" half of
/// message conservation as seen from the directory.
pub fn audit_directory(
    mem: &ProtoMem,
    diraddr: u64,
    node: u16,
    end_of_run: bool,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let h = DirHeader(mem.load64(diraddr));
    let line = dir_line(diraddr);

    // Structural: bounded walk with index range checks.
    let mut idx = h.head();
    let mut steps: u32 = 0;
    let mut terminated = true;
    while idx != 0 {
        if idx > DEFAULT_PS_CAPACITY {
            v.push(Violation {
                kind: "dir-entry-range",
                node,
                line,
                detail: format!("sharer list at {diraddr:#x} links to out-of-range entry {idx}"),
            });
            terminated = false;
            break;
        }
        idx = PtrEntry(mem.load64(entry_addr(idx))).next();
        steps += 1;
        if steps > DEFAULT_PS_CAPACITY as u32 {
            v.push(Violation {
                kind: "dir-list-cycle",
                node,
                line,
                detail: format!("sharer list at {diraddr:#x} does not terminate"),
            });
            terminated = false;
            break;
        }
    }

    if !h.pending() && terminated && h.dirty() && h.head() != 0 {
        v.push(Violation {
            kind: "dirty-with-sharers",
            node,
            line,
            detail: format!(
                "header {:#x} is dirty (owner {}) but keeps a sharer list",
                h.0,
                h.owner()
            ),
        });
    }

    if end_of_run {
        if h.pending() {
            v.push(Violation {
                kind: "line-stuck-pending",
                node,
                line,
                detail: format!("header {:#x} still PENDING at quiescence", h.0),
            });
        } else if h.acks() != 0 {
            v.push(Violation {
                kind: "acks-leak",
                node,
                line,
                detail: format!("header {:#x} retains {} unclaimed acks", h.0, h.acks()),
            });
        }
    }
    v
}

/// Whole-store conservation and aliasing audit for one node's pointer
/// store, given every directory header address that was ever touched on
/// this node (untouched headers have empty lists by construction).
///
/// * conservation — `free + Σ list lengths == capacity`: no entry leaked
///   (allocated but unreachable) and none double-freed;
/// * aliasing — no entry index reachable from two places (two sharer
///   lists, twice within one list's links, or a sharer list and the free
///   list simultaneously).
pub fn check_pointer_store<'a>(
    mem: &ProtoMem,
    touched_diraddrs: impl IntoIterator<Item = &'a u64>,
    capacity: u16,
    node: u16,
) -> Vec<Violation> {
    let mut v = Vec::new();
    // Entry index -> first place we reached it from (diraddr, or 0 = free list).
    let mut seen: HashMap<u16, u64> = HashMap::new();
    let mut listed = 0usize;

    for &da in touched_diraddrs {
        let h = DirHeader(mem.load64(da));
        let mut idx = h.head();
        let mut steps: u32 = 0;
        while idx != 0 && idx <= DEFAULT_PS_CAPACITY && steps <= DEFAULT_PS_CAPACITY as u32 {
            if let Some(&prev) = seen.get(&idx) {
                v.push(Violation {
                    kind: "dir-entry-aliased",
                    node,
                    line: dir_line(da),
                    detail: format!(
                        "pointer-store entry {idx} reachable from header {da:#x} and {}",
                        if prev == 0 {
                            "the free list".to_string()
                        } else {
                            format!("header {prev:#x}")
                        }
                    ),
                });
                break;
            }
            seen.insert(idx, da);
            listed += 1;
            idx = PtrEntry(mem.load64(entry_addr(idx))).next();
            steps += 1;
        }
    }

    let mut free = 0usize;
    let mut idx = mem.load64(FREE_HEAD_ADDR) as u16;
    let mut steps: u32 = 0;
    while idx != 0 && steps <= DEFAULT_PS_CAPACITY as u32 {
        if let Some(&prev) = seen.get(&idx) {
            v.push(Violation {
                kind: "dir-entry-aliased",
                node,
                line: 0,
                detail: format!(
                    "pointer-store entry {idx} on the free list and reachable from header {prev:#x}"
                ),
            });
            break;
        }
        seen.insert(idx, 0);
        free += 1;
        idx = PtrEntry(mem.load64(entry_addr(idx))).next();
        steps += 1;
    }

    if v.is_empty() && free + listed != capacity as usize {
        v.push(Violation {
            kind: "ptr-store-leak",
            node,
            line: 0,
            detail: format!(
                "pointer-store conservation broken: {free} free + {listed} listed != capacity {capacity}"
            ),
        });
    }
    v
}

/// Raw line address a directory header describes.
fn dir_line(diraddr: u64) -> u64 {
    (diraddr - flash_protocol::dir::DIR_BASE) / 8 * flash_engine::LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_engine::Addr;
    use flash_protocol::dir::{dir_addr, Directory};

    fn mem_with(capacity: u16) -> ProtoMem {
        let mut m = ProtoMem::new();
        Directory::init_free_list(&mut m, capacity);
        m
    }

    #[test]
    fn clean_state_has_no_violations() {
        let mut m = mem_with(8);
        let da = dir_addr(Addr::new(0x2000));
        {
            let mut d = Directory::new(&mut m);
            let e = d.alloc_entry().unwrap();
            d.set_entry(e, PtrEntry::new(NodeId(3), 0));
            d.set_header(da, DirHeader::default().with_head(e));
        }
        assert!(audit_directory(&m, da, 0, true).is_empty());
        assert_eq!(walk_sharers(&m, da).unwrap(), vec![NodeId(3)]);
        assert!(check_pointer_store(&m, [&da], 8, 0).is_empty());
    }

    #[test]
    fn cycle_is_reported_not_panicked() {
        let mut m = mem_with(8);
        let da = dir_addr(Addr::new(0x2000));
        {
            let mut d = Directory::new(&mut m);
            let a = d.alloc_entry().unwrap();
            let b = d.alloc_entry().unwrap();
            d.set_entry(a, PtrEntry::new(NodeId(1), b));
            d.set_entry(b, PtrEntry::new(NodeId(2), a)); // cycle
            d.set_header(da, DirHeader::default().with_head(a));
        }
        assert!(walk_sharers(&m, da).is_err());
        let v = audit_directory(&m, da, 0, false);
        assert!(v.iter().any(|x| x.kind == "dir-list-cycle"), "{v:?}");
    }

    #[test]
    fn dirty_with_sharers_flagged_only_when_not_pending() {
        let mut m = mem_with(8);
        let da = dir_addr(Addr::new(0x2000));
        {
            let mut d = Directory::new(&mut m);
            let e = d.alloc_entry().unwrap();
            d.set_entry(e, PtrEntry::new(NodeId(1), 0));
            d.set_header(
                da,
                DirHeader::default()
                    .with_dirty(true)
                    .with_owner(NodeId(2))
                    .with_head(e),
            );
        }
        assert!(audit_directory(&m, da, 0, false)
            .iter()
            .any(|x| x.kind == "dirty-with-sharers"));
        // Same state mid-transaction is tolerated.
        let h = DirHeader(m.load64(da)).with_pending(true);
        m.store64(da, h.0);
        assert!(audit_directory(&m, da, 0, false).is_empty());
    }

    #[test]
    fn stuck_pending_and_acks_only_at_end_of_run() {
        let mut m = mem_with(4);
        let da = dir_addr(Addr::new(0x2000));
        m.store64(da, DirHeader::default().with_pending(true).with_acks(2).0);
        assert!(audit_directory(&m, da, 0, false).is_empty());
        assert!(audit_directory(&m, da, 0, true)
            .iter()
            .any(|x| x.kind == "line-stuck-pending"));
        m.store64(da, DirHeader::default().with_acks(2).0);
        assert!(audit_directory(&m, da, 0, true)
            .iter()
            .any(|x| x.kind == "acks-leak"));
    }

    #[test]
    fn leaked_entry_breaks_conservation() {
        let mut m = mem_with(8);
        let da = dir_addr(Addr::new(0x2000));
        {
            let mut d = Directory::new(&mut m);
            let _leaked = d.alloc_entry().unwrap(); // never linked, never freed
            d.set_header(da, DirHeader::default());
        }
        let v = check_pointer_store(&m, [&da], 8, 0);
        assert!(v.iter().any(|x| x.kind == "ptr-store-leak"), "{v:?}");
    }

    #[test]
    fn double_free_is_aliasing() {
        let mut m = mem_with(8);
        let da = dir_addr(Addr::new(0x2000));
        {
            let mut d = Directory::new(&mut m);
            let e = d.alloc_entry().unwrap();
            // Link it into a sharer list, then free it while still linked.
            d.set_header(da, DirHeader::default().with_head(e));
            d.free_entry(e);
        }
        let v = check_pointer_store(&m, [&da], 8, 0);
        assert!(v.iter().any(|x| x.kind == "dir-entry-aliased"), "{v:?}");
    }
}
