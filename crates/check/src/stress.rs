//! Seeded random stress traffic for the correctness net.
//!
//! Generates per-processor reference streams ([`WorkItem`]) from a
//! [`DetRng`] so that a (seed, shape) pair reproduces the exact same
//! traffic on every run. The mix is tuned to exercise the protocol's
//! corner paths, not to model a real application:
//!
//! * a small *hot set* of lines that every node hammers (3-hop
//!   forwarding, invalidation fan-out, upgrade races),
//! * a uniform cold tail sized to overflow small caches (writebacks and
//!   replacement hints),
//! * lock/unlock pairs on a few shared locks (sync traffic),
//! * aligned barriers so every processor's stream has the same barrier
//!   count (a machine requirement).

use flash_cpu::WorkItem;
use flash_engine::{Addr, DetRng, LINE_BYTES};

/// Builds `nodes` reference streams of roughly `items_per_proc` items
/// each. Addresses are spread over `lines_per_node` lines on every home
/// node using the explicit placement convention (`home` in bits 32+).
///
/// Every stream contains exactly `items_per_proc / 64` barriers at the
/// same per-stream positions, so the machine's barrier rendezvous always
/// matches up.
pub fn stress_streams(
    nodes: u16,
    lines_per_node: u64,
    items_per_proc: usize,
    seed: u64,
) -> Vec<Vec<WorkItem>> {
    assert!(nodes > 0 && lines_per_node > 0);
    (0..nodes)
        .map(|p| {
            let mut rng = DetRng::for_stream(seed, p as u64);
            let mut items = Vec::with_capacity(items_per_proc + items_per_proc / 8);
            for i in 0..items_per_proc {
                if i % 64 == 63 {
                    items.push(WorkItem::Barrier);
                    continue;
                }
                let addr = pick_addr(&mut rng, nodes, lines_per_node);
                let r = rng.below(100);
                if r < 46 {
                    items.push(WorkItem::Read(addr));
                } else if r < 82 {
                    items.push(WorkItem::Write(addr));
                } else if r < 88 {
                    let id = rng.below(4) as u32;
                    items.push(WorkItem::Lock(id));
                    items.push(WorkItem::Write(addr));
                    items.push(WorkItem::Unlock(id));
                } else {
                    items.push(WorkItem::Busy(rng.geometric(6.0)));
                }
            }
            // Quiesce: rendezvous, then a little slack so the last
            // writer's traffic drains before the stream ends.
            items.push(WorkItem::Barrier);
            items.push(WorkItem::Busy(4));
            items
        })
        .collect()
}

fn pick_addr(rng: &mut DetRng, nodes: u16, lines_per_node: u64) -> Addr {
    // 30% of references go to a tiny hot set homed on node 0 — maximal
    // sharing and invalidation fan-out. The rest are uniform over all
    // homes, overflowing small processor caches.
    let (home, line) = if rng.chance(0.3) {
        (0u64, rng.below(4.min(lines_per_node)))
    } else {
        (rng.below(nodes as u64), rng.below(lines_per_node))
    };
    let offset = rng.below(LINE_BYTES / 8) * 8;
    Addr::new((home << 32) | (line * LINE_BYTES) | offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = stress_streams(4, 32, 256, 7);
        let b = stress_streams(4, 32, 256, 7);
        assert_eq!(a, b);
        let c = stress_streams(4, 32, 256, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn barrier_counts_match_across_procs() {
        let streams = stress_streams(8, 16, 500, 3);
        let counts: Vec<usize> = streams
            .iter()
            .map(|s| s.iter().filter(|i| matches!(i, WorkItem::Barrier)).count())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert_eq!(counts[0], 500 / 64 + 1);
    }

    #[test]
    fn locks_are_balanced() {
        for s in stress_streams(4, 16, 400, 11) {
            let mut held: Option<u32> = None;
            for it in s {
                match it {
                    WorkItem::Lock(id) => {
                        assert_eq!(held, None, "nested lock");
                        held = Some(id);
                    }
                    WorkItem::Unlock(id) => {
                        assert_eq!(held, Some(id), "unbalanced unlock");
                        held = None;
                    }
                    _ => {}
                }
            }
            assert_eq!(held, None, "lock held at end of stream");
        }
    }

    #[test]
    fn addresses_respect_placement_and_alignment() {
        for s in stress_streams(4, 16, 400, 13) {
            for it in s {
                if let WorkItem::Read(a) | WorkItem::Write(a) = it {
                    assert_eq!(a.raw() % 8, 0);
                    let home = a.raw() >> 32;
                    assert!(home < 4, "home {home} out of range");
                    assert!((a.raw() & 0xffff_ffff) < 16 * LINE_BYTES);
                }
            }
        }
    }
}
